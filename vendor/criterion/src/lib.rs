//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! wall-clock median over a fixed number of batches — good enough for
//! relative before/after comparisons, with no statistics machinery.
//!
//! Two extensions beyond the upstream API (used by the workspace's bench
//! runner, which upstream criterion covers with its own machinery):
//!
//! * [`Criterion::results`] exposes the measured per-iteration times so a
//!   runner binary can serialize them (e.g. to `BENCH_detector.json`);
//! * setting the `CCHUNTER_BENCH_QUICK` environment variable to anything
//!   but `0`/empty switches to a fast low-precision mode (smaller timing
//!   batches, fewer re-measures) for CI smoke runs.

#![allow(clippy::all)] // vendored shim: mirrors the upstream API, not our style

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    /// Median per-iteration time of the fastest batch, filled by `iter`.
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count until one batch
    /// takes long enough to measure.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (batch_floor, remeasures) = if quick_mode() {
            (Duration::from_millis(2), 1)
        } else {
            (Duration::from_millis(20), 4)
        };
        // Warm up and find a batch size taking at least `batch_floor`.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 30 {
                break elapsed / batch as u32;
            }
            batch *= 8;
        };
        // Re-measure a few batches and keep the best (least-noise) one.
        let mut best = per_iter;
        for _ in 0..remeasures {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let t = start.elapsed() / batch as u32;
            if t < best {
                best = t;
            }
        }
        self.result = Some(best);
    }
}

/// Whether `CCHUNTER_BENCH_QUICK` selects the fast low-precision mode.
pub fn quick_mode() -> bool {
    std::env::var("CCHUNTER_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Bench registry and runner (stand-in for criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Runs one named benchmark and prints its per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { result: None };
        f(&mut bencher);
        match bencher.result {
            Some(t) => {
                println!("{name:<48} {:>12.3?} /iter", t);
                self.results.push((name.to_string(), t));
            }
            None => println!("{name:<48} (no measurement)"),
        }
        self
    }

    /// Measured `(name, per-iteration time)` pairs, in run order.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's macro;
/// configuration arguments are not supported and not used in this repo).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
