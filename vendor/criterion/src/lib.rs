//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! wall-clock median over a fixed number of batches — good enough for
//! relative before/after comparisons, with no statistics machinery.
//!
//! Two extensions beyond the upstream API (used by the workspace's bench
//! runner, which upstream criterion covers with its own machinery):
//!
//! * [`Criterion::results`] exposes the measured per-iteration times so a
//!   runner binary can serialize them (e.g. to `BENCH_detector.json`);
//! * setting the `CCHUNTER_BENCH_QUICK` environment variable to anything
//!   but `0`/empty switches to a fast low-precision mode (smaller timing
//!   batches, fewer re-measures) for CI smoke runs.

#![allow(clippy::all)] // vendored shim: mirrors the upstream API, not our style

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    /// Per-iteration time of the fastest batch, filled by `iter`.
    result: Option<Duration>,
    /// Per-iteration time of every measured batch, in measurement order.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count until one batch
    /// takes long enough to measure.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Quick mode re-measures fewer batches but keeps the batch floor
        // close enough to full mode that both resolve comparable batch
        // sizes — the perf gate compares a quick-mode minimum against the
        // full-mode baseline minimum, and smaller batches measure colder
        // code (upward-biased, false regressions).
        let (batch_floor, remeasures) = if quick_mode() {
            (Duration::from_millis(8), 3)
        } else {
            (Duration::from_millis(20), 8)
        };
        // Warm up and find a batch size taking at least `batch_floor`.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 30 {
                break elapsed / batch as u32;
            }
            batch *= 8;
        };
        // Re-measure a few batches, keeping every sample so the runner can
        // serialize the distribution; the headline number stays the best
        // (least-noise) batch.
        let mut samples = Vec::with_capacity(remeasures + 1);
        samples.push(per_iter);
        for _ in 0..remeasures {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        self.result = Some(*samples.iter().min().expect("at least one sample"));
        self.samples = samples;
    }
}

/// One finished benchmark: its headline (best-batch) per-iteration time
/// plus every measured batch's per-iteration time.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Best (least-noise) batch's per-iteration time.
    pub best: Duration,
    /// Per-iteration time of every measured batch, in measurement order.
    pub samples: Vec<Duration>,
}

/// Whether `CCHUNTER_BENCH_QUICK` selects the fast low-precision mode.
pub fn quick_mode() -> bool {
    std::env::var("CCHUNTER_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Bench registry and runner (stand-in for criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one named benchmark and prints its per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            result: None,
            samples: Vec::new(),
        };
        f(&mut bencher);
        match bencher.result {
            Some(t) => {
                println!("{name:<48} {:>12.3?} /iter", t);
                self.results.push(BenchResult {
                    name: name.to_string(),
                    best: t,
                    samples: bencher.samples,
                });
            }
            None => println!("{name:<48} (no measurement)"),
        }
        self
    }

    /// Measured `(name, best per-iteration time)` pairs, in run order.
    pub fn results(&self) -> Vec<(String, Duration)> {
        self.results
            .iter()
            .map(|r| (r.name.clone(), r.best))
            .collect()
    }

    /// Full per-benchmark results including every batch sample, in run
    /// order.
    pub fn results_detailed(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's macro;
/// configuration arguments are not supported and not used in this repo).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
