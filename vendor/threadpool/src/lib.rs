//! Vendored scoped thread-pool shim with a deterministic `par_map`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the minimal parallel substrate the workspace needs: a persistent worker
//! [`Pool`] whose [`scoped`](Pool::scoped) jobs may borrow from the caller's
//! stack (the `scoped_threadpool` idiom), and [`par_map`] /
//! [`par_map_in`] — an indexed parallel map whose output is **bit-identical
//! to a serial map regardless of thread count**, because every result is
//! written to its input's slot and the mapped function runs once per item.
//!
//! ## Determinism contract
//!
//! `par_map(items, f)` returns exactly `items.iter().map(f).collect()` for
//! any pure `f`: items are partitioned into contiguous chunks, each chunk's
//! results are written into the matching output positions, and no reduction
//! or reordering happens across threads. Callers that need reproducible
//! floating-point results must therefore only parallelize *independent*
//! per-item work (as the detector's k-means assignment step and per-pair
//! audits do) and keep any cross-item accumulation serial.
//!
//! ## Nesting
//!
//! The global pool behind [`par_map`] is guarded by a `try_lock`: a nested
//! `par_map` issued from inside a pool worker (or from a second user thread
//! while a map is in flight) silently degrades to the serial path instead of
//! deadlocking. Results are identical either way.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock, TryLockError};
use std::thread::{self, JoinHandle};

type Thunk<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A fixed-size pool of persistent worker threads executing scoped jobs.
#[derive(Debug)]
pub struct Pool {
    sender: Option<Sender<Thunk<'static>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Thunk<'static>>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || worker_loop(&receiver))
            })
            .collect();
        Pool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`Scope`] through which jobs borrowing from the
    /// caller's stack can be submitted; returns only after every submitted
    /// job has finished.
    ///
    /// # Panics
    ///
    /// Panics (after all jobs have drained) if any submitted job panicked.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            _marker: PhantomData,
        };
        let result = f(&scope);
        scope.join();
        result
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Thunk<'static>>>) {
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // pool dropped
        }
    }
}

#[derive(Debug)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// Handle for submitting borrowed jobs inside [`Pool::scoped`].
#[derive(Debug)]
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    // Invariant in 'scope: a longer-lived scope must not be coercible to a
    // shorter-lived one (or borrowed jobs could outlive their data).
    _marker: PhantomData<std::cell::Cell<&'scope ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Submits a job that may borrow anything outliving `'scope`. The job
    /// is guaranteed to finish before `scoped` returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.pending.lock().expect("scope counter healthy") += 1;
        let state = Arc::clone(&self.state);
        let job: Thunk<'scope> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::SeqCst);
            }
            let mut pending = state.pending.lock().expect("scope counter healthy");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the job only borrows data outliving 'scope, and
        // `Scope::join` (called from both `Pool::scoped` and `Drop`) blocks
        // until the job has run to completion, so the erased lifetime can
        // never be observed dangling. This is the `scoped_threadpool` idiom.
        let job: Thunk<'static> = unsafe { std::mem::transmute(job) };
        self.pool
            .sender
            .as_ref()
            .expect("pool is alive inside scoped")
            .send(job)
            .expect("pool workers are alive");
    }

    fn join(&self) {
        let mut pending = self.state.pending.lock().expect("scope counter healthy");
        while *pending > 0 {
            pending = self
                .state
                .done
                .wait(pending)
                .expect("scope counter healthy");
        }
        drop(pending);
        if self.state.panicked.load(Ordering::SeqCst) && !thread::panicking() {
            panic!("a scoped thread-pool job panicked");
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        // `Pool::scoped` joins on the success path; this covers unwinding
        // out of the scope closure so borrowed jobs can never dangle.
        self.join();
    }
}

/// The pool size [`par_map`] uses: `CCHUNTER_THREADS` if set to a positive
/// integer, otherwise the host's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("CCHUNTER_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn global_pool() -> &'static Mutex<Pool> {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Pool::new(default_threads())))
}

/// Maps `f` over `items` on an explicit pool; the output vector is
/// bit-identical to `items.iter().map(f).collect()` for any thread count.
pub fn par_map_in<T, R, F>(pool: &mut Pool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = pool.threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    // Over-partition a little so uneven per-item cost still balances.
    let chunk = n.div_ceil(threads * 4).max(1);
    let f = &f;
    pool.scoped(|scope| {
        for (inputs, outputs) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.execute(move || {
                for (input, output) in inputs.iter().zip(outputs.iter_mut()) {
                    *output = Some(f(input));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every chunk fills its slots"))
        .collect()
}

/// Maps `f` over `items` on the process-wide pool (size
/// [`default_threads`]). Falls back to the serial path — with identical
/// output — when the global pool is already busy (nested or concurrent
/// maps), so it can never deadlock.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match global_pool().try_lock() {
        Ok(mut pool) => par_map_in(&mut pool, items, f),
        Err(TryLockError::Poisoned(poisoned)) => par_map_in(&mut poisoned.into_inner(), items, f),
        Err(TryLockError::WouldBlock) => items.iter().map(f).collect(),
    }
}

/// A contained panic from one item of a [`par_catch_map`] /
/// [`par_catch_map_mut`] call: the panic payload rendered to a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload (`&str` / `String` payloads verbatim, anything
    /// else as a placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn catch<R>(f: impl FnOnce() -> R) -> Result<R, JobPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| JobPanic {
        message: panic_message(payload),
    })
}

/// Like [`par_map`], but every item's `f` runs under `catch_unwind`: a
/// panicking item yields `Err(JobPanic)` in its own slot instead of
/// poisoning the whole map. Output order and Ok values are bit-identical to
/// the serial `items.iter().map(|i| catch(|| f(i))).collect()` for any
/// thread count.
pub fn par_catch_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(items, |item| catch(|| f(item)))
}

/// Maps `f` over mutable items on an explicit pool; like [`par_map_in`]
/// but each item is visited through `&mut T`, so per-item state (e.g. one
/// online detector per audited pair) can be advanced in place. Output is
/// bit-identical to the serial loop for any thread count.
pub fn par_map_mut_in<T, R, F>(pool: &mut Pool, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = pool.threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads * 4).max(1);
    let f = &f;
    pool.scoped(|scope| {
        for (inputs, outputs) in items.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.execute(move || {
                for (input, output) in inputs.iter_mut().zip(outputs.iter_mut()) {
                    *output = Some(f(input));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every chunk fills its slots"))
        .collect()
}

/// [`par_map_mut_in`] on the process-wide pool, with the same
/// busy-fallback-to-serial behavior as [`par_map`].
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    match global_pool().try_lock() {
        Ok(mut pool) => par_map_mut_in(&mut pool, items, f),
        Err(TryLockError::Poisoned(poisoned)) => {
            par_map_mut_in(&mut poisoned.into_inner(), items, f)
        }
        Err(TryLockError::WouldBlock) => items.iter_mut().map(f).collect(),
    }
}

/// The panic-safe worker wrapper: maps `f` over mutable items with every
/// call contained by `catch_unwind`. A panicking item yields
/// `Err(JobPanic)` in its own output slot; the other items' results — and
/// the pool itself — are unaffected. This is the fan-out primitive the
/// detector's supervised audit loop uses so one faulty pair analysis can
/// never take the whole batch down.
pub fn par_catch_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    par_map_mut(items, |item| catch(|| f(item)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let mut pool = Pool::new(threads);
            let parallel = par_map_in(&mut pool, &items, |&x| x * x + 1);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn global_par_map_and_nesting_stay_serial_equivalent() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(&items, |&x| {
            // Nested maps degrade to the serial path instead of deadlocking.
            par_map(&[x, x + 1], |&y| y * 2).iter().sum::<u64>()
        });
        let want: Vec<u64> = items.iter().map(|&x| x * 2 + (x + 1) * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scoped_jobs_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sums = Mutex::new(0u64);
        let mut pool = Pool::new(4);
        pool.scoped(|scope| {
            for value in &data {
                let sums = &sums;
                scope.execute(move || {
                    *sums.lock().unwrap() += *value;
                });
            }
        });
        assert_eq!(*sums.lock().unwrap(), 10);
    }

    #[test]
    fn par_map_mut_advances_items_in_place() {
        for threads in [1, 2, 8] {
            let mut pool = Pool::new(threads);
            let mut items: Vec<u64> = (0..100).collect();
            let returned = par_map_mut_in(&mut pool, &mut items, |x| {
                *x += 1;
                *x * 2
            });
            let want_items: Vec<u64> = (1..=100).collect();
            let want_returned: Vec<u64> = (1..=100).map(|x| x * 2).collect();
            assert_eq!(items, want_items, "{threads} threads");
            assert_eq!(returned, want_returned, "{threads} threads");
        }
    }

    #[test]
    fn par_catch_map_contains_panics_to_their_slots() {
        let items: Vec<u64> = (0..32).collect();
        let results = par_catch_map(&items, |&x| {
            if x % 7 == 3 {
                panic!("bad item {x}");
            }
            x * 10
        });
        for (i, result) in results.iter().enumerate() {
            if i % 7 == 3 {
                let panic = result.as_ref().unwrap_err();
                assert_eq!(panic.message, format!("bad item {i}"));
            } else {
                assert_eq!(*result.as_ref().unwrap(), i as u64 * 10);
            }
        }
    }

    #[test]
    fn par_catch_map_mut_spares_healthy_items_and_the_pool() {
        let mut items: Vec<u64> = (0..32).collect();
        let results = par_catch_map_mut(&mut items, |x| {
            if *x == 5 {
                panic!("poisoned slot");
            }
            *x += 100;
            *x
        });
        assert!(results[5].is_err());
        for (i, result) in results.iter().enumerate() {
            if i != 5 {
                assert_eq!(*result.as_ref().unwrap(), i as u64 + 100);
                assert_eq!(items[i], i as u64 + 100);
            }
        }
        // The panicked slot's item was left untouched and the global pool
        // still works.
        assert_eq!(items[5], 5);
        let doubled = par_map(&[1, 2, 3], |&x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn job_panic_propagates_after_drain() {
        let mut pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked job.
        let doubled = par_map_in(&mut pool, &[1, 2, 3], |&x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
