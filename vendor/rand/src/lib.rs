//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::SmallRng`]
//! seeded with [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen_range`, `gen_bool` and `gen_ratio`. The generator is xoshiro256++
//! (the same family the real `SmallRng` uses on 64-bit targets), so quality
//! is adequate for the workloads and property tests; the streams differ from
//! upstream `rand`, which is fine because every consumer in this workspace
//! seeds explicitly and only relies on *self*-reproducibility.

#![allow(clippy::all)] // vendored shim: mirrors the upstream API, not our style

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one value in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut (impl RngCore + ?Sized),
            ) -> Self {
                // Work in u128 offset space so signed types and full-width
                // unsigned spans are handled uniformly.
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                // Modulo bias is < span / 2^64 — negligible for the spans
                // used here (simulation parameters, never cryptography).
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in(lo: Self, hi: Self, _inclusive: bool, rng: &mut (impl RngCore + ?Sized)) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in(lo: Self, hi: Self, _inclusive: bool, rng: &mut (impl RngCore + ?Sized)) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }
}

/// Range abstraction accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above 1");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_hits_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn gen_ratio_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
