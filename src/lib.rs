//! # cc-hunter
//!
//! A full reproduction of *CC-Hunter: Uncovering Covert Timing Channels on
//! Shared Processor Hardware* (Chen & Venkataramani, MICRO 2014) as a Rust
//! workspace:
//!
//! * [`sim`] — a deterministic discrete-event multicore simulator (the
//!   MARSSx86 substitute): SMT cores, L1/L2 caches, a lockable shared
//!   memory bus, per-core integer dividers, and an OS scheduler.
//! * [`detector`] — the paper's contribution: the CC-auditor hardware
//!   model, event-density/burst analysis, pattern clustering,
//!   autocorrelation-based oscillation detection, conflict-miss trackers,
//!   and the Table I cost model.
//! * [`channels`] — the three covert timing channels used in the
//!   evaluation (memory bus, integer divider, shared L2 cache), built as
//!   real trojan/spy program pairs whose spies decode the message from
//!   timing alone.
//! * [`workloads`] — benign SPEC2006-, STREAM- and Filebench-like
//!   generators for the false-alarm study and background noise.
//! * [`audit`] — the glue: a probe sink that feeds simulator indicator
//!   events into the CC-auditor, and a quantum-by-quantum runner that
//!   harvests its buffers the way the paper's software daemon does.
//!
//! ## Quickstart
//!
//! ```
//! use cc_hunter::audit::{AuditSession, QuantumRunner};
//! use cc_hunter::channels::{BitClock, BusChannelConfig, BusSpy, BusTrojan, Message, SpyLog};
//! use cc_hunter::detector::{CcHunter, CcHunterConfig, DeltaTPolicy};
//! use cc_hunter::sim::{Machine, MachineConfig};
//!
//! // A machine with a 1M-cycle scheduling quantum (scaled for a doctest).
//! let config = MachineConfig::builder().quantum_cycles(1_000_000).build().unwrap();
//! let mut machine = Machine::new(config);
//!
//! // A 100 kb/s-equivalent bus covert channel (8 bits, 250k cycles each).
//! let clock = BitClock::new(10_000, 250_000);
//! let channel = BusChannelConfig::new(Message::alternating(8), clock);
//! let log = SpyLog::new_handle();
//! machine.spawn(
//!     Box::new(BusTrojan::new(channel.clone(), 0x1000_0000)),
//!     machine.config().context_id(0, 0),
//! );
//! machine.spawn(
//!     Box::new(BusSpy::new(channel, 0x4000_0000, log)),
//!     machine.config().context_id(1, 0),
//! );
//!
//! // Audit the memory bus with Δt = 10k cycles and run 3 quanta.
//! let mut session = AuditSession::new();
//! session.audit_bus(10_000).unwrap();
//! session.attach(&mut machine);
//! let data = QuantumRunner::new(1_000_000)
//!     .expect("nonzero quantum")
//!     .run(&mut machine, &mut session, 3)
//!     .expect("audit harvest");
//!
//! // The recurrent-burst pipeline flags the channel.
//! let hunter = CcHunter::new(CcHunterConfig {
//!     quantum_cycles: 1_000_000,
//!     delta_t: DeltaTPolicy::Fixed(10_000),
//!     ..CcHunterConfig::default()
//! });
//! let report = hunter.analyze_contention(data.bus_histograms);
//! assert!(report.verdict.is_covert());
//! ```

#![warn(missing_docs)]

pub use cchunter_channels as channels;
pub use cchunter_detector as detector;
pub use cchunter_sim as sim;
pub use cchunter_workloads as workloads;

pub mod audit;

pub use cchunter_detector::{DetectorError, FaultClass, FaultConfig, FaultInjector, Harvest};
