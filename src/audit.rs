//! Wiring between the simulator's probe events and the CC-auditor: the
//! "event signals wired from the hardware units" of paper §V-A, plus the
//! per-quantum harvesting loop of the software daemon (§V-B).

use cchunter_detector::auditor::{
    AuditorConfig, AuditorError, CcAuditor, ConflictRecord, HardwareUnit, Privilege, SlotId,
};
use cchunter_detector::conflict::{
    ConflictClass, GenerationTracker, IdealLruTracker, MissClassifier,
};
use cchunter_detector::density::DensityHistogram;
use cchunter_detector::metrics::{default_registry, Counter, Family};
use cchunter_detector::span;
use cchunter_detector::{DetectorError, FaultInjector, Harvest};
use cchunter_sim::{CacheLevel, Machine, ProbeEvent, ProbeSink};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

/// OS time quanta simulated through [`QuantumRunner`].
fn sim_quanta_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_sim_quanta_total",
            "OS time quanta simulated through the quantum runner.",
        )
    })
}

/// Engine events dispatched by audited machines, summed per quantum.
fn sim_events_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_sim_events_total",
            "Engine events dispatched by audited machines.",
        )
    })
}

/// Per-unit harvests taken at quantum boundaries.
fn sim_harvests_total() -> &'static Family<Counter> {
    static F: OnceLock<Family<Counter>> = OnceLock::new();
    F.get_or_init(|| {
        default_registry().counter_family(
            "cchunter_sim_harvests_total",
            "Harvests taken at quantum boundaries, by audited unit.",
            "unit",
        )
    })
}

/// Which conflict-miss tracker implementation the cache audit uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackerKind {
    /// The paper's practical generation-bit + Bloom-filter tracker.
    #[default]
    Practical,
    /// The fully-associative LRU-stack oracle (for fidelity comparisons).
    Ideal,
}

struct CacheAudit {
    slot: SlotId,
    core: u8,
    tracker: Box<dyn MissClassifier>,
    /// The most recent L2 miss: `(block, was_conflict)`.
    last_miss: Option<(u64, bool)>,
    conflict_misses: u64,
    total_misses: u64,
}

struct Inner {
    auditor: CcAuditor,
    bus_slot: Option<SlotId>,
    divider_slot: Option<(SlotId, u8)>,
    multiplier_slot: Option<(SlotId, u8)>,
    cache: Option<CacheAudit>,
    smt_per_core: u8,
    /// Stable principal id per hardware context. The OS tracks thread
    /// migration across context switches (paper §V-A), so the daemon can
    /// keep labeling conflicts by *software principal* even when the
    /// trojan or spy lands on a different hardware context.
    principals: [u8; 8],
    /// Probe deliveries the auditor refused (e.g. a time-travelling event
    /// from a buggy or hostile probe source). The probe path cannot
    /// return errors, so refusals are counted and the last one stashed
    /// instead of panicking inside the event loop.
    probe_faults: u64,
    last_probe_fault: Option<AuditorError>,
}

impl Inner {
    /// Records an auditor refusal instead of unwinding: the hardware
    /// would drop a malformed signal on the floor, and the daemon reads
    /// the fault back at the next harvest.
    fn note_fault(&mut self, error: AuditorError) {
        self.probe_faults += 1;
        self.last_probe_fault = Some(error);
    }

    fn on_event(&mut self, event: &ProbeEvent) {
        match *event {
            ProbeEvent::BusLock { cycle, .. } => {
                if let Some(slot) = self.bus_slot {
                    if let Err(error) = self.auditor.signal(slot, cycle.as_u64(), 1) {
                        self.note_fault(error);
                    }
                }
            }
            ProbeEvent::DividerWait {
                start,
                cycles,
                waiter,
                ..
            } => {
                if let Some((slot, core)) = self.divider_slot {
                    if waiter.core() == core {
                        let weight = cycles.min(u32::MAX as u64) as u32;
                        if let Err(error) = self.auditor.signal(slot, start.as_u64(), weight) {
                            self.note_fault(error);
                        }
                    }
                }
            }
            ProbeEvent::MultiplierWait {
                start,
                cycles,
                waiter,
                ..
            } => {
                if let Some((slot, core)) = self.multiplier_slot {
                    if waiter.core() == core {
                        let weight = cycles.min(u32::MAX as u64) as u32;
                        if let Err(error) = self.auditor.signal(slot, start.as_u64(), weight) {
                            self.note_fault(error);
                        }
                    }
                }
            }
            ProbeEvent::CacheAccess {
                level: CacheLevel::L2,
                core,
                block,
                hit,
                ..
            } => {
                if let Some(cache) = self.cache.as_mut() {
                    if cache.core == core {
                        if hit {
                            cache.tracker.record_access(block);
                            cache.last_miss = None;
                        } else {
                            let class = cache.tracker.classify_miss(block);
                            cache.tracker.record_access(block);
                            cache.total_misses += 1;
                            let is_conflict = class == ConflictClass::Conflict;
                            if is_conflict {
                                cache.conflict_misses += 1;
                            }
                            cache.last_miss = Some((block, is_conflict));
                        }
                    }
                }
            }
            ProbeEvent::CacheReplacement {
                level: CacheLevel::L2,
                core,
                cycle,
                replacer,
                new_block,
                victim_block,
                victim_owner,
                ..
            } => {
                if let Some(cache) = self.cache.as_mut() {
                    if cache.core == core {
                        cache.tracker.record_replacement(victim_block);
                        if let Some((miss_block, true)) = cache.last_miss {
                            if miss_block == new_block {
                                let smt = self.smt_per_core;
                                let slot = cache.slot;
                                let replacer = self.principals[replacer.index(smt) as usize];
                                let victim = self.principals[victim_owner.index(smt) as usize];
                                if let Err(error) = self.auditor.record_conflict(
                                    slot,
                                    cycle.as_u64(),
                                    replacer,
                                    victim,
                                ) {
                                    self.note_fault(error);
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

impl ProbeSink for Inner {
    fn on_event(&mut self, event: &ProbeEvent) {
        Inner::on_event(self, event);
    }
}

/// An audit session: programs up to two hardware units on the CC-auditor,
/// attaches to a [`Machine`] as a probe, and exposes the daemon-side
/// harvest operations.
pub struct AuditSession {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for AuditSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("AuditSession")
            .field("units", &inner.auditor.audited_units())
            .finish()
    }
}

impl Default for AuditSession {
    fn default() -> Self {
        Self::new()
    }
}

impl AuditSession {
    /// Creates a session with the default auditor sizing for a 4-core,
    /// 2-SMT machine.
    pub fn new() -> Self {
        Self::with_config(AuditorConfig::default(), 2)
    }

    /// Creates a session with explicit auditor sizing and SMT width.
    pub fn with_config(config: AuditorConfig, smt_per_core: u8) -> Self {
        AuditSession {
            inner: Rc::new(RefCell::new(Inner {
                auditor: CcAuditor::new(config),
                bus_slot: None,
                divider_slot: None,
                multiplier_slot: None,
                cache: None,
                smt_per_core,
                principals: [0, 1, 2, 3, 4, 5, 6, 7],
                probe_faults: 0,
                last_probe_fault: None,
            })),
        }
    }

    /// Probe deliveries the auditor refused so far (a healthy session
    /// reports 0; a nonzero count means a probe source emitted events the
    /// hardware contract rejects, e.g. non-monotonic times).
    pub fn probe_fault_count(&self) -> u64 {
        self.inner.borrow().probe_faults
    }

    /// Takes the most recent refused probe delivery, if any, as a typed
    /// error — the daemon-side readback for faults that happen inside the
    /// event loop, where nothing can be returned. The count from
    /// [`AuditSession::probe_fault_count`] is not reset.
    pub fn take_probe_fault(&self) -> Option<DetectorError> {
        self.inner
            .borrow_mut()
            .last_probe_fault
            .take()
            .map(DetectorError::from)
    }

    /// Programs the memory bus for auditing with the given Δt.
    ///
    /// # Errors
    ///
    /// Propagates [`AuditorError`] (e.g. both slots taken).
    pub fn audit_bus(&mut self, delta_t: u64) -> Result<(), AuditorError> {
        let mut inner = self.inner.borrow_mut();
        let slot =
            inner
                .auditor
                .program(HardwareUnit::MemoryBus, delta_t, Privilege::Supervisor)?;
        inner.bus_slot = Some(slot);
        Ok(())
    }

    /// Programs `core`'s divider bank for auditing with the given Δt.
    ///
    /// # Errors
    ///
    /// Propagates [`AuditorError`].
    pub fn audit_divider(&mut self, core: u8, delta_t: u64) -> Result<(), AuditorError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner.auditor.program(
            HardwareUnit::IntegerDivider { core },
            delta_t,
            Privilege::Supervisor,
        )?;
        inner.divider_slot = Some((slot, core));
        Ok(())
    }

    /// Programs `core`'s multiplier bank for auditing with the given Δt.
    ///
    /// # Errors
    ///
    /// Propagates [`AuditorError`].
    pub fn audit_multiplier(&mut self, core: u8, delta_t: u64) -> Result<(), AuditorError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner.auditor.program(
            HardwareUnit::IntegerMultiplier { core },
            delta_t,
            Privilege::Supervisor,
        )?;
        inner.multiplier_slot = Some((slot, core));
        Ok(())
    }

    /// Programs `core`'s shared L2 for auditing. `total_blocks` sizes the
    /// conflict-miss tracker (4096 for the paper's 256 KB L2).
    ///
    /// # Errors
    ///
    /// Propagates [`AuditorError`].
    pub fn audit_cache(
        &mut self,
        core: u8,
        total_blocks: usize,
        tracker: TrackerKind,
    ) -> Result<(), AuditorError> {
        let mut inner = self.inner.borrow_mut();
        let slot =
            inner
                .auditor
                .program(HardwareUnit::SharedCache { core }, 0, Privilege::Supervisor)?;
        let tracker: Box<dyn MissClassifier> = match tracker {
            TrackerKind::Practical => Box::new(GenerationTracker::for_cache(total_blocks)),
            TrackerKind::Ideal => Box::new(IdealLruTracker::new(total_blocks)),
        };
        inner.cache = Some(CacheAudit {
            slot,
            core,
            tracker,
            last_miss: None,
            conflict_misses: 0,
            total_misses: 0,
        });
        Ok(())
    }

    /// Attaches this session's probe to a machine. Call once per machine,
    /// before running.
    pub fn attach(&self, machine: &mut Machine) {
        machine.attach_probe(self.inner.clone());
    }

    /// Harvests the bus histogram buffer, finalizing windows through
    /// `until`.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if the bus is not under audit.
    pub fn harvest_bus_histogram(&self, until: u64) -> Result<DensityHistogram, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner
            .bus_slot
            .ok_or(DetectorError::NotAudited { unit: "memory-bus" })?;
        Ok(inner.auditor.harvest_histogram(slot, until)?)
    }

    /// Harvests the bus as a [`Harvest`], carrying the auditor's own
    /// saturation-based degradation estimate.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if the bus is not under audit.
    pub fn harvest_bus(&self, until: u64) -> Result<Harvest, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner
            .bus_slot
            .ok_or(DetectorError::NotAudited { unit: "memory-bus" })?;
        Ok(inner.auditor.harvest(slot, until)?)
    }

    /// Harvests the divider histogram buffer, finalizing windows through
    /// `until`.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if no divider is under audit.
    pub fn harvest_divider_histogram(&self, until: u64) -> Result<DensityHistogram, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let (slot, _) = inner.divider_slot.ok_or(DetectorError::NotAudited {
            unit: "integer-divider",
        })?;
        Ok(inner.auditor.harvest_histogram(slot, until)?)
    }

    /// Harvests the divider as a [`Harvest`], carrying the auditor's own
    /// saturation-based degradation estimate.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if no divider is under audit.
    pub fn harvest_divider(&self, until: u64) -> Result<Harvest, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let (slot, _) = inner.divider_slot.ok_or(DetectorError::NotAudited {
            unit: "integer-divider",
        })?;
        Ok(inner.auditor.harvest(slot, until)?)
    }

    /// Harvests the multiplier histogram buffer, finalizing windows through
    /// `until`.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if no multiplier is under
    /// audit.
    pub fn harvest_multiplier_histogram(
        &self,
        until: u64,
    ) -> Result<DensityHistogram, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let (slot, _) = inner.multiplier_slot.ok_or(DetectorError::NotAudited {
            unit: "integer-multiplier",
        })?;
        Ok(inner.auditor.harvest_histogram(slot, until)?)
    }

    /// Harvests the multiplier as a [`Harvest`], carrying the auditor's own
    /// saturation-based degradation estimate.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if no multiplier is under
    /// audit.
    pub fn harvest_multiplier(&self, until: u64) -> Result<Harvest, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let (slot, _) = inner.multiplier_slot.ok_or(DetectorError::NotAudited {
            unit: "integer-multiplier",
        })?;
        Ok(inner.auditor.harvest(slot, until)?)
    }

    /// Drains all recorded conflict-miss records.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotAudited`] if no cache is under audit.
    pub fn drain_conflicts(&self) -> Result<Vec<ConflictRecord>, DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner
            .cache
            .as_ref()
            .ok_or(DetectorError::NotAudited {
                unit: "shared-cache",
            })?
            .slot;
        Ok(inner.auditor.drain_conflicts(slot)?)
    }

    /// Updates the stable principal id attributed to a hardware context.
    /// The OS calls this when it migrates a monitored thread, so the
    /// conflict labels keep identifying the same software principals
    /// (paper §V-A: "we can identify trojan/spy pairs correctly despite
    /// their migration").
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `ctx_index` is not a
    /// valid 3-bit context index.
    pub fn set_principal(&self, ctx_index: u8, principal: u8) -> Result<(), DetectorError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner
            .principals
            .get_mut(ctx_index as usize)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("context index {ctx_index} exceeds the 3-bit context space"),
            })?;
        *slot = principal;
        Ok(())
    }

    /// `(conflict misses, total misses)` seen by the cache audit so far.
    pub fn cache_miss_counts(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        inner
            .cache
            .as_ref()
            .map(|c| (c.conflict_misses, c.total_misses))
            .unwrap_or((0, 0))
    }
}

/// Data harvested over an audited run.
#[derive(Debug, Default)]
pub struct AuditData {
    /// Per-quantum bus-lock density histograms (empty when the bus was not
    /// audited).
    pub bus_histograms: Vec<DensityHistogram>,
    /// Per-quantum divider-wait density histograms.
    pub divider_histograms: Vec<DensityHistogram>,
    /// Per-quantum multiplier-wait density histograms.
    pub multiplier_histograms: Vec<DensityHistogram>,
    /// All conflict-miss records in time order.
    pub conflicts: Vec<ConflictRecord>,
    /// First cycle of the run.
    pub start: u64,
    /// First cycle after the run.
    pub end: u64,
}

/// Runs a machine quantum by quantum, harvesting the CC-auditor at every
/// quantum boundary — the software daemon's loop.
#[derive(Debug, Clone, Copy)]
pub struct QuantumRunner {
    quantum_cycles: u64,
}

impl QuantumRunner {
    /// Creates a runner with the given OS time quantum.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `quantum_cycles` is
    /// zero (the machine could never reach a quantum boundary).
    pub fn new(quantum_cycles: u64) -> Result<Self, DetectorError> {
        if quantum_cycles == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "OS time quantum must be nonzero".to_string(),
            });
        }
        Ok(QuantumRunner { quantum_cycles })
    }

    /// Runs `quanta` OS time quanta from the machine's current time,
    /// harvesting the session's programmed units at each boundary.
    ///
    /// # Errors
    ///
    /// Propagates harvest failures ([`DetectorError`]) from the session;
    /// on error, the machine stays wherever the failing quantum left it.
    pub fn run(
        &self,
        machine: &mut Machine,
        session: &mut AuditSession,
        quanta: usize,
    ) -> Result<AuditData, DetectorError> {
        let start = machine.now().as_u64();
        let mut data = AuditData {
            start,
            ..AuditData::default()
        };
        let (has_bus, has_div, has_mul, has_cache) = {
            let inner = session.inner.borrow();
            (
                inner.bus_slot.is_some(),
                inner.divider_slot.is_some(),
                inner.multiplier_slot.is_some(),
                inner.cache.is_some(),
            )
        };
        for q in 0..quanta {
            let boundary = start + (q as u64 + 1) * self.quantum_cycles;
            let events_before = machine.stats().events_dispatched;
            let mut quantum_span = span::global().span("sim", "quantum");
            machine.run_until(boundary.into());
            if has_bus {
                data.bus_histograms
                    .push(session.harvest_bus_histogram(boundary)?);
                sim_harvests_total().with_label("bus").inc();
            }
            if has_div {
                data.divider_histograms
                    .push(session.harvest_divider_histogram(boundary)?);
                sim_harvests_total().with_label("divider").inc();
            }
            if has_mul {
                data.multiplier_histograms
                    .push(session.harvest_multiplier_histogram(boundary)?);
                sim_harvests_total().with_label("multiplier").inc();
            }
            if has_cache {
                data.conflicts.extend(session.drain_conflicts()?);
                sim_harvests_total().with_label("cache").inc();
            }
            let events = machine.stats().events_dispatched - events_before;
            sim_quanta_total().inc();
            sim_events_total().inc_by(events);
            if span::global().is_enabled() {
                quantum_span.cycle(boundary);
                quantum_span.detail(format_args!("quantum {q}: {events} engine events"));
            }
        }
        data.end = machine.now().as_u64();
        Ok(data)
    }

    /// Runs `quanta` OS time quanta like [`QuantumRunner::run`], but routes
    /// every harvest through a [`FaultInjector`] that models a degraded
    /// collection path. The result carries [`Harvest`] values (which may be
    /// `Partial` or `Missed`) instead of bare histograms, and per-quantum
    /// conflict batches annotated with their estimated lost fraction —
    /// ready to feed the gap-aware online detectors.
    ///
    /// # Errors
    ///
    /// Propagates harvest failures ([`DetectorError`]) from the session.
    pub fn run_with_injector(
        &self,
        machine: &mut Machine,
        session: &mut AuditSession,
        quanta: usize,
        injector: &mut FaultInjector,
    ) -> Result<DegradedAuditData, DetectorError> {
        let start = machine.now().as_u64();
        let mut data = DegradedAuditData {
            start,
            ..DegradedAuditData::default()
        };
        for _ in 0..quanta {
            let quantum = self.run_quantum_with_injector(machine, session, injector)?;
            if let Some(h) = quantum.bus {
                data.bus_harvests.push(h);
            }
            if let Some(h) = quantum.divider {
                data.divider_harvests.push(h);
            }
            if let Some(h) = quantum.multiplier {
                data.multiplier_harvests.push(h);
            }
            if let Some(batch) = quantum.conflicts {
                data.conflicts.push(batch);
            }
        }
        data.end = machine.now().as_u64();
        Ok(data)
    }

    /// Runs exactly one OS time quantum through the fault injector and
    /// returns its harvests — the incremental step a supervised service
    /// loop takes between checkpoints, so callers can stop (or crash and
    /// restore) at any quantum boundary instead of committing to a whole
    /// run up front.
    ///
    /// # Errors
    ///
    /// Propagates harvest failures ([`DetectorError`]) from the session.
    pub fn run_quantum_with_injector(
        &self,
        machine: &mut Machine,
        session: &mut AuditSession,
        injector: &mut FaultInjector,
    ) -> Result<DegradedQuantum, DetectorError> {
        let (has_bus, has_div, has_mul, has_cache) = {
            let inner = session.inner.borrow();
            (
                inner.bus_slot.is_some(),
                inner.divider_slot.is_some(),
                inner.multiplier_slot.is_some(),
                inner.cache.is_some(),
            )
        };
        let boundary = machine.now().as_u64() + self.quantum_cycles;
        let events_before = machine.stats().events_dispatched;
        let mut quantum_span = span::global().span("sim", "quantum");
        machine.run_until(boundary.into());
        let mut quantum = DegradedQuantum {
            boundary,
            ..DegradedQuantum::default()
        };
        if has_bus {
            let histogram = session.harvest_bus_histogram(boundary)?;
            quantum.bus = Some(injector.perturb_harvest(histogram));
            sim_harvests_total().with_label("bus").inc();
        }
        if has_div {
            let histogram = session.harvest_divider_histogram(boundary)?;
            quantum.divider = Some(injector.perturb_harvest(histogram));
            sim_harvests_total().with_label("divider").inc();
        }
        if has_mul {
            let histogram = session.harvest_multiplier_histogram(boundary)?;
            quantum.multiplier = Some(injector.perturb_harvest(histogram));
            sim_harvests_total().with_label("multiplier").inc();
        }
        if has_cache {
            let records = session.drain_conflicts()?;
            quantum.conflicts = Some(injector.perturb_conflicts(records));
            sim_harvests_total().with_label("cache").inc();
        }
        let events = machine.stats().events_dispatched - events_before;
        sim_quanta_total().inc();
        sim_events_total().inc_by(events);
        if span::global().is_enabled() {
            quantum_span.cycle(boundary);
            quantum_span.detail(format_args!("boundary {boundary}: {events} engine events"));
        }
        Ok(quantum)
    }
}

/// One quantum's degraded harvests from
/// [`QuantumRunner::run_quantum_with_injector`]. A field is `None` when
/// the corresponding unit is not under audit.
#[derive(Debug, Default)]
pub struct DegradedQuantum {
    /// Bus-lock harvest, possibly `Partial` or `Missed`.
    pub bus: Option<Harvest>,
    /// Divider-wait harvest.
    pub divider: Option<Harvest>,
    /// Multiplier-wait harvest.
    pub multiplier: Option<Harvest>,
    /// Conflict records with their estimated lost fraction.
    pub conflicts: Option<(Vec<ConflictRecord>, f64)>,
    /// The cycle this quantum ended on.
    pub boundary: u64,
}

/// Data harvested over an audited run through a [`FaultInjector`].
///
/// Unlike [`AuditData`], per-quantum results are [`Harvest`] values: a
/// quantum whose histogram was dropped appears as [`Harvest::Missed`], and
/// a damaged one as [`Harvest::Partial`] with its estimated lost fraction.
#[derive(Debug, Default)]
pub struct DegradedAuditData {
    /// Per-quantum bus-lock harvests (empty when the bus was not audited).
    pub bus_harvests: Vec<Harvest>,
    /// Per-quantum divider-wait harvests.
    pub divider_harvests: Vec<Harvest>,
    /// Per-quantum multiplier-wait harvests.
    pub multiplier_harvests: Vec<Harvest>,
    /// Per-quantum conflict-record batches with their estimated lost
    /// fraction after fault injection.
    pub conflicts: Vec<(Vec<ConflictRecord>, f64)>,
    /// First cycle of the run.
    pub start: u64,
    /// First cycle after the run.
    pub end: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cchunter_sim::{MachineConfig, Op, OpScript};

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::builder()
                .quantum_cycles(100_000)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn bus_audit_counts_locks() {
        let mut m = machine();
        let mut session = AuditSession::new();
        session.audit_bus(10_000).unwrap();
        session.attach(&mut m);
        let ctx = m.config().context_id(0, 0);
        m.spawn(
            Box::new(OpScript::new(
                "locker",
                vec![
                    Op::AtomicUnaligned { addr: 0x40 },
                    Op::AtomicUnaligned { addr: 0x40 },
                ],
            )),
            ctx,
        );
        let data = QuantumRunner::new(100_000)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 1)
            .expect("audit harvest");
        assert_eq!(data.bus_histograms.len(), 1);
        let h = &data.bus_histograms[0];
        assert_eq!(h.contended_windows(), 1, "both locks land in one window");
        assert_eq!(h.frequency(2), 1);
    }

    #[test]
    fn divider_audit_only_counts_its_core() {
        let mut m = machine();
        let mut session = AuditSession::new();
        session.audit_divider(0, 500).unwrap();
        session.attach(&mut m);
        // Contention on core 1: must not be counted.
        m.spawn(
            Box::new(OpScript::new("d1", vec![Op::Div { count: 50 }])),
            m.config().context_id(1, 0),
        );
        m.spawn(
            Box::new(OpScript::new("d2", vec![Op::Div { count: 50 }])),
            m.config().context_id(1, 1),
        );
        let data = QuantumRunner::new(100_000)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 1)
            .expect("audit harvest");
        assert_eq!(data.divider_histograms[0].contended_windows(), 0);
    }

    #[test]
    fn cache_audit_records_cross_context_conflicts() {
        let mut m = machine();
        let mut session = AuditSession::new();
        session
            .audit_cache(
                0,
                m.config().l2.total_blocks() as usize,
                TrackerKind::Practical,
            )
            .unwrap();
        session.attach(&mut m);
        // Two hyperthreads ping-pong 9 lines in one L2 set (8-way): every
        // round-trip evicts the other's line.
        let set_stride = 512 * 64;
        let mk_ops = |base: u64| -> Vec<Op> {
            let mut ops = Vec::new();
            for round in 0..20u64 {
                for i in 0..5u64 {
                    ops.push(Op::Load {
                        addr: base + ((round * 5 + i) % 9) * set_stride,
                    });
                }
                ops.push(Op::Compute { cycles: 100 });
            }
            ops
        };
        m.spawn(
            Box::new(OpScript::new("a", mk_ops(0x100_0000))),
            m.config().context_id(0, 0),
        );
        m.spawn(
            Box::new(OpScript::new("b", mk_ops(0x100_0000 + 9 * set_stride))),
            m.config().context_id(0, 1),
        );
        let data = QuantumRunner::new(100_000)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 1)
            .expect("audit harvest");
        let (conflicts, total) = session.cache_miss_counts();
        assert!(total > 0);
        assert!(conflicts > 0, "ping-pong must classify as conflict misses");
        assert!(!data.conflicts.is_empty());
    }

    #[test]
    fn two_audits_max() {
        let mut session = AuditSession::new();
        session.audit_bus(1_000).unwrap();
        session.audit_divider(0, 500).unwrap();
        let err = session
            .audit_cache(0, 4096, TrackerKind::Practical)
            .unwrap_err();
        assert_eq!(err, AuditorError::SlotsExhausted);
    }

    #[test]
    fn harvest_without_audit_is_typed_error() {
        let session = AuditSession::new();
        assert!(matches!(
            session.harvest_bus_histogram(1_000),
            Err(DetectorError::NotAudited { unit: "memory-bus" })
        ));
        assert!(matches!(
            session.harvest_divider(1_000),
            Err(DetectorError::NotAudited {
                unit: "integer-divider"
            })
        ));
        assert!(matches!(
            session.drain_conflicts(),
            Err(DetectorError::NotAudited {
                unit: "shared-cache"
            })
        ));
    }

    #[test]
    fn zero_quantum_is_typed_error() {
        assert!(matches!(
            QuantumRunner::new(0),
            Err(DetectorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn refused_probe_deliveries_are_counted_and_read_back() {
        let session = AuditSession::new();
        assert_eq!(session.probe_fault_count(), 0);
        assert!(session.take_probe_fault().is_none());
        // The event loop cannot return errors, so a refusal lands in the
        // session-side fault stash instead of unwinding.
        session
            .inner
            .borrow_mut()
            .note_fault(AuditorError::WrongDatapath);
        assert_eq!(session.probe_fault_count(), 1);
        assert!(matches!(
            session.take_probe_fault(),
            Some(DetectorError::Auditor(AuditorError::WrongDatapath))
        ));
        // The stash is take-once; the count keeps the history.
        assert!(session.take_probe_fault().is_none());
        assert_eq!(session.probe_fault_count(), 1);
    }

    #[test]
    fn set_principal_rejects_out_of_range_context() {
        let session = AuditSession::new();
        session.set_principal(7, 3).unwrap();
        assert!(matches!(
            session.set_principal(8, 0),
            Err(DetectorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn injector_runner_yields_complete_harvests_when_fault_free() {
        use cchunter_detector::FaultConfig;
        let mut m = machine();
        let mut session = AuditSession::new();
        session.audit_bus(1_000).unwrap();
        session.attach(&mut m);
        let mut injector = FaultInjector::new(FaultConfig::none(), 1);
        let data = QuantumRunner::new(50_000)
            .expect("nonzero quantum")
            .run_with_injector(&mut m, &mut session, 4, &mut injector)
            .expect("audit harvest");
        assert_eq!(data.bus_harvests.len(), 4);
        assert!(data
            .bus_harvests
            .iter()
            .all(|h| matches!(h, Harvest::Complete(_))));
        assert_eq!(data.end - data.start, 200_000);
    }

    #[test]
    fn injector_runner_drops_quanta_at_full_drop_rate() {
        use cchunter_detector::{FaultClass, FaultConfig};
        let mut m = machine();
        let mut session = AuditSession::new();
        session.audit_bus(1_000).unwrap();
        session.attach(&mut m);
        let config = FaultConfig::none().with_rate(FaultClass::DroppedQuantum, 1.0);
        let mut injector = FaultInjector::new(config, 1);
        let data = QuantumRunner::new(50_000)
            .expect("nonzero quantum")
            .run_with_injector(&mut m, &mut session, 4, &mut injector)
            .expect("audit harvest");
        assert!(data
            .bus_harvests
            .iter()
            .all(|h| matches!(h, Harvest::Missed)));
        assert_eq!(injector.injected(FaultClass::DroppedQuantum), 4);
    }

    #[test]
    fn quantum_runner_advances_time() {
        let mut m = machine();
        let mut session = AuditSession::new();
        session.audit_bus(1_000).unwrap();
        session.attach(&mut m);
        let data = QuantumRunner::new(50_000)
            .expect("nonzero quantum")
            .run(&mut m, &mut session, 4)
            .expect("audit harvest");
        assert_eq!(m.now().as_u64(), 200_000);
        assert_eq!(data.bus_histograms.len(), 4);
        assert_eq!(data.end - data.start, 200_000);
    }
}
