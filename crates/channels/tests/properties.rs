//! Property-based tests for the covert-channel protocol machinery.

use cchunter_channels::{BitClock, DecodeRule, Message, PhaseLayout, SpyLog};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bit_index_inverts_bit_start(
        start in 0u64..1_000_000,
        bit_cycles in 1u64..10_000_000,
        bit in 0usize..1_000,
    ) {
        let clock = BitClock::new(start, bit_cycles);
        prop_assert_eq!(clock.bit_index(clock.bit_start(bit)), Some(bit));
        // Last cycle of the bit still maps to it.
        prop_assert_eq!(
            clock.bit_index(clock.bit_start(bit) + bit_cycles - 1),
            Some(bit)
        );
    }

    #[test]
    fn nothing_happens_before_the_epoch(
        start in 1u64..1_000_000,
        bit_cycles in 1u64..1_000_000,
        before in 0u64..1_000_000,
    ) {
        prop_assume!(before < start);
        let clock = BitClock::new(start, bit_cycles);
        prop_assert_eq!(clock.bit_index(before), None);
        prop_assert!(!clock.in_transmit(before));
        prop_assert!(!clock.in_sample(before));
    }

    #[test]
    fn sequential_layout_never_overlaps_windows(
        bit_cycles in 100u64..1_000_000,
        offset in 0u64..1_000_000,
    ) {
        let clock = BitClock::with_layout(0, bit_cycles, PhaseLayout::sequential());
        let now = offset % (bit_cycles * 3);
        prop_assert!(
            !(clock.in_transmit(now) && clock.in_sample(now)),
            "sequential transmit and sample windows must be disjoint at {now}"
        );
    }

    #[test]
    fn concurrent_layout_sample_implies_some_transmit_coverage(
        bit_cycles in 1_000u64..1_000_000,
    ) {
        // The sample window must lie inside the transmit window so the spy
        // observes live modulation.
        let clock = BitClock::new(0, bit_cycles);
        let (slo, shi) = clock.layout().sample;
        let (tlo, thi) = clock.layout().transmit;
        prop_assert!(tlo <= slo && shi <= thi);
    }

    #[test]
    fn next_bit_start_is_strictly_ahead(
        start in 0u64..1_000,
        bit_cycles in 1u64..100_000,
        now in 0u64..10_000_000,
    ) {
        let clock = BitClock::new(start, bit_cycles);
        let next = clock.next_bit_start(now);
        prop_assert!(next > now || next == start);
        if now >= start {
            prop_assert!(next > now);
            prop_assert!(next - now <= bit_cycles);
            prop_assert_eq!((next - start) % bit_cycles, 0);
        }
    }

    #[test]
    fn message_u64_roundtrip(value in any::<u64>()) {
        let m = Message::from_u64(value);
        let rebuilt = m
            .bits()
            .iter()
            .fold(0u64, |acc, &b| (acc << 1) | b as u64);
        prop_assert_eq!(rebuilt, value);
    }

    #[test]
    fn ber_is_symmetric_for_equal_lengths(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..64),
    ) {
        let (a, b): (Vec<bool>, Vec<bool>) = pairs.into_iter().unzip();
        let ma = Message::from_bits(a);
        let mb = Message::from_bits(b);
        prop_assert_eq!(ma.bit_error_rate(&mb), mb.bit_error_rate(&ma));
        prop_assert!(ma.bit_error_rate(&mb) <= 1.0);
    }

    #[test]
    fn midpoint_decode_recovers_separated_levels(
        bits in prop::collection::vec(any::<bool>(), 2..64),
        low in 10.0f64..100.0,
        gap in 50.0f64..500.0,
    ) {
        // Any message whose per-bit measurements are two separated levels
        // must decode exactly, regardless of the absolute levels.
        prop_assume!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        let mut log = SpyLog::default();
        for (i, &b) in bits.iter().enumerate() {
            log.push_bit(i, if b { low + gap } else { low });
        }
        let decoded = log.decode(DecodeRule::Midpoint, bits.len());
        prop_assert_eq!(decoded.bits(), &bits[..]);
    }

    #[test]
    fn decode_ignores_out_of_range_bits(
        len in 1usize..32,
        extra_bit in 32usize..1_000,
        value in 0.0f64..10.0,
    ) {
        let mut log = SpyLog::default();
        log.push_bit(extra_bit, value);
        let decoded = log.decode(DecodeRule::FixedThreshold(0.5), len);
        prop_assert_eq!(decoded.len(), len);
        prop_assert_eq!(decoded.ones(), 0);
    }
}
