//! Property-based tests for the covert-channel protocol machinery.
//!
//! Hand-rolled deterministic harness (no crates.io access for proptest):
//! each property runs over `CASES` seeded random inputs and assertion
//! messages carry the case seed for direct reproduction.

use cchunter_channels::{BitClock, DecodeRule, Message, PhaseLayout, SpyLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

#[test]
fn bit_index_inverts_bit_start() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB170_0000 + case);
        let start = rng.gen_range(0u64..1_000_000);
        let bit_cycles = rng.gen_range(1u64..10_000_000);
        let bit = rng.gen_range(0usize..1_000);
        let clock = BitClock::new(start, bit_cycles);
        assert_eq!(
            clock.bit_index(clock.bit_start(bit)),
            Some(bit),
            "case {case}"
        );
        // Last cycle of the bit still maps to it.
        assert_eq!(
            clock.bit_index(clock.bit_start(bit) + bit_cycles - 1),
            Some(bit),
            "case {case}"
        );
    }
}

#[test]
fn nothing_happens_before_the_epoch() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE70C_0000 + case);
        let start = rng.gen_range(1u64..1_000_000);
        let bit_cycles = rng.gen_range(1u64..1_000_000);
        let before = rng.gen_range(0u64..start);
        let clock = BitClock::new(start, bit_cycles);
        assert_eq!(clock.bit_index(before), None, "case {case}");
        assert!(!clock.in_transmit(before), "case {case}");
        assert!(!clock.in_sample(before), "case {case}");
    }
}

#[test]
fn sequential_layout_never_overlaps_windows() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5E00_0000 + case);
        let bit_cycles = rng.gen_range(100u64..1_000_000);
        let offset = rng.gen_range(0u64..1_000_000);
        let clock = BitClock::with_layout(0, bit_cycles, PhaseLayout::sequential());
        let now = offset % (bit_cycles * 3);
        assert!(
            !(clock.in_transmit(now) && clock.in_sample(now)),
            "case {case}: sequential transmit and sample windows must be disjoint at {now}"
        );
    }
}

#[test]
fn concurrent_layout_sample_implies_some_transmit_coverage() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC07C_0000 + case);
        let bit_cycles = rng.gen_range(1_000u64..1_000_000);
        // The sample window must lie inside the transmit window so the spy
        // observes live modulation.
        let clock = BitClock::new(0, bit_cycles);
        let (slo, shi) = clock.layout().sample;
        let (tlo, thi) = clock.layout().transmit;
        assert!(tlo <= slo && shi <= thi, "case {case}");
    }
}

#[test]
fn next_bit_start_is_strictly_ahead() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0EB1_0000 + case);
        let start = rng.gen_range(0u64..1_000);
        let bit_cycles = rng.gen_range(1u64..100_000);
        let now = rng.gen_range(0u64..10_000_000);
        let clock = BitClock::new(start, bit_cycles);
        let next = clock.next_bit_start(now);
        assert!(next > now || next == start, "case {case}");
        if now >= start {
            assert!(next > now, "case {case}");
            assert!(next - now <= bit_cycles, "case {case}");
            assert_eq!((next - start) % bit_cycles, 0, "case {case}");
        }
    }
}

#[test]
fn message_u64_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0640_0000 + case);
        let value = rng.gen_range(0..u64::MAX);
        let m = Message::from_u64(value);
        let rebuilt = m.bits().iter().fold(0u64, |acc, &b| (acc << 1) | b as u64);
        assert_eq!(rebuilt, value, "case {case}");
    }
}

#[test]
fn ber_is_symmetric_for_equal_lengths() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBE50_0000 + case);
        let len = rng.gen_range(1usize..64);
        let a: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        let b: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        let ma = Message::from_bits(a);
        let mb = Message::from_bits(b);
        assert_eq!(
            ma.bit_error_rate(&mb),
            mb.bit_error_rate(&ma),
            "case {case}"
        );
        assert!(ma.bit_error_rate(&mb) <= 1.0, "case {case}");
    }
}

#[test]
fn midpoint_decode_recovers_separated_levels() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4111_0000 + case);
        let len = rng.gen_range(2usize..64);
        let mut bits: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        // Force both levels to appear so a midpoint exists.
        bits[0] = false;
        bits[len - 1] = true;
        let low = rng.gen_range(10.0f64..100.0);
        let gap = rng.gen_range(50.0f64..500.0);
        // Any message whose per-bit measurements are two separated levels
        // must decode exactly, regardless of the absolute levels.
        let mut log = SpyLog::default();
        for (i, &b) in bits.iter().enumerate() {
            log.push_bit(i, if b { low + gap } else { low });
        }
        let decoded = log.decode(DecodeRule::Midpoint, bits.len());
        assert_eq!(decoded.bits(), &bits[..], "case {case}");
    }
}

#[test]
fn decode_ignores_out_of_range_bits() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1640_0000 + case);
        let len = rng.gen_range(1usize..32);
        let extra_bit = rng.gen_range(32usize..1_000);
        let value = rng.gen_range(0.0f64..10.0);
        let mut log = SpyLog::default();
        log.push_bit(extra_bit, value);
        let decoded = log.decode(DecodeRule::FixedThreshold(0.5), len);
        assert_eq!(decoded.len(), len, "case {case}");
        assert_eq!(decoded.ones(), 0, "case {case}");
    }
}
