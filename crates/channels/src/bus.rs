//! The memory bus / QPI covert timing channel (paper §IV-A, after Wu et
//! al., USENIX Security 2012).
//!
//! To transmit '1' the trojan repeatedly performs atomic unaligned memory
//! accesses spanning two cache lines, each of which locks the memory bus
//! (QPI platforms emulate the same behaviour); for '0' it leaves the bus
//! alone. The spy — on a *different core* — streams through a large buffer
//! so every load misses L2 and crosses the bus, and infers the bit from the
//! average memory latency (Figure 2).
//!
//! At low bandwidths the trojan emits *bursts* of locks separated by
//! dormancy (the paper §VI-A: low-bandwidth channels "create a certain
//! number of conflicts … frequently followed by longer periods of
//! dormancy"), which keeps each burst's event density high even when the
//! average rate is tiny — exactly why CC-Hunter's likelihood ratio stays
//! above 0.9 at 0.1 bps.

use crate::message::Message;
use crate::protocol::{BitClock, SpyLogHandle};
use cchunter_sim::{Op, Program, ProgramView};

/// Configuration shared by the trojan and spy of one bus channel.
#[derive(Debug, Clone)]
pub struct BusChannelConfig {
    /// The message the trojan transmits.
    pub message: Message,
    /// The shared bit clock.
    pub clock: BitClock,
    /// Target cycles between consecutive bus locks inside a burst
    /// (lock latency + pacing compute).
    pub lock_interval: u64,
    /// Locks per burst before a dormancy gap.
    pub burst_locks: u64,
    /// Upper bound on locks per '1' bit; long bit intervals spread this
    /// budget across periodic bursts.
    pub max_locks_per_bit: u64,
    /// Loads per spy probe sequence.
    pub probe_loads: u32,
    /// Probe sequences the spy takes per sample window.
    pub samples_per_bit: u32,
}

impl BusChannelConfig {
    /// A channel transmitting `message` with the given clock and the
    /// paper-calibrated defaults (≈ 20 locks per 100 k-cycle Δt window
    /// inside a burst).
    pub fn new(message: Message, clock: BitClock) -> Self {
        BusChannelConfig {
            message,
            clock,
            lock_interval: 5_000,
            burst_locks: 400,
            max_locks_per_bit: 24_000,
            probe_loads: 8,
            samples_per_bit: 6,
        }
    }

    /// Dormancy gap between lock bursts within a '1' bit.
    fn dormancy_gap(&self) -> u64 {
        let bursts = (self.max_locks_per_bit / self.burst_locks).max(1);
        let busy = self.burst_locks * self.lock_interval;
        let per_burst_budget = self.clock.transmit_cycles() / bursts;
        per_burst_budget.saturating_sub(busy).max(1)
    }

    /// Duration of one lock burst.
    fn burst_cycles(&self) -> u64 {
        self.burst_locks * self.lock_interval
    }

    /// Length of one burst-plus-dormancy slot on the shared grid. The spy
    /// (synchronized with the trojan through the bit clock) samples inside
    /// these slots, which is what keeps the channel decodable at very low
    /// bandwidths.
    pub fn burst_period(&self) -> u64 {
        self.burst_cycles() + self.dormancy_gap()
    }

    /// Whether `now` (inside the bit starting at `bit_start`) falls within
    /// a lock-burst slot.
    pub fn in_burst(&self, now: u64, bit_start: u64) -> bool {
        let rel = now.saturating_sub(bit_start);
        rel % self.burst_period() < self.burst_cycles()
    }

    /// First cycle of the burst slot at or after `now`.
    pub fn next_burst_start(&self, now: u64, bit_start: u64) -> u64 {
        if self.in_burst(now, bit_start) {
            return now;
        }
        let rel = now.saturating_sub(bit_start);
        bit_start + (rel / self.burst_period() + 1) * self.burst_period()
    }
}

/// The transmitting (trojan) side of the bus channel.
#[derive(Debug)]
pub struct BusTrojan {
    config: BusChannelConfig,
    lock_addr: u64,
    locks_this_bit: u64,
    locks_this_burst: u64,
    current_bit: Option<usize>,
    /// Alternate lock / pacing-compute ops.
    pace_next: bool,
}

impl BusTrojan {
    /// Creates the trojan. `lock_addr` is the line-pair address it issues
    /// its atomic unaligned accesses against.
    pub fn new(config: BusChannelConfig, lock_addr: u64) -> Self {
        BusTrojan {
            config,
            lock_addr,
            locks_this_bit: 0,
            locks_this_burst: 0,
            current_bit: None,
            pace_next: false,
        }
    }
}

impl Program for BusTrojan {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let now = view.now.as_u64();
        let clock = self.config.clock;
        if now >= clock.end_of_message(self.config.message.len()) {
            return Op::Halt;
        }
        let Some(bit_index) = clock.bit_index(now) else {
            // Before the agreed epoch: wait for it.
            return Op::Idle {
                cycles: clock.start() - now,
            };
        };
        if self.current_bit != Some(bit_index) {
            self.current_bit = Some(bit_index);
            self.locks_this_bit = 0;
            self.locks_this_burst = 0;
            self.pace_next = false;
        }
        let bit = self.config.message.bit(bit_index).unwrap_or(false);
        let in_transmit = clock.in_transmit(now);
        if !bit || !in_transmit || self.locks_this_bit >= self.config.max_locks_per_bit {
            // '0' bit, outside the transmit window, or budget exhausted:
            // leave the bus un-contended until the next bit.
            return Op::Idle {
                cycles: clock.next_bit_start(now) - now,
            };
        }
        if self.locks_this_burst >= self.config.burst_locks {
            // Dormancy between bursts.
            self.locks_this_burst = 0;
            return Op::Idle {
                cycles: self.config.dormancy_gap(),
            };
        }
        if self.pace_next {
            self.pace_next = false;
            // Pace to the configured lock interval (the last latency was
            // the lock op itself).
            let pacing = self
                .config
                .lock_interval
                .saturating_sub(view.last_latency)
                .max(1);
            return Op::Compute { cycles: pacing };
        }
        self.pace_next = true;
        self.locks_this_bit += 1;
        self.locks_this_burst += 1;
        Op::AtomicUnaligned {
            addr: self.lock_addr,
        }
    }

    fn name(&self) -> &str {
        "bus-trojan"
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpyState {
    /// Waiting for the next sample window.
    Waiting,
    /// Issuing the probe loads of one sequence.
    Probing { issued: u32, start: u64 },
}

/// The receiving (spy) side of the bus channel.
///
/// The spy walks a streaming buffer (every load is a fresh line, so it
/// always misses L2 and crosses the bus) and averages the per-load latency
/// over each probe sequence; per-bit averages are decoded with the adaptive
/// midpoint rule.
#[derive(Debug)]
pub struct BusSpy {
    config: BusChannelConfig,
    log: SpyLogHandle,
    region_base: u64,
    region_bytes: u64,
    cursor: u64,
    state: SpyState,
    samples_this_bit: u32,
    budget_bit: Option<usize>,
    bit_sum: f64,
    bit_count: u32,
    acc_bit: Option<usize>,
}

impl BusSpy {
    /// Creates the spy. `region_base` is the start of the streaming buffer
    /// it probes through (must not collide with other programs' data).
    pub fn new(config: BusChannelConfig, region_base: u64, log: SpyLogHandle) -> Self {
        BusSpy {
            config,
            log,
            region_base,
            region_bytes: 8 * 1024 * 1024,
            cursor: 0,
            state: SpyState::Waiting,
            samples_this_bit: 0,
            budget_bit: None,
            bit_sum: 0.0,
            bit_count: 0,
            acc_bit: None,
        }
    }

    fn next_probe_addr(&mut self) -> u64 {
        let addr = self.region_base + self.cursor;
        self.cursor = (self.cursor + 64) % self.region_bytes;
        addr
    }

    fn flush_bit(&mut self) {
        if let Some(bit) = self.acc_bit.take() {
            if self.bit_count > 0 {
                self.log
                    .borrow_mut()
                    .push_bit(bit, self.bit_sum / self.bit_count as f64);
            }
        }
        self.bit_sum = 0.0;
        self.bit_count = 0;
    }
}

impl Program for BusSpy {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let now = view.now.as_u64();
        let clock = self.config.clock;

        // Finish an in-flight probe sequence first.
        if let SpyState::Probing { issued, start } = self.state {
            if issued < self.config.probe_loads {
                self.state = SpyState::Probing {
                    issued: issued + 1,
                    start,
                };
                let addr = self.next_probe_addr();
                return Op::Load { addr };
            }
            // Sequence complete: `now` is the completion of the last load.
            let avg = (now - start) as f64 / self.config.probe_loads as f64;
            let bit = clock.bit_index(start).unwrap_or(0);
            if self.acc_bit != Some(bit) {
                self.flush_bit();
                self.acc_bit = Some(bit);
            }
            self.log.borrow_mut().push_sample(now, bit, avg);
            self.bit_sum += avg;
            self.bit_count += 1;
            self.samples_this_bit += 1;
            self.state = SpyState::Waiting;
        }

        if now >= clock.end_of_message(self.config.message.len()) {
            self.flush_bit();
            return Op::Halt;
        }

        // Start the next probe sequence when inside a sample window with
        // budget left; otherwise sleep to the next window.
        let in_window = clock.in_sample(now);
        let window_bit = clock.bit_index(now);
        if in_window && self.budget_bit != window_bit {
            // A new bit interval begins: fresh sampling budget.
            self.budget_bit = window_bit;
            self.samples_this_bit = 0;
        }
        if in_window && self.samples_this_bit < self.config.samples_per_bit {
            // Sample inside the shared burst grid's contention slots: a
            // contended bus is only observable while the trojan locks it.
            let bit_start = clock.bit_start(window_bit.unwrap_or(0));
            if self.config.in_burst(now, bit_start) {
                self.state = SpyState::Probing {
                    issued: 1,
                    start: now,
                };
                let addr = self.next_probe_addr();
                return Op::Load { addr };
            }
            let next = self
                .config
                .next_burst_start(now, bit_start)
                .min(clock.next_bit_start(now));
            return Op::Idle {
                cycles: (next - now).max(1),
            };
        }
        let target = if now < clock.sample_start(now) {
            clock.sample_start(now)
        } else {
            let next = clock.next_bit_start(now);
            clock.sample_start(next)
        };
        Op::Idle {
            cycles: (target - now).max(1),
        }
    }

    fn name(&self) -> &str {
        "bus-spy"
    }
}

/// An evasion aide: emits bus locks at random (exponentially distributed)
/// intervals, attempting to drown the channel's burst pattern in chaff
/// (paper §III: "the trojan artificially inflating the patterns of random
/// conflicts to evade detection").
///
/// The paper's counter-argument — that such noise destroys the channel's
/// own reliability long before it hides the bursts — is demonstrated by
/// the `evasion_study` experiment.
#[derive(Debug)]
pub struct LockChaff {
    mean_interval: u64,
    addr: u64,
    /// xorshift state for the exponential draws.
    rng: u64,
}

impl LockChaff {
    /// Creates a chaff generator locking the bus once every
    /// `mean_interval` cycles on average.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interval` is zero. Use [`LockChaff::try_new`] for a
    /// fallible variant.
    pub fn new(mean_interval: u64, addr: u64, seed: u64) -> Self {
        match Self::try_new(mean_interval, addr, seed) {
            Ok(chaff) => chaff,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`LockChaff::new`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::ChannelError::InvalidConfig`] if `mean_interval`
    /// is zero.
    pub fn try_new(mean_interval: u64, addr: u64, seed: u64) -> Result<Self, crate::ChannelError> {
        if mean_interval == 0 {
            return Err(crate::ChannelError::InvalidConfig {
                reason: "mean interval must be nonzero".into(),
            });
        }
        Ok(LockChaff {
            mean_interval,
            addr,
            rng: seed | 1,
        })
    }

    fn next_gap(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        // Exponential via inverse CDF on a uniform in (0, 1).
        let u = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        let gap = -(1.0 - u).ln() * self.mean_interval as f64;
        gap.max(1.0) as u64
    }
}

impl Program for LockChaff {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        // Alternate idle-gap / lock pairs; the gap dominates, so emitting
        // the pair as two ops keeps the rate accurate.
        if self.rng & 1 == 0 {
            self.rng |= 1;
            return Op::AtomicUnaligned { addr: self.addr };
        }
        let gap = self.next_gap();
        self.rng &= !1;
        Op::Idle { cycles: gap }
    }

    fn name(&self) -> &str {
        "lock-chaff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DecodeRule, SpyLog};
    use cchunter_sim::{Machine, MachineConfig};

    fn run_channel(message: Message, bit_cycles: u64) -> (Message, usize) {
        let clock = BitClock::new(10_000, bit_cycles);
        let config = BusChannelConfig::new(message.clone(), clock);
        let mut machine = Machine::new(MachineConfig::default());
        let log = SpyLog::new_handle();
        let trojan_ctx = machine.config().context_id(0, 0);
        let spy_ctx = machine.config().context_id(1, 0);
        machine.spawn(
            Box::new(BusTrojan::new(config.clone(), 0x1000_0000)),
            trojan_ctx,
        );
        machine.spawn(
            Box::new(BusSpy::new(config, 0x4000_0000, log.clone())),
            spy_ctx,
        );
        let trace = machine.attach_trace();
        machine.run_for(10_000 + bit_cycles * (message.len() as u64 + 1));
        let locks = trace
            .borrow()
            .events()
            .iter()
            .filter(|e| matches!(e, cchunter_sim::ProbeEvent::BusLock { .. }))
            .count();
        let decoded = log.borrow().decode(DecodeRule::Midpoint, message.len());
        (decoded, locks)
    }

    #[test]
    fn spy_decodes_alternating_message() {
        let message = Message::alternating(8);
        let (decoded, locks) = run_channel(message.clone(), 250_000);
        assert!(locks > 0, "trojan must lock the bus");
        assert_eq!(
            message.bit_error_rate(&decoded),
            0.0,
            "sent {message} got {decoded}"
        );
    }

    #[test]
    fn spy_decodes_arbitrary_bits() {
        let message = Message::from_bits(vec![
            true, true, false, true, false, false, true, false, true, true,
        ]);
        let (decoded, _) = run_channel(message.clone(), 250_000);
        assert_eq!(
            message.bit_error_rate(&decoded),
            0.0,
            "sent {message} got {decoded}"
        );
    }

    #[test]
    fn zero_bits_produce_no_locks() {
        let message = Message::from_bits(vec![false; 6]);
        let (_, locks) = run_channel(message, 250_000);
        assert_eq!(locks, 0);
    }

    #[test]
    fn lock_budget_is_respected() {
        let message = Message::from_bits(vec![true]);
        let clock = BitClock::new(0, 2_000_000);
        let mut config = BusChannelConfig::new(message, clock);
        config.max_locks_per_bit = 50;
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        machine.spawn(Box::new(BusTrojan::new(config, 0x1000)), ctx);
        machine.run_for(2_100_000);
        assert!(machine.stats().bus_locks <= 50);
        assert!(machine.stats().bus_locks >= 40, "budget mostly used");
    }

    #[test]
    fn chaff_locks_at_roughly_the_requested_rate() {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        machine.spawn(Box::new(LockChaff::new(50_000, 0x40, 99)), ctx);
        machine.run_for(50_000_000);
        let locks = machine.stats().bus_locks;
        // Expect ≈ 1000 ± wide tolerance (exponential gaps + lock latency).
        assert!(
            (500..=1_200).contains(&locks),
            "expected ≈1000 chaff locks, got {locks}"
        );
    }

    #[test]
    fn dormancy_gap_spreads_budget() {
        let clock = BitClock::new(0, 250_000_000); // 10 bps
        let config = BusChannelConfig::new(Message::from_bits(vec![true]), clock);
        let gap = config.dormancy_gap();
        // 60 bursts of 400 locks × 5k cycles = 2M busy per burst.
        assert!(gap > 0);
        let bursts = config.max_locks_per_bit / config.burst_locks;
        let total = bursts * (config.burst_locks * config.lock_interval + gap);
        let window = config.clock.transmit_cycles();
        assert!(total <= window + window / 10);
    }
}
