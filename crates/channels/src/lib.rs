//! # cchunter-channels
//!
//! Faithful re-implementations of the three covert timing channels the
//! CC-Hunter paper evaluates, expressed as trojan/spy program pairs for the
//! `cchunter-sim` substrate:
//!
//! * [`bus`] — the **memory bus / QPI** channel (Wu et al., USENIX Sec'12):
//!   the trojan transmits '1' by issuing atomic unaligned accesses spanning
//!   two cache lines, locking the bus; the spy times its own memory misses.
//! * [`divider`] — the **integer divider** channel (after Wang & Lee): the
//!   trojan and spy run as hyperthreads of one SMT core; '1' saturates the
//!   divider bank, and the spy times fixed division loops.
//! * [`cache`] — the **shared L2 cache** channel (Xu et al., CCSW'11): the
//!   trojan evicts one of two cache-set groups (G1 for '1', G0 for '0');
//!   the spy primes both and compares probe latencies.
//!
//! Every channel is an *actual* timing channel on the simulated hardware:
//! the spy decodes the message from observed latencies alone, and the
//! integration tests assert the decoded bits match the transmitted message.
//! The channels deliberately do not share state with the detector — the
//! only coupling is through hardware contention, exactly as on a real
//! machine.
//!
//! ## Example
//!
//! ```
//! use cchunter_channels::{BitClock, Message};
//!
//! let msg = Message::from_u64(0x1234_5678_9ABC_DEF0);
//! assert_eq!(msg.len(), 64);
//! let clock = BitClock::new(1_000, 100_000); // bits of 100k cycles from cycle 1000
//! assert_eq!(clock.bit_index(1_000), Some(0));
//! assert_eq!(clock.bit_index(150_000), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cache;
pub mod divider;
pub mod error;
pub mod message;
pub mod protocol;

pub use bus::{BusChannelConfig, BusSpy, BusTrojan, LockChaff};
pub use cache::{CacheChannelConfig, CacheSpy, CacheTrojan};
pub use divider::{DividerChannelConfig, DividerSpy, DividerTrojan, ExecUnit};
pub use error::ChannelError;
pub use message::Message;
pub use protocol::{BitClock, DecodeRule, Phase, PhaseLayout, SpyLog, SpyLogHandle};
