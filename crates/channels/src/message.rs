//! Covert message encoding and fidelity metrics.

use rand::Rng;
use std::fmt;

/// A bit string transmitted over a covert channel.
///
/// The paper's running example is "a randomly-chosen 64-bit credit card
/// number"; [`Message::from_u64`] builds exactly that,
/// [`Message::random`] generates the Figure 12 message sweep.
///
/// ```
/// use cchunter_channels::Message;
/// let m = Message::from_u64(0b1011);
/// assert_eq!(&m.bits()[60..], &[true, false, true, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Message {
    bits: Vec<bool>,
}

impl Message {
    /// Creates a message from explicit bits (transmitted in order).
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Message { bits }
    }

    /// Creates a 64-bit message from `value`, most significant bit first.
    pub fn from_u64(value: u64) -> Self {
        Message {
            bits: (0..64).rev().map(|i| (value >> i) & 1 == 1).collect(),
        }
    }

    /// Generates a random message of `len` bits.
    pub fn random<R: Rng>(rng: &mut R, len: usize) -> Self {
        Message {
            bits: (0..len).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    /// An alternating 1010… pattern of `len` bits (a worst-case switching
    /// pattern, useful in tests).
    pub fn alternating(len: usize) -> Self {
        Message {
            bits: (0..len).map(|i| i % 2 == 0).collect(),
        }
    }

    /// The bits in transmission order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The bit at `index`, or `None` past the end.
    pub fn bit(&self, index: usize) -> Option<bool> {
        self.bits.get(index).copied()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of '1' bits.
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Encodes the message with `n`-fold repetition (each bit transmitted
    /// `n` times in a row) — the simple forward-error-correction real
    /// covert channels use against noisy co-tenants (cf. Xu et al.'s ≥20%
    /// raw error rates under co-tenancy).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero. Use [`Message::try_repeat_encode`] for a
    /// fallible variant.
    ///
    /// ```
    /// use cchunter_channels::Message;
    /// let m = Message::from_bits(vec![true, false]);
    /// assert_eq!(m.repeat_encode(3).bits(), &[true, true, true, false, false, false]);
    /// ```
    pub fn repeat_encode(&self, n: usize) -> Message {
        match self.try_repeat_encode(n) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Message::repeat_encode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::ChannelError::InvalidConfig`] if `n` is zero.
    pub fn try_repeat_encode(&self, n: usize) -> Result<Message, crate::ChannelError> {
        if n == 0 {
            return Err(crate::ChannelError::InvalidConfig {
                reason: "repetition factor must be nonzero".into(),
            });
        }
        Ok(Message {
            bits: self
                .bits
                .iter()
                .flat_map(|&b| std::iter::repeat_n(b, n))
                .collect(),
        })
    }

    /// Decodes an `n`-fold repetition encoding by majority vote per group
    /// (ties decode to '1').
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero. Use [`Message::try_repeat_decode`] for a
    /// fallible variant.
    ///
    /// ```
    /// use cchunter_channels::Message;
    /// let noisy = Message::from_bits(vec![true, false, true, false, false, false]);
    /// assert_eq!(noisy.repeat_decode(3).bits(), &[true, false]);
    /// ```
    pub fn repeat_decode(&self, n: usize) -> Message {
        match self.try_repeat_decode(n) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Message::repeat_decode`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::ChannelError::InvalidConfig`] if `n` is zero.
    pub fn try_repeat_decode(&self, n: usize) -> Result<Message, crate::ChannelError> {
        if n == 0 {
            return Err(crate::ChannelError::InvalidConfig {
                reason: "repetition factor must be nonzero".into(),
            });
        }
        Ok(Message {
            bits: self
                .bits
                .chunks(n)
                .map(|group| {
                    let ones = group.iter().filter(|&&b| b).count();
                    ones * 2 >= group.len()
                })
                .collect(),
        })
    }

    /// Bit error rate of `received` against this message: differing bits
    /// (plus any length shortfall) divided by this message's length.
    ///
    /// ```
    /// use cchunter_channels::Message;
    /// let sent = Message::from_bits(vec![true, false, true, true]);
    /// let recv = Message::from_bits(vec![true, true, true, true]);
    /// assert!((sent.bit_error_rate(&recv) - 0.25).abs() < 1e-12);
    /// ```
    pub fn bit_error_rate(&self, received: &Message) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        let compared = self.bits.len().min(received.bits.len());
        let wrong = self.bits[..compared]
            .iter()
            .zip(&received.bits[..compared])
            .filter(|(a, b)| a != b)
            .count()
            + (self.bits.len() - compared);
        wrong as f64 / self.bits.len() as f64
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Message {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Message {
            bits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn from_u64_is_msb_first() {
        let m = Message::from_u64(0x8000_0000_0000_0001);
        assert!(m.bit(0).unwrap());
        assert!(!m.bit(1).unwrap());
        assert!(m.bit(63).unwrap());
        assert_eq!(m.ones(), 2);
    }

    #[test]
    fn display_roundtrips_bits() {
        let m = Message::from_bits(vec![true, false, true]);
        assert_eq!(m.to_string(), "101");
    }

    #[test]
    fn ber_of_identical_messages_is_zero() {
        let m = Message::from_u64(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.bit_error_rate(&m.clone()), 0.0);
    }

    #[test]
    fn ber_counts_missing_bits_as_errors() {
        let sent = Message::from_bits(vec![true; 8]);
        let recv = Message::from_bits(vec![true; 6]);
        assert!((sent.bit_error_rate(&recv) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(Message::random(&mut a, 64), Message::random(&mut b, 64));
    }

    #[test]
    fn alternating_pattern() {
        let m = Message::alternating(4);
        assert_eq!(m.bits(), &[true, false, true, false]);
    }

    #[test]
    fn repetition_roundtrip() {
        let m = Message::from_u64(0xDEAD_BEEF_1234_5678);
        assert_eq!(m.repeat_encode(5).repeat_decode(5), m);
        assert_eq!(m.repeat_encode(1).repeat_decode(1), m);
    }

    #[test]
    fn repetition_corrects_minority_errors() {
        let m = Message::from_bits(vec![true, false, true, false]);
        let mut coded: Vec<bool> = m.repeat_encode(3).bits().to_vec();
        // Flip one symbol per group: majority still wins.
        for group in 0..4 {
            coded[group * 3 + group % 3] = !coded[group * 3 + group % 3];
        }
        let decoded = Message::from_bits(coded).repeat_decode(3);
        assert_eq!(decoded, m);
    }

    #[test]
    fn repetition_decode_handles_ragged_tail() {
        let m = Message::from_bits(vec![true, true, false]);
        assert_eq!(m.repeat_decode(2).bits(), &[true, false]);
    }

    #[test]
    fn empty_message_edge_cases() {
        let m = Message::from_bits(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.bit_error_rate(&Message::from_bits(vec![true])), 0.0);
        assert_eq!(m.bit(0), None);
    }
}
