//! The shared L2 cache covert timing channel (paper §IV-C, after Xu et
//! al., CCSW 2011).
//!
//! The trojan and spy agree (during their synchronization phase) on two
//! groups of cache sets, G1 and G0. To transmit '1' the trojan visits G1
//! and replaces all of its constituent blocks; for '0' it does the same to
//! G0. The spy keeps one of its own lines resident in every set of both
//! groups and, each bit, times a probe pass over G1 and over G0: the group
//! the trojan visited misses (slow), the other hits (fast), so the latency
//! *ratio* decodes the bit (Figure 7).
//!
//! The resulting conflict-miss event train alternates blocks of
//! trojan→spy and spy→trojan replacements — one of each per active set per
//! bit — giving the square-wave symbol series whose autocorrelogram peaks
//! near the total number of sets used (Figure 8).

use crate::error::ChannelError;
use crate::message::Message;
use crate::protocol::{BitClock, PhaseLayout, SpyLogHandle};
use cchunter_sim::{Op, Program, ProgramView};
use std::ops::Range;

/// Configuration shared by the trojan and spy of one cache channel.
#[derive(Debug, Clone)]
pub struct CacheChannelConfig {
    /// The message the trojan transmits.
    pub message: Message,
    /// The shared bit clock.
    pub clock: BitClock,
    /// Total cache sets used for signaling (split evenly into G1 and G0).
    /// The paper's Figure 8 uses 512; Figure 13 sweeps 64–256.
    pub total_sets: u32,
    /// Number of sets of the shared L2 (512 for the paper's 256 KB L2).
    pub l2_sets: u32,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L2 associativity; the trojan touches this many lines per set to
    /// guarantee eviction.
    pub ways: u32,
    /// Base address of the trojan's eviction arrays (32 KB-aligned).
    pub trojan_base: u64,
    /// Base address of the spy's probe lines (32 KB-aligned).
    pub spy_base: u64,
    /// When set, the trojan re-sweeps the active group every `interval`
    /// cycles within the bit and the spy probes midway between sweeps —
    /// how low-bandwidth channels keep producing conflicts "frequently
    /// followed by longer periods of dormancy" (paper §VI-A). `None`
    /// modulates once per bit.
    pub resweep_interval: Option<u64>,
    /// Random extra lines the trojan touches per bit outside its eviction
    /// arrays — the "random conflict misses in the surrounding code" that
    /// push the observed autocorrelation wavelength slightly above the set
    /// count (533 vs. 512 in the paper's Figure 8).
    pub noise_loads_per_bit: u32,
}

impl CacheChannelConfig {
    /// A channel transmitting `message` using `total_sets` cache sets, with
    /// the paper's L2 geometry.
    ///
    /// # Panics
    ///
    /// Panics if `total_sets` is zero, odd, or exceeds the L2 set count.
    /// Use [`CacheChannelConfig::try_new`] for a fallible variant.
    pub fn new(message: Message, clock: BitClock, total_sets: u32) -> Self {
        match Self::try_new(message, clock, total_sets) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`CacheChannelConfig::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] if `total_sets` is zero,
    /// odd, or exceeds the L2 set count.
    pub fn try_new(
        message: Message,
        clock: BitClock,
        total_sets: u32,
    ) -> Result<Self, ChannelError> {
        // Cache state persists, so the spy probes *after* the trojan's
        // sweep: force the sequential phase layout.
        let clock = BitClock::try_with_layout(
            clock.start(),
            clock.bit_cycles(),
            PhaseLayout::sequential(),
        )?;
        let config = CacheChannelConfig {
            message,
            clock,
            total_sets,
            l2_sets: 512,
            line_bytes: 64,
            ways: 8,
            trojan_base: 0x1000_0000,
            spy_base: 0x2000_0000,
            resweep_interval: None,
            noise_loads_per_bit: 8,
        };
        config.validate()?;
        Ok(config)
    }

    /// Enables periodic re-modulation within each bit (see
    /// [`resweep_interval`](Self::resweep_interval)).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero. Use
    /// [`CacheChannelConfig::try_with_resweep`] for a fallible variant.
    pub fn with_resweep(self, interval: u64) -> Self {
        match self.try_with_resweep(interval) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`CacheChannelConfig::with_resweep`].
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] if `interval` is zero.
    pub fn try_with_resweep(mut self, interval: u64) -> Result<Self, ChannelError> {
        if interval == 0 {
            return Err(ChannelError::InvalidConfig {
                reason: "resweep interval must be nonzero".into(),
            });
        }
        self.resweep_interval = Some(interval);
        Ok(self)
    }

    /// Overrides the per-bit surrounding-code noise loads.
    pub fn with_noise_loads(mut self, loads: u32) -> Self {
        self.noise_loads_per_bit = loads;
        self
    }

    fn validate(&self) -> Result<(), ChannelError> {
        if self.total_sets == 0 || !self.total_sets.is_multiple_of(2) {
            return Err(ChannelError::InvalidConfig {
                reason: "total_sets must be a positive even number".into(),
            });
        }
        if self.total_sets > self.l2_sets {
            return Err(ChannelError::InvalidConfig {
                reason: "cannot signal on more sets than the L2 has".into(),
            });
        }
        Ok(())
    }

    /// Sets per group (|G1| = |G0|).
    pub fn group_size(&self) -> u32 {
        self.total_sets / 2
    }

    /// The set indices of G1 (used for '1') or G0 (used for '0').
    pub fn group_sets(&self, bit: bool) -> Range<u32> {
        let g = self.group_size();
        if bit {
            0..g
        } else {
            g..2 * g
        }
    }

    /// Address of `way`-th line mapping to `set` in an array at `base`
    /// (way stride = one full L2 footprint keeps the set index fixed).
    pub fn line_addr(&self, base: u64, set: u32, way: u32) -> u64 {
        base + way as u64 * self.l2_sets as u64 * self.line_bytes + set as u64 * self.line_bytes
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrojanState {
    /// Waiting for the next sweep time.
    Waiting,
    /// Touching the per-bit surrounding-code noise lines.
    NoiseLoads { remaining: u32 },
    /// Sweeping the active group: flat index into (set, way) pairs.
    Sweeping { index: u32 },
}

/// The transmitting (trojan) side: evicts one set group per bit.
#[derive(Debug)]
pub struct CacheTrojan {
    config: CacheChannelConfig,
    state: TrojanState,
    current_bit: Option<usize>,
    /// Next scheduled sweep start within the current bit.
    next_sweep: u64,
    /// Cheap deterministic generator for the noise-line addresses.
    noise_rng: u64,
}

impl CacheTrojan {
    /// Creates the trojan.
    pub fn new(config: CacheChannelConfig) -> Self {
        CacheTrojan {
            config,
            state: TrojanState::Waiting,
            current_bit: None,
            next_sweep: 0,
            noise_rng: 0x0123_4567_89AB_CDEF,
        }
    }

    fn noise_addr(&mut self) -> u64 {
        // xorshift64 — deterministic "surrounding code" accesses landing on
        // random channel sets at way indices beyond the eviction arrays.
        self.noise_rng ^= self.noise_rng << 13;
        self.noise_rng ^= self.noise_rng >> 7;
        self.noise_rng ^= self.noise_rng << 17;
        let set = (self.noise_rng % self.config.total_sets as u64) as u32;
        let way = self.config.ways + (self.noise_rng >> 32) as u32 % 4;
        self.config.line_addr(self.config.trojan_base, set, way)
    }
}

impl Program for CacheTrojan {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let now = view.now.as_u64();
        let clock = self.config.clock;
        if now >= clock.end_of_message(self.config.message.len())
            && self.state == TrojanState::Waiting
        {
            return Op::Halt;
        }
        let bit_index = match clock.bit_index(now) {
            Some(b) => b,
            None => {
                return Op::Idle {
                    cycles: clock.start() - now,
                }
            }
        };
        if let TrojanState::NoiseLoads { remaining } = self.state {
            if remaining > 0 {
                self.state = TrojanState::NoiseLoads {
                    remaining: remaining - 1,
                };
                let addr = self.noise_addr();
                return Op::Load { addr };
            }
            self.state = TrojanState::Sweeping { index: 0 };
        }
        if let TrojanState::Sweeping { index } = self.state {
            // Finish the sweep even if the window slid; sweeps are short
            // relative to the bit interval.
            let bit = self
                .config
                .message
                .bit(self.current_bit.unwrap_or(bit_index))
                .unwrap_or(false);
            let sets = self.config.group_sets(bit);
            let ways = self.config.ways;
            let total = (sets.end - sets.start) * ways;
            if index < total {
                let set = sets.start + index / ways;
                let way = index % ways;
                self.state = TrojanState::Sweeping { index: index + 1 };
                return Op::Load {
                    addr: self.config.line_addr(self.config.trojan_base, set, way),
                };
            }
            self.state = TrojanState::Waiting;
            if let Some(interval) = self.config.resweep_interval {
                // Next sweep on the interval grid, strictly after this one.
                self.next_sweep = (now / interval + 1) * interval;
            }
        }
        // A new bit begins: noise loads, then the eviction sweep.
        if self.current_bit != Some(bit_index) && clock.in_transmit(now) {
            self.current_bit = Some(bit_index);
            self.next_sweep = now;
            self.state = TrojanState::NoiseLoads {
                remaining: self.config.noise_loads_per_bit,
            };
            let addr = self.noise_addr();
            return Op::Load { addr };
        }
        // Periodic re-sweep of the same bit's group.
        if let Some(_interval) = self.config.resweep_interval {
            if clock.in_transmit(now) && now >= self.next_sweep {
                self.state = TrojanState::Sweeping { index: 0 };
                let bit = self.config.message.bit(bit_index).unwrap_or(false);
                let sets = self.config.group_sets(bit);
                return Op::Load {
                    addr: self
                        .config
                        .line_addr(self.config.trojan_base, sets.start, 0),
                };
            }
            let next_bit = clock.next_bit_start(now);
            let target = if self.next_sweep > now && self.next_sweep < next_bit {
                self.next_sweep
            } else {
                next_bit
            };
            return Op::Idle {
                cycles: (target - now).max(1),
            };
        }
        Op::Idle {
            cycles: (clock.next_bit_start(now) - now).max(1),
        }
    }

    fn name(&self) -> &str {
        "cache-trojan"
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SpyState {
    /// Initial priming of both groups, before the clock starts.
    Priming { index: u32 },
    /// Waiting for the next sample window.
    Waiting,
    /// Timing the probe pass over G1.
    ProbeG1 { index: u32, start: u64 },
    /// Timing the probe pass over G0.
    ProbeG0 { index: u32, start: u64, g1_avg: f64 },
}

/// The receiving (spy) side: primes one line per set of both groups and
/// compares probe-pass latencies.
#[derive(Debug)]
pub struct CacheSpy {
    config: CacheChannelConfig,
    log: SpyLogHandle,
    state: SpyState,
    sampled_bit: Option<usize>,
    /// Next scheduled probe pass (re-sweep mode).
    next_probe: u64,
    /// Per-bit ratio aggregation.
    bit_sum: f64,
    bit_count: u32,
    acc_bit: Option<usize>,
}

impl CacheSpy {
    /// Creates the spy.
    pub fn new(config: CacheChannelConfig, log: SpyLogHandle) -> Self {
        CacheSpy {
            config,
            log,
            state: SpyState::Priming { index: 0 },
            sampled_bit: None,
            next_probe: 0,
            bit_sum: 0.0,
            bit_count: 0,
            acc_bit: None,
        }
    }

    /// The spy's probe line for a set.
    fn probe_addr(&self, set: u32) -> u64 {
        self.config.line_addr(self.config.spy_base, set, 0)
    }

    fn flush_bit(&mut self) {
        if let Some(bit) = self.acc_bit.take() {
            if self.bit_count > 0 {
                self.log
                    .borrow_mut()
                    .push_bit(bit, self.bit_sum / self.bit_count as f64);
            }
        }
        self.bit_sum = 0.0;
        self.bit_count = 0;
    }
}

impl Program for CacheSpy {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let now = view.now.as_u64();
        let clock = self.config.clock;
        let g = self.config.group_size();

        match self.state {
            SpyState::Priming { index } => {
                if index < self.config.total_sets {
                    self.state = SpyState::Priming { index: index + 1 };
                    return Op::Load {
                        addr: self.probe_addr(index),
                    };
                }
                self.state = SpyState::Waiting;
            }
            SpyState::ProbeG1 { index, start } => {
                if index < g {
                    self.state = SpyState::ProbeG1 {
                        index: index + 1,
                        start,
                    };
                    return Op::Load {
                        addr: self.probe_addr(index),
                    };
                }
                let g1_avg = (now - start) as f64 / g as f64;
                self.state = SpyState::ProbeG0 {
                    index: 0,
                    start: now,
                    g1_avg,
                };
            }
            SpyState::ProbeG0 { .. } | SpyState::Waiting => {}
        }

        if let SpyState::ProbeG0 {
            index,
            start,
            g1_avg,
        } = self.state
        {
            if index < g {
                self.state = SpyState::ProbeG0 {
                    index: index + 1,
                    start,
                    g1_avg,
                };
                return Op::Load {
                    addr: self.probe_addr(g + index),
                };
            }
            let g0_avg = (now - start) as f64 / g as f64;
            let ratio = if g0_avg > 0.0 { g1_avg / g0_avg } else { 1.0 };
            let bit = clock.bit_index(start).unwrap_or(0);
            if self.acc_bit != Some(bit) {
                self.flush_bit();
                self.acc_bit = Some(bit);
            }
            self.log.borrow_mut().push_sample(now, bit, ratio);
            self.bit_sum += ratio;
            self.bit_count += 1;
            self.state = SpyState::Waiting;
        }

        if now >= clock.end_of_message(self.config.message.len()) {
            self.flush_bit();
            return Op::Halt;
        }

        let bit = clock.bit_index(now);
        match self.config.resweep_interval {
            None => {
                // One probe pass per bit, inside the sample window.
                if clock.in_sample(now) && bit.is_some() && self.sampled_bit != bit {
                    self.sampled_bit = bit;
                    self.state = SpyState::ProbeG1 {
                        index: 1,
                        start: now,
                    };
                    return Op::Load {
                        addr: self.probe_addr(0),
                    };
                }
                let target = if now < clock.sample_start(now) {
                    clock.sample_start(now)
                } else {
                    clock.sample_start(clock.next_bit_start(now))
                };
                Op::Idle {
                    cycles: (target.saturating_sub(now)).max(1),
                }
            }
            Some(interval) => {
                // Probe midway between sweeps, all bit long.
                if self.next_probe < clock.start() + interval / 2 {
                    self.next_probe = clock.start() + interval / 2;
                }
                if bit.is_some() && now >= self.next_probe {
                    self.next_probe = (now - clock.start()) / interval * interval
                        + interval
                        + interval / 2
                        + clock.start();
                    self.state = SpyState::ProbeG1 {
                        index: 1,
                        start: now,
                    };
                    return Op::Load {
                        addr: self.probe_addr(0),
                    };
                }
                Op::Idle {
                    cycles: (self.next_probe.saturating_sub(now)).max(1),
                }
            }
        }
    }

    fn name(&self) -> &str {
        "cache-spy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DecodeRule, SpyLog};
    use cchunter_sim::{CacheLevel, Machine, MachineConfig, ProbeEvent};

    fn run_channel(
        message: Message,
        bit_cycles: u64,
        total_sets: u32,
    ) -> (Message, Vec<ProbeEvent>, SpyLogHandle) {
        let clock = BitClock::new(1_000_000, bit_cycles);
        let config = CacheChannelConfig::new(message.clone(), clock, total_sets);
        let mut machine = Machine::new(MachineConfig::default());
        let log = SpyLog::new_handle();
        machine.spawn(
            Box::new(CacheTrojan::new(config.clone())),
            machine.config().context_id(0, 0),
        );
        machine.spawn(
            Box::new(CacheSpy::new(config, log.clone())),
            machine.config().context_id(0, 1),
        );
        let trace = machine.attach_trace();
        machine.run_for(1_000_000 + bit_cycles * (message.len() as u64 + 1));
        let events = trace.borrow().events().to_vec();
        let decoded = log
            .borrow()
            .decode(DecodeRule::FixedThreshold(1.0), message.len());
        (decoded, events, log)
    }

    #[test]
    fn spy_decodes_alternating_message() {
        let message = Message::alternating(8);
        let (decoded, _, _) = run_channel(message.clone(), 2_500_000, 512);
        assert_eq!(
            message.bit_error_rate(&decoded),
            0.0,
            "sent {message} got {decoded}"
        );
    }

    #[test]
    fn spy_decodes_arbitrary_bits_on_fewer_sets() {
        let message = Message::from_bits(vec![true, false, false, true, true, true, false, true]);
        let (decoded, _, _) = run_channel(message.clone(), 2_500_000, 128);
        assert_eq!(
            message.bit_error_rate(&decoded),
            0.0,
            "sent {message} got {decoded}"
        );
    }

    #[test]
    fn ratios_separate_ones_from_zeros() {
        let message = Message::alternating(6);
        let (_, _, log) = run_channel(message, 2_500_000, 256);
        let log = log.borrow();
        for &(bit, ratio) in log.per_bit() {
            if bit % 2 == 0 {
                assert!(ratio > 1.2, "bit {bit} ('1') ratio {ratio}");
            } else {
                assert!(ratio < 0.85, "bit {bit} ('0') ratio {ratio}");
            }
        }
    }

    #[test]
    fn cross_context_replacements_alternate_per_bit() {
        let message = Message::from_bits(vec![true, true, true, true]);
        let (_, events, _) = run_channel(message, 2_500_000, 128);
        // Count L2 replacements where trojan (smt 0) evicts spy (smt 1) and
        // vice versa.
        let mut t_to_s = 0;
        let mut s_to_t = 0;
        for e in &events {
            if let ProbeEvent::CacheReplacement {
                level: CacheLevel::L2,
                replacer,
                victim_owner,
                ..
            } = e
            {
                if replacer.smt() == 0 && victim_owner.smt() == 1 {
                    t_to_s += 1;
                } else if replacer.smt() == 1 && victim_owner.smt() == 0 {
                    s_to_t += 1;
                }
            }
        }
        assert!(t_to_s > 0 && s_to_t > 0);
        // Steady state: one T→S and one S→T per active set per bit (the
        // first bit is still warming up).
        let g = 64;
        let bits = 4;
        assert!(
            (t_to_s as i64 - (g * bits) as i64).unsigned_abs() <= 2 * g,
            "t_to_s = {t_to_s}, expected near {}",
            g * bits
        );
        assert!(
            (s_to_t as i64 - (g * bits) as i64).unsigned_abs() <= 2 * g,
            "s_to_t = {s_to_t}, expected near {}",
            g * bits
        );
    }

    #[test]
    fn group_layout_is_disjoint_and_even() {
        let config = CacheChannelConfig::new(Message::alternating(2), BitClock::new(0, 1_000), 256);
        let g1 = config.group_sets(true);
        let g0 = config.group_sets(false);
        assert_eq!(g1.len(), 128);
        assert_eq!(g0.len(), 128);
        assert!(g1.end <= g0.start);
    }

    #[test]
    fn line_addr_preserves_set_index() {
        let config = CacheChannelConfig::new(Message::alternating(2), BitClock::new(0, 1_000), 512);
        for way in 0..8 {
            let addr = config.line_addr(0x1000_0000, 77, way);
            assert_eq!((addr / 64) % 512, 77);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_set_count_rejected() {
        let _ = CacheChannelConfig::new(Message::alternating(2), BitClock::new(0, 1_000), 511);
    }
}
