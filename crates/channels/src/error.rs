//! The channel crate's typed error.

use std::fmt;

/// Error returned by fallible channel constructors.
///
/// The crate's public API follows the workspace no-panic contract: every
/// constructor that takes runtime-derived parameters has a `try_*` form (or
/// returns `Result` directly, like
/// [`BitClock::for_bandwidth`](crate::BitClock::for_bandwidth)) that reports
/// bad parameters through this type instead of asserting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A channel or protocol parameter was invalid.
    InvalidConfig {
        /// Human-readable description of the rejected parameter.
        reason: String,
    },
}

impl ChannelError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        ChannelError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidConfig { reason } => {
                write!(f, "invalid channel configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = ChannelError::invalid("bandwidth must be positive");
        assert!(e.to_string().contains("bandwidth must be positive"));
        assert!(e.to_string().contains("invalid channel configuration"));
    }
}
