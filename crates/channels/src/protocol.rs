//! Shared trojan/spy protocol machinery: bit clocks, phases, and the spy's
//! sample log.
//!
//! The paper assumes the trojan and spy have completed their
//! synchronization phase before transmission (§VI: "covert transmission
//! phases … should be already synchronized between the trojan and the
//! spy"), so both sides derive bit boundaries from the global cycle count —
//! the simulator equivalent of two processes that agreed on an epoch and
//! read `rdtsc`.
//!
//! Two phase layouts cover the paper's channels:
//!
//! * [`PhaseLayout::concurrent`] — contention channels (bus, divider):
//!   the modulation only exists *while* the trojan creates it, so the spy
//!   samples inside the trojan's transmit window.
//! * [`PhaseLayout::sequential`] — state channels (cache): the trojan's
//!   evictions persist, so the spy probes after the transmit window, which
//!   also keeps its probes from racing the trojan's sweep.

use crate::error::ChannelError;
use crate::message::Message;
use std::cell::RefCell;
use std::rc::Rc;

/// Phase of the current bit interval (informational; overlapping layouts
/// report `Transmit` while both windows are open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Trojan modulation window.
    Transmit,
    /// Spy measurement window (outside the transmit window).
    Sample,
    /// Dead time.
    Guard,
}

/// Fractional windows of the bit interval assigned to the trojan and spy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseLayout {
    /// Transmit window as fractions of the bit interval.
    pub transmit: (f64, f64),
    /// Sample window as fractions of the bit interval.
    pub sample: (f64, f64),
}

impl PhaseLayout {
    /// Spy samples *while* the trojan modulates — for contention channels
    /// whose signal vanishes the moment the trojan stops.
    pub fn concurrent() -> Self {
        PhaseLayout {
            transmit: (0.0, 0.95),
            sample: (0.10, 0.90),
        }
    }

    /// Spy samples *after* the trojan modulates — for state channels whose
    /// signal persists in the cache.
    pub fn sequential() -> Self {
        PhaseLayout {
            transmit: (0.0, 0.60),
            sample: (0.65, 0.95),
        }
    }

    /// Checks that both windows are ordered fractions of the bit interval.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] when a window bound falls
    /// outside `[0, 1]` or a window is empty or reversed.
    pub fn validate(&self) -> Result<(), ChannelError> {
        for (lo, hi) in [self.transmit, self.sample] {
            if !((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo < hi) {
                return Err(ChannelError::invalid(
                    "phase windows must be ordered fractions of the bit",
                ));
            }
        }
        Ok(())
    }
}

/// The shared bit clock: maps cycles to bit indices and phase windows.
///
/// ```
/// use cchunter_channels::BitClock;
/// let clock = BitClock::new(0, 1_000); // concurrent layout by default
/// assert_eq!(clock.bit_index(2_500), Some(2));
/// assert!(clock.in_transmit(100));
/// assert!(clock.in_sample(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitClock {
    start: u64,
    bit_cycles: u64,
    layout: PhaseLayout,
}

impl BitClock {
    /// Creates a clock whose bit 0 starts at `start` and lasts
    /// `bit_cycles`, with the [`PhaseLayout::concurrent`] layout.
    ///
    /// # Panics
    ///
    /// Panics if `bit_cycles` is zero. Use [`BitClock::try_new`] for a
    /// fallible variant.
    pub fn new(start: u64, bit_cycles: u64) -> Self {
        match Self::try_new(start, bit_cycles) {
            Ok(clock) => clock,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`BitClock::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] if `bit_cycles` is zero.
    pub fn try_new(start: u64, bit_cycles: u64) -> Result<Self, ChannelError> {
        Self::try_with_layout(start, bit_cycles, PhaseLayout::concurrent())
    }

    /// Creates a clock with an explicit phase layout.
    ///
    /// # Panics
    ///
    /// Panics if `bit_cycles` is zero or the layout is malformed. Use
    /// [`BitClock::try_with_layout`] for a fallible variant.
    pub fn with_layout(start: u64, bit_cycles: u64, layout: PhaseLayout) -> Self {
        match Self::try_with_layout(start, bit_cycles, layout) {
            Ok(clock) => clock,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`BitClock::with_layout`].
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] if `bit_cycles` is zero or
    /// the layout fails [`PhaseLayout::validate`].
    pub fn try_with_layout(
        start: u64,
        bit_cycles: u64,
        layout: PhaseLayout,
    ) -> Result<Self, ChannelError> {
        if bit_cycles == 0 {
            return Err(ChannelError::invalid("bit interval must be nonzero"));
        }
        layout.validate()?;
        Ok(BitClock {
            start,
            bit_cycles,
            layout,
        })
    }

    /// Derives the clock from a bandwidth in bits/second (concurrent
    /// layout).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] if `bandwidth_bps` is not a
    /// positive finite number or `clock_hz` is zero.
    pub fn for_bandwidth(
        start: u64,
        bandwidth_bps: f64,
        clock_hz: u64,
    ) -> Result<Self, ChannelError> {
        if !(bandwidth_bps > 0.0 && bandwidth_bps.is_finite()) {
            return Err(ChannelError::invalid(format!(
                "bandwidth must be positive and finite, got {bandwidth_bps}"
            )));
        }
        if clock_hz == 0 {
            return Err(ChannelError::invalid("clock frequency must be nonzero"));
        }
        let bit_cycles = (clock_hz as f64 / bandwidth_bps).round().max(1.0) as u64;
        BitClock::try_new(start, bit_cycles)
    }

    /// The cycle bit 0 starts at.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Length of one bit interval in cycles.
    pub fn bit_cycles(&self) -> u64 {
        self.bit_cycles
    }

    /// The phase layout.
    pub fn layout(&self) -> &PhaseLayout {
        &self.layout
    }

    /// Cycles of the transmit window within one bit.
    pub fn transmit_cycles(&self) -> u64 {
        let (lo, hi) = self.layout.transmit;
        (self.bit_cycles as f64 * (hi - lo)) as u64
    }

    /// The bit index active at `now` (`None` before `start`).
    pub fn bit_index(&self, now: u64) -> Option<usize> {
        if now < self.start {
            return None;
        }
        Some(((now - self.start) / self.bit_cycles) as usize)
    }

    /// First cycle of bit `index`.
    pub fn bit_start(&self, index: usize) -> u64 {
        self.start + index as u64 * self.bit_cycles
    }

    /// First cycle after the last bit of an `len`-bit message.
    pub fn end_of_message(&self, len: usize) -> u64 {
        self.bit_start(len)
    }

    fn bit_fraction(&self, now: u64) -> Option<f64> {
        if now < self.start {
            return None;
        }
        let offset = (now - self.start) % self.bit_cycles;
        Some(offset as f64 / self.bit_cycles as f64)
    }

    /// Whether `now` falls in the trojan's transmit window.
    pub fn in_transmit(&self, now: u64) -> bool {
        self.bit_fraction(now)
            .map(|f| f >= self.layout.transmit.0 && f < self.layout.transmit.1)
            .unwrap_or(false)
    }

    /// Whether `now` falls in the spy's sample window.
    pub fn in_sample(&self, now: u64) -> bool {
        self.bit_fraction(now)
            .map(|f| f >= self.layout.sample.0 && f < self.layout.sample.1)
            .unwrap_or(false)
    }

    /// Informational phase at `now` (transmit wins when windows overlap).
    pub fn phase(&self, now: u64) -> Phase {
        if self.in_transmit(now) {
            Phase::Transmit
        } else if self.in_sample(now) {
            Phase::Sample
        } else {
            Phase::Guard
        }
    }

    /// First cycle of the sample window of the bit active at `now` (or of
    /// bit 0 when `now` precedes the clock start).
    pub fn sample_start(&self, now: u64) -> u64 {
        let bit = self.bit_index(now).unwrap_or(0);
        self.bit_start(bit) + (self.bit_cycles as f64 * self.layout.sample.0) as u64
    }

    /// First cycle after the sample window of the bit active at `now`.
    pub fn sample_end(&self, now: u64) -> u64 {
        let bit = self.bit_index(now).unwrap_or(0);
        self.bit_start(bit) + (self.bit_cycles as f64 * self.layout.sample.1) as u64
    }

    /// First cycle of the next bit after `now`.
    pub fn next_bit_start(&self, now: u64) -> u64 {
        match self.bit_index(now) {
            None => self.start,
            Some(bit) => self.bit_start(bit + 1),
        }
    }
}

/// How the spy turns per-bit measurements into bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeRule {
    /// '1' when the per-bit value exceeds the midpoint between the smallest
    /// and largest observed per-bit values (adaptive; used by the latency
    /// channels).
    Midpoint,
    /// '1' when the per-bit value exceeds a fixed threshold (the cache
    /// channel's G1/G0 latency ratio uses 1.0).
    FixedThreshold(f64),
}

/// One raw spy measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Completion cycle of the measurement.
    pub cycle: u64,
    /// Bit interval it was taken in.
    pub bit: usize,
    /// Measured value (average latency in cycles, or a latency ratio).
    pub value: f64,
}

/// The spy's measurement log: raw samples (for the paper's latency plots)
/// plus one aggregated value per bit (for decoding).
#[derive(Debug, Default, Clone)]
pub struct SpyLog {
    samples: Vec<Sample>,
    per_bit: Vec<(usize, f64)>,
}

/// Shared handle to a [`SpyLog`] (the spy program holds one clone, the
/// experiment harness another).
pub type SpyLogHandle = Rc<RefCell<SpyLog>>;

impl SpyLog {
    /// Creates an empty log and returns a shared handle.
    pub fn new_handle() -> SpyLogHandle {
        Rc::new(RefCell::new(SpyLog::default()))
    }

    /// Records a raw sample.
    pub fn push_sample(&mut self, cycle: u64, bit: usize, value: f64) {
        self.samples.push(Sample { cycle, bit, value });
    }

    /// Records the aggregated measurement for one bit.
    pub fn push_bit(&mut self, bit: usize, value: f64) {
        self.per_bit.push((bit, value));
    }

    /// Raw samples in arrival order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Aggregated per-bit values in arrival order.
    pub fn per_bit(&self) -> &[(usize, f64)] {
        &self.per_bit
    }

    /// Decodes the logged per-bit values into a message.
    ///
    /// Bits with no measurement are decoded as '0' (a lost bit, counted by
    /// [`Message::bit_error_rate`]).
    pub fn decode(&self, rule: DecodeRule, message_len: usize) -> Message {
        let threshold = match rule {
            DecodeRule::FixedThreshold(t) => t,
            DecodeRule::Midpoint => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &(_, v) in &self.per_bit {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if !lo.is_finite() || !hi.is_finite() {
                    0.0
                } else {
                    (lo + hi) / 2.0
                }
            }
        };
        let mut bits = vec![false; message_len];
        for &(bit, v) in &self.per_bit {
            if bit < message_len {
                bits[bit] = v > threshold;
            }
        }
        Message::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_boundaries() {
        let c = BitClock::new(100, 50);
        assert_eq!(c.bit_index(99), None);
        assert_eq!(c.bit_index(100), Some(0));
        assert_eq!(c.bit_index(149), Some(0));
        assert_eq!(c.bit_index(150), Some(1));
        assert_eq!(c.bit_start(2), 200);
        assert_eq!(c.next_bit_start(120), 150);
        assert_eq!(c.next_bit_start(50), 100);
        assert_eq!(c.end_of_message(4), 300);
    }

    #[test]
    fn bandwidth_derivation() {
        // 100 bps at 2.5 GHz → 25M cycles per bit.
        let c = BitClock::for_bandwidth(0, 100.0, 2_500_000_000).unwrap();
        assert_eq!(c.bit_cycles(), 25_000_000);
    }

    #[test]
    fn non_positive_bandwidth_is_a_typed_error() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = BitClock::for_bandwidth(0, bad, 2_500_000_000).unwrap_err();
            assert!(
                err.to_string().contains("bandwidth"),
                "error names the bad parameter: {err}"
            );
        }
        let err = BitClock::for_bandwidth(0, 100.0, 0).unwrap_err();
        assert!(err.to_string().contains("clock"));
    }

    #[test]
    fn try_constructors_report_errors_instead_of_panicking() {
        assert!(BitClock::try_new(0, 0).is_err());
        assert!(BitClock::try_new(0, 100).is_ok());
        let bad = PhaseLayout {
            transmit: (0.5, 0.2),
            sample: (0.6, 0.9),
        };
        assert!(bad.validate().is_err());
        assert!(BitClock::try_with_layout(0, 100, bad).is_err());
        assert!(BitClock::try_with_layout(0, 100, PhaseLayout::sequential()).is_ok());
    }

    #[test]
    fn concurrent_layout_overlaps_windows() {
        let c = BitClock::new(0, 1_000);
        assert!(c.in_transmit(500));
        assert!(c.in_sample(500));
        assert!(!c.in_sample(50));
        assert!(!c.in_transmit(970));
        assert_eq!(c.phase(500), Phase::Transmit);
        assert_eq!(c.phase(970), Phase::Guard);
    }

    #[test]
    fn sequential_layout_separates_windows() {
        let c = BitClock::with_layout(0, 1_000, PhaseLayout::sequential());
        assert!(c.in_transmit(100));
        assert!(!c.in_sample(100));
        assert!(c.in_sample(700));
        assert!(!c.in_transmit(700));
        assert_eq!(c.phase(620), Phase::Guard);
        assert_eq!(c.phase(700), Phase::Sample);
        // Next bit wraps back to transmit.
        assert_eq!(c.phase(1_000), Phase::Transmit);
        assert_eq!(c.transmit_cycles(), 600);
    }

    #[test]
    fn sample_window_bounds() {
        let c = BitClock::with_layout(0, 1_000, PhaseLayout::sequential());
        assert_eq!(c.sample_start(0), 650);
        assert_eq!(c.sample_end(0), 950);
        assert_eq!(c.sample_start(1_700), 1_650);
    }

    #[test]
    fn midpoint_decode_separates_levels() {
        let mut log = SpyLog::default();
        for (bit, v) in [(0, 450.0), (1, 210.0), (2, 460.0), (3, 215.0)] {
            log.push_bit(bit, v);
        }
        let decoded = log.decode(DecodeRule::Midpoint, 4);
        assert_eq!(decoded.bits(), &[true, false, true, false]);
    }

    #[test]
    fn fixed_threshold_decode() {
        let mut log = SpyLog::default();
        log.push_bit(0, 2.5);
        log.push_bit(1, 0.4);
        let decoded = log.decode(DecodeRule::FixedThreshold(1.0), 2);
        assert_eq!(decoded.bits(), &[true, false]);
    }

    #[test]
    fn missing_bits_decode_to_zero() {
        let mut log = SpyLog::default();
        log.push_bit(2, 9.0);
        let decoded = log.decode(DecodeRule::FixedThreshold(1.0), 4);
        assert_eq!(decoded.bits(), &[false, false, true, false]);
    }

    #[test]
    fn empty_log_decodes_all_zero() {
        let log = SpyLog::default();
        let decoded = log.decode(DecodeRule::Midpoint, 3);
        assert_eq!(decoded.bits(), &[false, false, false]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bit_interval_rejected() {
        let _ = BitClock::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "ordered fractions")]
    fn malformed_layout_rejected() {
        let _ = BitClock::with_layout(
            0,
            100,
            PhaseLayout {
                transmit: (0.5, 0.2),
                sample: (0.6, 0.9),
            },
        );
    }
}
