//! The integer divider covert timing channel (paper §IV-A, after Wang &
//! Lee's SMT/multiplier channel).
//!
//! Trojan and spy run as hyperthreads of the *same* SMT core. To transmit
//! '1' the trojan executes a stream of integer divisions, putting every
//! divider unit into a contended state; for '0' it spins an empty loop. The
//! spy continuously times loop iterations containing a fixed number of
//! divisions: iterations run long when the trojan contends (Figure 3).
//!
//! The indicator event is a division from one context stalling on a divider
//! occupied by an instruction from the other context, measured in stalled
//! cycles — a quantity ordinary performance counters cannot observe
//! (paper §VII).

use crate::message::Message;
use crate::protocol::{BitClock, SpyLogHandle};
use cchunter_sim::{Op, Program, ProgramView};

/// Which contended execution unit the channel modulates. The paper notes
/// Wang & Lee "showed a similar implementation using multipliers"; the
/// same trojan/spy structure works for either unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecUnit {
    /// The non-pipelined integer divider bank.
    #[default]
    Divider,
    /// The integer multiplier bank.
    Multiplier,
}

impl ExecUnit {
    fn op(self, count: u32) -> Op {
        match self {
            ExecUnit::Divider => Op::Div { count },
            ExecUnit::Multiplier => Op::Mul { count },
        }
    }
}

/// Configuration shared by the trojan and spy of one divider channel.
#[derive(Debug, Clone)]
pub struct DividerChannelConfig {
    /// The message the trojan transmits.
    pub message: Message,
    /// The shared bit clock.
    pub clock: BitClock,
    /// Divisions per trojan op during a contention storm.
    pub trojan_batch: u32,
    /// Pacing compute between trojan division batches (cycles).
    pub trojan_gap: u64,
    /// Length of one contention burst in cycles.
    pub burst_cycles: u64,
    /// Upper bound on contention cycles per '1' bit; longer bit intervals
    /// spread this budget across periodic bursts with dormancy in between.
    pub max_contend_cycles_per_bit: u64,
    /// Divisions per spy timing iteration.
    pub spy_divs_per_iter: u32,
    /// Pacing compute between spy iterations (cycles).
    pub spy_gap: u64,
    /// Timing iterations the spy aggregates per sample window.
    pub samples_per_bit: u32,
    /// Which execution unit carries the channel.
    pub unit: ExecUnit,
}

impl DividerChannelConfig {
    /// A channel transmitting `message` with paper-calibrated defaults.
    pub fn new(message: Message, clock: BitClock) -> Self {
        DividerChannelConfig {
            message,
            clock,
            trojan_batch: 1,
            trojan_gap: 4,
            burst_cycles: 100_000,
            max_contend_cycles_per_bit: 3_000_000,
            spy_divs_per_iter: 1,
            spy_gap: 128,
            samples_per_bit: 48,
            unit: ExecUnit::Divider,
        }
    }

    /// The Wang & Lee multiplier variant: the same protocol on the
    /// multiplier bank (shorter unit latency, tighter spy pacing).
    pub fn for_multiplier(message: Message, clock: BitClock) -> Self {
        DividerChannelConfig {
            unit: ExecUnit::Multiplier,
            trojan_gap: 1,
            spy_gap: 32,
            ..Self::new(message, clock)
        }
    }

    /// Dormancy gap between contention bursts within a '1' bit.
    fn dormancy_gap(&self) -> u64 {
        let bursts = (self.max_contend_cycles_per_bit / self.burst_cycles).max(1);
        let per_burst_budget = self.clock.transmit_cycles() / bursts;
        per_burst_budget.saturating_sub(self.burst_cycles).max(1)
    }

    /// Length of one burst-plus-dormancy slot. Bursts sit on this grid
    /// (relative to the bit start), which is how the trojan and the spy —
    /// who share the bit clock from their synchronization phase — meet on
    /// the divider even at very low bandwidths.
    pub fn burst_period(&self) -> u64 {
        self.burst_cycles + self.dormancy_gap()
    }

    /// Whether `now` (inside the bit starting at `bit_start`) falls within
    /// a contention burst slot.
    pub fn in_burst(&self, now: u64, bit_start: u64) -> bool {
        let rel = now.saturating_sub(bit_start);
        rel % self.burst_period() < self.burst_cycles
    }

    /// First cycle of the burst slot at or after `now`.
    pub fn next_burst_start(&self, now: u64, bit_start: u64) -> u64 {
        if self.in_burst(now, bit_start) {
            return now;
        }
        let rel = now.saturating_sub(bit_start);
        bit_start + (rel / self.burst_period() + 1) * self.burst_period()
    }
}

/// The transmitting (trojan) hyperthread.
#[derive(Debug)]
pub struct DividerTrojan {
    config: DividerChannelConfig,
    current_bit: Option<usize>,
    contended_this_bit: u64,
    pace_next: bool,
}

impl DividerTrojan {
    /// Creates the trojan.
    pub fn new(config: DividerChannelConfig) -> Self {
        DividerTrojan {
            config,
            current_bit: None,
            contended_this_bit: 0,
            pace_next: false,
        }
    }
}

impl Program for DividerTrojan {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let now = view.now.as_u64();
        let clock = self.config.clock;
        if now >= clock.end_of_message(self.config.message.len()) {
            return Op::Halt;
        }
        let Some(bit_index) = clock.bit_index(now) else {
            return Op::Idle {
                cycles: clock.start() - now,
            };
        };
        if self.current_bit != Some(bit_index) {
            self.current_bit = Some(bit_index);
            self.contended_this_bit = 0;
            self.pace_next = false;
        }
        let bit = self.config.message.bit(bit_index).unwrap_or(false);
        let in_transmit = clock.in_transmit(now);
        if !bit || !in_transmit || self.contended_this_bit >= self.config.max_contend_cycles_per_bit
        {
            // '0' bit: the paper's trojan runs an empty loop, leaving the
            // dividers un-contended. Idle models the same absence of
            // divider pressure without burning host time.
            return Op::Idle {
                cycles: clock.next_bit_start(now) - now,
            };
        }
        let bit_start = clock.bit_start(bit_index);
        if !self.config.in_burst(now, bit_start) {
            // Dormancy between grid-aligned bursts keeps the *budget*
            // bounded while preserving high within-burst density.
            let next = self
                .config
                .next_burst_start(now, bit_start)
                .min(clock.next_bit_start(now));
            return Op::Idle {
                cycles: (next - now).max(1),
            };
        }
        if self.pace_next {
            self.pace_next = false;
            self.contended_this_bit += view.last_latency;
            return Op::Compute {
                cycles: self.config.trojan_gap,
            };
        }
        self.pace_next = true;
        self.contended_this_bit += self.config.trojan_gap;
        self.config.unit.op(self.config.trojan_batch)
    }

    fn name(&self) -> &str {
        "divider-trojan"
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpyState {
    /// Waiting for the next sample window.
    Waiting,
    /// Timing a loop iteration: divisions are issued as *individual* ops so
    /// each one re-arbitrates for the divider bank (a real loop's divisions
    /// interleave with the trojan's stream the same way).
    Timing { issued: u32, start: u64 },
}

/// The receiving (spy) hyperthread: times fixed-size division loops.
#[derive(Debug)]
pub struct DividerSpy {
    config: DividerChannelConfig,
    log: SpyLogHandle,
    state: SpyState,
    samples_this_bit: u32,
    budget_bit: Option<usize>,
    bit_sum: f64,
    bit_count: u32,
    acc_bit: Option<usize>,
}

impl DividerSpy {
    /// Creates the spy.
    pub fn new(config: DividerChannelConfig, log: SpyLogHandle) -> Self {
        DividerSpy {
            config,
            log,
            state: SpyState::Waiting,
            samples_this_bit: 0,
            budget_bit: None,
            bit_sum: 0.0,
            bit_count: 0,
            acc_bit: None,
        }
    }

    fn flush_bit(&mut self) {
        if let Some(bit) = self.acc_bit.take() {
            if self.bit_count > 0 {
                self.log
                    .borrow_mut()
                    .push_bit(bit, self.bit_sum / self.bit_count as f64);
            }
        }
        self.bit_sum = 0.0;
        self.bit_count = 0;
    }
}

impl Program for DividerSpy {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let now = view.now.as_u64();
        let clock = self.config.clock;

        if let SpyState::Timing { issued, start } = self.state {
            if issued < self.config.spy_divs_per_iter {
                self.state = SpyState::Timing {
                    issued: issued + 1,
                    start,
                };
                return self.config.unit.op(1);
            }
            // Iteration complete: `now` is the last division's completion.
            let per_div = (now - start) as f64 / self.config.spy_divs_per_iter as f64;
            let bit = clock.bit_index(start).unwrap_or(0);
            if self.acc_bit != Some(bit) {
                self.flush_bit();
                self.acc_bit = Some(bit);
            }
            self.log.borrow_mut().push_sample(now, bit, per_div);
            self.bit_sum += per_div;
            self.bit_count += 1;
            self.samples_this_bit += 1;
            self.state = SpyState::Waiting;
            return Op::Compute {
                cycles: self.config.spy_gap,
            };
        }

        if now >= clock.end_of_message(self.config.message.len()) {
            self.flush_bit();
            return Op::Halt;
        }

        let in_window = clock.in_sample(now);
        let window_bit = clock.bit_index(now);
        if in_window && self.budget_bit != window_bit {
            // A new bit interval begins: fresh sampling budget.
            self.budget_bit = window_bit;
            self.samples_this_bit = 0;
        }
        if in_window && self.samples_this_bit < self.config.samples_per_bit {
            // Sample only during the shared burst grid's contention slots,
            // where the trojan's modulation (if any) is present.
            let bit_start = clock.bit_start(window_bit.unwrap_or(0));
            if self.config.in_burst(now, bit_start) {
                self.state = SpyState::Timing {
                    issued: 1,
                    start: now,
                };
                return self.config.unit.op(1);
            }
            let next = self
                .config
                .next_burst_start(now, bit_start)
                .min(clock.next_bit_start(now));
            return Op::Idle {
                cycles: (next - now).max(1),
            };
        }
        let target = if now < clock.sample_start(now) {
            clock.sample_start(now)
        } else {
            clock.sample_start(clock.next_bit_start(now))
        };
        Op::Idle {
            cycles: (target - now).max(1),
        }
    }

    fn name(&self) -> &str {
        "divider-spy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DecodeRule, SpyLog};
    use cchunter_sim::{Machine, MachineConfig, ProbeEvent};

    fn run_channel(message: Message, bit_cycles: u64) -> (Message, u64) {
        let clock = BitClock::new(10_000, bit_cycles);
        let config = DividerChannelConfig::new(message.clone(), clock);
        let mut machine = Machine::new(MachineConfig::default());
        let log = SpyLog::new_handle();
        // Same core, both hyperthreads.
        let trojan_ctx = machine.config().context_id(0, 0);
        let spy_ctx = machine.config().context_id(0, 1);
        machine.spawn(Box::new(DividerTrojan::new(config.clone())), trojan_ctx);
        machine.spawn(Box::new(DividerSpy::new(config, log.clone())), spy_ctx);
        let trace = machine.attach_trace();
        machine.run_for(10_000 + bit_cycles * (message.len() as u64 + 1));
        let wait_cycles: u64 = trace
            .borrow()
            .events()
            .iter()
            .filter_map(|e| match e {
                ProbeEvent::DividerWait { cycles, .. } => Some(*cycles),
                _ => None,
            })
            .sum();
        let decoded = log.borrow().decode(DecodeRule::Midpoint, message.len());
        (decoded, wait_cycles)
    }

    #[test]
    fn spy_decodes_alternating_message() {
        let message = Message::alternating(8);
        let (decoded, waits) = run_channel(message.clone(), 250_000);
        assert!(waits > 0, "contention must produce wait cycles");
        assert_eq!(
            message.bit_error_rate(&decoded),
            0.0,
            "sent {message} got {decoded}"
        );
    }

    #[test]
    fn spy_decodes_arbitrary_bits() {
        let message = Message::from_bits(vec![
            false, true, true, false, true, false, false, true, true, false,
        ]);
        let (decoded, _) = run_channel(message.clone(), 250_000);
        assert_eq!(
            message.bit_error_rate(&decoded),
            0.0,
            "sent {message} got {decoded}"
        );
    }

    #[test]
    fn zero_message_produces_no_cross_context_waits() {
        let message = Message::from_bits(vec![false; 6]);
        let (_, waits) = run_channel(message, 250_000);
        assert_eq!(waits, 0, "an idle trojan cannot contend");
    }

    #[test]
    fn spy_iterations_run_longer_under_contention() {
        // Direct latency check: '1' bits must slow the spy measurably.
        let message = Message::from_bits(vec![true, false, true, false]);
        let clock = BitClock::new(0, 500_000);
        let config = DividerChannelConfig::new(message, clock);
        let mut machine = Machine::new(MachineConfig::default());
        let log = SpyLog::new_handle();
        machine.spawn(
            Box::new(DividerTrojan::new(config.clone())),
            machine.config().context_id(0, 0),
        );
        machine.spawn(
            Box::new(DividerSpy::new(config, log.clone())),
            machine.config().context_id(0, 1),
        );
        machine.run_for(2_100_000);
        let log = log.borrow();
        let ones: Vec<f64> = log
            .per_bit()
            .iter()
            .filter(|(b, _)| b % 2 == 0)
            .map(|&(_, v)| v)
            .collect();
        let zeros: Vec<f64> = log
            .per_bit()
            .iter()
            .filter(|(b, _)| b % 2 == 1)
            .map(|&(_, v)| v)
            .collect();
        assert!(!ones.is_empty() && !zeros.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&ones) > avg(&zeros) * 1.3,
            "'1' bits {:.1} vs '0' bits {:.1}",
            avg(&ones),
            avg(&zeros)
        );
    }
}
