//! Filebench-like server personalities (paper §VI-D).
//!
//! * **webserver** — "a sequence of open-read-close on multiple files in a
//!   directory tree plus a log file append (100 threads)": bursts of
//!   buffered reads with think time in between and a shared append log.
//! * **mailserver** — "each e-mail in a separate file … a multi-threaded
//!   set of create-append-sync, read-append-sync, read and delete
//!   operations (16 threads)": the `sync` step drains write buffers with a
//!   short run of locked RMW operations, which is what gives the
//!   mailserver×mailserver pair of Figure 14 a *real* second distribution
//!   (bins ≈ 5–8 of the bus-lock histogram) — that its likelihood ratio
//!   still stays below 0.5 is the paper's sharpest false-alarm test.

use cchunter_sim::{Op, Program, ProgramView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The webserver personality.
#[derive(Debug)]
pub struct Webserver {
    rng: SmallRng,
    file_region: u64,
    log_region: u64,
    log_cursor: u64,
    /// Remaining reads of the currently open file.
    reads_left: u32,
    file_cursor: u64,
}

impl Webserver {
    /// Creates an instance with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let slot = rng.gen_range(0..16u64);
        Webserver {
            rng,
            file_region: 0x80_0000_0000 + slot * 0x1000_0000,
            log_region: 0x90_0000_0000 + slot * 0x100_0000,
            log_cursor: 0,
            reads_left: 0,
            file_cursor: 0,
        }
    }
}

impl Program for Webserver {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        if self.reads_left > 0 {
            self.reads_left -= 1;
            if self.reads_left == 0 {
                // close + log append
                self.log_cursor = (self.log_cursor + 64) % 0x10_0000;
                return Op::Store {
                    addr: self.log_region + self.log_cursor,
                };
            }
            let addr = self.file_region + self.file_cursor;
            self.file_cursor += 64;
            return Op::Load { addr };
        }
        // Think time, then open the next file (a fresh region slice so its
        // buffered pages miss cache, like a cold page-cache read).
        if self.rng.gen_ratio(1, 3) {
            return Op::Compute {
                cycles: self.rng.gen_range(500..4_000),
            };
        }
        self.file_cursor = self.rng.gen_range(0..0x40_0000u64 / 64) * 64 * 64;
        self.reads_left = self.rng.gen_range(8..64);
        Op::Compute {
            cycles: self.rng.gen_range(200..800), // open() path
        }
    }

    fn name(&self) -> &str {
        "webserver"
    }
}

/// The mailserver personality.
#[derive(Debug)]
pub struct Mailserver {
    rng: SmallRng,
    mail_region: u64,
    cursor: u64,
    /// Remaining appends before the sync.
    appends_left: u32,
    /// Remaining locked RMWs of an in-progress sync burst.
    sync_left: u32,
    /// Commit latency to sleep after the sync burst completes.
    post_sync_wait: u64,
}

impl Mailserver {
    /// Creates an instance with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE35));
        let slot = rng.gen_range(0..16u64);
        Mailserver {
            rng,
            mail_region: 0xA0_0000_0000 + slot * 0x1000_0000,
            cursor: 0,
            appends_left: 0,
            sync_left: 0,
            post_sync_wait: 0,
        }
    }
}

impl Program for Mailserver {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        if self.sync_left > 0 {
            // fsync: a short burst of locked RMWs on journal metadata —
            // 5–8 bus locks landing inside roughly one Δt window.
            self.sync_left -= 1;
            if self.sync_left == 0 {
                // Commit latency: the thread blocks until the journal
                // write completes, so sync bursts are well separated.
                self.post_sync_wait = self.rng.gen_range(150_000..600_000);
            }
            let addr = self.mail_region + self.cursor;
            self.cursor = (self.cursor + 64) % 0x800_0000;
            return Op::AtomicUnaligned { addr };
        }
        if self.post_sync_wait > 0 {
            let wait = self.post_sync_wait;
            self.post_sync_wait = 0;
            return Op::Idle { cycles: wait };
        }
        if self.appends_left > 0 {
            self.appends_left -= 1;
            if self.appends_left == 0 {
                self.sync_left = self.rng.gen_range(5..9);
            }
            let addr = self.mail_region + self.cursor;
            self.cursor = (self.cursor + 64) % 0x800_0000;
            return Op::Store { addr };
        }
        // Between messages: reads, deletes, journal credits, think time.
        match self.rng.gen_range(0..16u32) {
            0..=4 => {
                let line = self.rng.gen_range(0..0x800_0000u64 / 64);
                Op::Load {
                    addr: self.mail_region + line * 64,
                }
            }
            5..=8 => Op::Compute {
                cycles: self.rng.gen_range(300..3_000),
            },
            9..=12 => Op::Idle {
                // Waiting on the mail queue: spaces the journal-credit
                // locks into their own Δt windows.
                cycles: self.rng.gen_range(30_000..200_000),
            },
            13..=14 => {
                // A lone journal-credit RMW (read-append-sync, delete):
                // the isolated locks that keep the bulk of the
                // mailserver's contended Δt windows at densities 1–2,
                // holding its likelihood ratio under 0.5 even though the
                // fsync bursts form a real second distribution. The
                // following queue wait keeps each lock in its own window.
                self.post_sync_wait = self.rng.gen_range(110_000..350_000);
                let addr = self.mail_region + self.cursor;
                self.cursor = (self.cursor + 64) % 0x800_0000;
                Op::AtomicUnaligned { addr }
            }
            _ => {
                // create-append(-sync) of a new message
                self.appends_left = self.rng.gen_range(16..96);
                Op::Compute {
                    cycles: self.rng.gen_range(100..500),
                }
            }
        }
    }

    fn name(&self) -> &str {
        "mailserver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cchunter_sim::{Machine, MachineConfig, ProbeEvent};

    #[test]
    fn mailserver_sync_bursts_cluster_locks() {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        let trace = machine.attach_trace();
        machine.spawn(Box::new(Mailserver::new(3)), ctx);
        machine.run_for(30_000_000);
        let locks: Vec<u64> = trace
            .borrow()
            .events()
            .iter()
            .filter_map(|e| match e {
                ProbeEvent::BusLock { cycle, .. } => Some(cycle.as_u64()),
                _ => None,
            })
            .collect();
        assert!(
            locks.len() >= 10,
            "sync bursts must fire, got {}",
            locks.len()
        );
        // Locks come in clusters: the gap distribution is bimodal (intra-
        // burst gaps are tiny relative to inter-burst gaps).
        let gaps: Vec<u64> = locks.windows(2).map(|w| w[1] - w[0]).collect();
        let small = gaps.iter().filter(|&&g| g < 20_000).count();
        let large = gaps.iter().filter(|&&g| g > 100_000).count();
        assert!(
            small > 0 && large > 0,
            "bimodal gaps: {small} small, {large} large"
        );
    }

    #[test]
    fn webserver_reads_dominate_and_never_lock() {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        machine.spawn(Box::new(Webserver::new(3)), ctx);
        machine.run_for(10_000_000);
        let stats = machine.stats();
        assert!(stats.memory_ops > 100);
        assert_eq!(stats.bus_locks, 0);
    }

    #[test]
    fn instances_with_different_seeds_diverge() {
        let run = |seed| {
            let mut machine = Machine::new(MachineConfig::default());
            let ctx = machine.config().context_id(0, 0);
            machine.spawn(Box::new(Mailserver::new(seed)), ctx);
            machine.run_for(2_000_000);
            machine.stats()
        };
        assert_ne!(run(1), run(2));
    }
}
