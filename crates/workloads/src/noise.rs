//! Background interference processes.
//!
//! The paper's threat model (§III) runs at least three other active
//! processes alongside every trojan/spy pair, so detection is demonstrated
//! under realistic noise. [`BackgroundNoise`] is a tunable such process: it
//! alternates sleep with short activity bursts of cache-touching loads,
//! computes, divisions, and (optionally) rare atomics.

use cchunter_sim::{Op, Program, ProgramView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A configurable background process.
#[derive(Debug)]
pub struct BackgroundNoise {
    rng: SmallRng,
    region_base: u64,
    region_lines: u64,
    /// Fraction of time active (0.0–1.0).
    duty: f64,
    /// Ops per activity burst.
    burst_ops: u32,
    /// Whether the process may issue rare locked atomics.
    allow_atomics: bool,
    /// Coarsening factor: multiplies compute-op sizes and sleeps, keeping
    /// the duty cycle while reducing the op count (for very long runs).
    op_scale: u64,
    burst_left: u32,
}

impl BackgroundNoise {
    /// A light noise process (~`duty` activity) over a private 2 MB region.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < duty <= 1.0`.
    pub fn new(seed: u64, duty: f64) -> Self {
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
        let slot = rng.gen_range(0..128u64);
        BackgroundNoise {
            rng,
            region_base: 0xC0_0000_0000 + slot * 0x400_0000,
            region_lines: 2 * 1024 * 1024 / 64,
            duty,
            burst_ops: 64,
            allow_atomics: false,
            op_scale: 1,
            burst_left: 0,
        }
    }

    /// Enables rare locked atomics (bus-lock noise).
    pub fn with_atomics(mut self) -> Self {
        self.allow_atomics = true;
        self
    }

    /// Overrides the burst length in ops.
    pub fn with_burst_ops(mut self, ops: u32) -> Self {
        self.burst_ops = ops.max(1);
        self
    }

    /// Coarsens the op stream by `scale`: compute ops and sleeps grow
    /// `scale`×, keeping the duty cycle while cutting the op count (and
    /// the per-cycle event rate) proportionally. Used for multi-minute
    /// simulated runs such as the 0.1 bps experiments.
    pub fn with_op_scale(mut self, scale: u64) -> Self {
        self.op_scale = scale.max(1);
        self
    }
}

impl Program for BackgroundNoise {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        if self.burst_left == 0 {
            // Average burst ≈ burst_ops × ~100 cycles of activity; pick the
            // sleep so the duty cycle holds on average.
            let active_cycles = self.burst_ops as u64 * 100 * self.op_scale;
            let sleep = (active_cycles as f64 * (1.0 - self.duty) / self.duty) as u64;
            self.burst_left = self.burst_ops;
            return Op::Idle {
                cycles: self.rng.gen_range(sleep / 2..=sleep + 1),
            };
        }
        self.burst_left -= 1;
        let scale = self.op_scale;
        match self.rng.gen_range(0..10u32) {
            0..=4 => {
                let line = self.rng.gen_range(0..self.region_lines);
                Op::Load {
                    addr: self.region_base + line * 64,
                }
            }
            5..=7 => Op::Compute {
                cycles: self.rng.gen_range(40..200) * scale,
            },
            8 => Op::Div { count: 1 },
            _ => {
                if self.allow_atomics && self.rng.gen_ratio(1, 50) {
                    let line = self.rng.gen_range(0..self.region_lines);
                    Op::AtomicUnaligned {
                        addr: self.region_base + line * 64,
                    }
                } else {
                    Op::Compute {
                        cycles: self.rng.gen_range(20..100) * scale,
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "background-noise"
    }
}

/// Spawns the paper's baseline interference: `count` noise processes on the
/// contexts of cores other than `busy_core`, round-robin.
pub fn spawn_standard_noise(
    machine: &mut cchunter_sim::Machine,
    busy_core: u8,
    count: usize,
    seed: u64,
) {
    spawn_scaled_noise(machine, busy_core, count, seed, 1);
}

/// [`spawn_standard_noise`] with an op-coarsening factor for very long
/// simulated runs (see [`BackgroundNoise::with_op_scale`]).
pub fn spawn_scaled_noise(
    machine: &mut cchunter_sim::Machine,
    busy_core: u8,
    count: usize,
    seed: u64,
    op_scale: u64,
) {
    let config = machine.config().clone();
    let contexts: Vec<_> = config
        .contexts()
        .filter(|c| c.core() != busy_core)
        .collect();
    assert!(!contexts.is_empty(), "no free contexts for noise");
    for i in 0..count {
        let ctx = contexts[i % contexts.len()];
        machine.spawn(
            Box::new(BackgroundNoise::new(seed + i as u64, 0.3).with_op_scale(op_scale)),
            ctx,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cchunter_sim::{Machine, MachineConfig};

    #[test]
    fn noise_respects_duty_cycle_roughly() {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        machine.spawn(Box::new(BackgroundNoise::new(1, 0.2)), ctx);
        machine.run_for(20_000_000);
        let stats = machine.stats();
        // A 20% duty process commits far fewer ops than a saturating one.
        let mut busy_machine = Machine::new(MachineConfig::default());
        let bctx = busy_machine.config().context_id(0, 0);
        busy_machine.spawn(Box::new(BackgroundNoise::new(1, 1.0)), bctx);
        busy_machine.run_for(20_000_000);
        assert!(stats.committed_ops * 2 < busy_machine.stats().committed_ops);
    }

    #[test]
    fn atomics_only_when_enabled() {
        let run = |atomics: bool| {
            let mut machine = Machine::new(MachineConfig::default());
            let ctx = machine.config().context_id(0, 0);
            let noise = BackgroundNoise::new(9, 0.8).with_burst_ops(256);
            let noise = if atomics { noise.with_atomics() } else { noise };
            machine.spawn(Box::new(noise), ctx);
            machine.run_for(50_000_000);
            machine.stats().bus_locks
        };
        assert_eq!(run(false), 0);
        assert!(run(true) > 0);
    }

    #[test]
    fn standard_noise_avoids_the_busy_core() {
        let mut machine = Machine::new(MachineConfig::default());
        spawn_standard_noise(&mut machine, 0, 3, 77);
        for tid in 0..3 {
            assert_ne!(machine.thread_context(tid).core(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn zero_duty_rejected() {
        let _ = BackgroundNoise::new(1, 0.0);
    }
}
