//! # cchunter-workloads
//!
//! Benign synthetic workload generators for the CC-Hunter false-alarm
//! experiments (paper §VI-D) and for background interference (§III: every
//! experiment runs "a few other (at least three) active processes").
//!
//! The paper pairs SPEC2006, STREAM and Filebench programs chosen to
//! maximize pressure on the audited units: gobmk/sjeng hammer the memory
//! bus, bzip2/h264ref issue many integer divisions, STREAM saturates memory
//! bandwidth, and the Filebench mailserver/webserver personalities generate
//! multi-threaded bursty I/O-like traffic. None of them carries a covert
//! channel, so CC-Hunter must stay quiet — including on the mailserver,
//! whose fsync bursts produce a real second histogram distribution that the
//! likelihood-ratio test must (and does) reject.
//!
//! Generators model the *op mix and phase structure* of their namesakes,
//! not their computation: CC-Hunter only ever sees indicator-event timing,
//! so the mix and its burstiness are the behaviour that matters.
//!
//! ```
//! use cchunter_sim::{Machine, MachineConfig};
//! use cchunter_workloads::spec::Gobmk;
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let ctx = machine.config().context_id(0, 0);
//! machine.spawn(Box::new(Gobmk::new(1)), ctx);
//! machine.run_for(1_000_000);
//! assert!(machine.stats().memory_ops > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod filebench;
pub mod noise;
pub mod spec;
pub mod stream;

pub use filebench::{Mailserver, Webserver};
pub use noise::BackgroundNoise;
pub use spec::{Bzip2, Gobmk, H264ref, Hmmer, Libquantum, Mcf, Povray, Sjeng};
pub use stream::Stream;

use cchunter_sim::Program;

/// The benchmark pairs of the paper's Figure 14 false-alarm study, as
/// `(label, program A, program B)` rows. Both programs of a pair are run
/// simultaneously on the same physical core as hyperthreads.
///
/// Seeds differ per instance so "mailserver mailserver" runs two distinct
/// mailserver instances.
#[allow(clippy::type_complexity)]
pub fn figure14_pairs() -> Vec<(&'static str, Box<dyn Program>, Box<dyn Program>)> {
    vec![
        (
            "gobmk_sjeng",
            Box::new(Gobmk::new(101)) as Box<dyn Program>,
            Box::new(Sjeng::new(202)) as Box<dyn Program>,
        ),
        (
            "bzip2_h264ref",
            Box::new(Bzip2::new(303)),
            Box::new(H264ref::new(404)),
        ),
        (
            "stream_stream",
            Box::new(Stream::new(505)),
            Box::new(Stream::new(606)),
        ),
        (
            "mailserver_mailserver",
            Box::new(Mailserver::new(707)),
            Box::new(Mailserver::new(808)),
        ),
        (
            "webserver_webserver",
            Box::new(Webserver::new(909)),
            Box::new(Webserver::new(1010)),
        ),
    ]
}

/// Every benign workload by name, for the extended pairwise false-alarm
/// study (the paper tests 128 pair-wise combinations; `extended_pairs`
/// enumerates all unordered pairs of this roster).
pub fn workload_roster() -> Vec<&'static str> {
    vec![
        "gobmk",
        "sjeng",
        "bzip2",
        "h264ref",
        "mcf",
        "libquantum",
        "povray",
        "hmmer",
        "stream",
        "mailserver",
        "webserver",
    ]
}

/// Instantiates a workload by roster name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn workload_by_name(name: &str, seed: u64) -> Box<dyn Program> {
    match name {
        "gobmk" => Box::new(Gobmk::new(seed)),
        "sjeng" => Box::new(Sjeng::new(seed)),
        "bzip2" => Box::new(Bzip2::new(seed)),
        "h264ref" => Box::new(H264ref::new(seed)),
        "mcf" => Box::new(Mcf::new(seed)),
        "libquantum" => Box::new(Libquantum::new(seed)),
        "povray" => Box::new(Povray::new(seed)),
        "hmmer" => Box::new(Hmmer::new(seed)),
        "stream" => Box::new(Stream::new(seed)),
        "mailserver" => Box::new(Mailserver::new(seed)),
        "webserver" => Box::new(Webserver::new(seed)),
        other => panic!("unknown workload {other:?}"),
    }
}

/// All unordered pairs (including self-pairs) of the roster: 66 pairs.
#[allow(clippy::type_complexity)]
pub fn extended_pairs() -> Vec<(String, Box<dyn Program>, Box<dyn Program>)> {
    let roster = workload_roster();
    let mut pairs = Vec::new();
    for (i, a) in roster.iter().enumerate() {
        for b in roster.iter().skip(i) {
            pairs.push((
                format!("{a}_{b}"),
                workload_by_name(a, 1_000 + i as u64),
                workload_by_name(b, 2_000 + i as u64),
            ));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_has_five_pairs() {
        let pairs = figure14_pairs();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].0, "gobmk_sjeng");
        assert_eq!(pairs[0].1.name(), "gobmk");
    }

    #[test]
    fn extended_roster_covers_all_pairs() {
        let pairs = extended_pairs();
        // 11 workloads → 11·12/2 = 66 unordered pairs.
        assert_eq!(pairs.len(), 66);
        let names: std::collections::HashSet<_> = pairs.iter().map(|(l, _, _)| l.clone()).collect();
        assert_eq!(names.len(), 66, "labels are unique");
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = workload_by_name("doom", 1);
    }
}
