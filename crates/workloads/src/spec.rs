//! SPEC2006-like synthetic workloads.
//!
//! Each generator models the op mix the paper relies on: gobmk and sjeng
//! have "numerous repeated accesses to the memory bus" (pointer-chasing
//! over working sets larger than L2, with the occasional legacy unaligned
//! atomic), while bzip2 and h264ref have "a significant number of integer
//! divisions" (rate/distortion and entropy arithmetic). Phase behaviour is
//! modeled with alternating compute/memory regions of randomized length, so
//! contention is irregular rather than recurrent — the property that keeps
//! them on the right side of CC-Hunter's likelihood-ratio test.

use cchunter_sim::{Op, Program, ProgramView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Common scaffolding for the SPEC-like generators.
#[derive(Debug)]
struct SpecCore {
    rng: SmallRng,
    region_base: u64,
    region_lines: u64,
    /// Remaining ops of the current phase.
    phase_left: u32,
    /// Whether the current phase is memory-bound.
    memory_phase: bool,
}

impl SpecCore {
    fn new(seed: u64, region_mb: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let region_base = 0x6000_0000 + (rng.gen_range(0..64u64)) * 0x1000_0000;
        SpecCore {
            rng,
            region_base,
            region_lines: region_mb * 1024 * 1024 / 64,
            phase_left: 0,
            memory_phase: false,
        }
    }

    fn random_load(&mut self) -> Op {
        let line = self.rng.gen_range(0..self.region_lines);
        Op::Load {
            addr: self.region_base + line * 64,
        }
    }

    /// Advances the phase machine; returns whether the current phase is
    /// memory-bound.
    fn tick_phase(&mut self, memory_bias: f64, phase_ops: std::ops::Range<u32>) -> bool {
        if self.phase_left == 0 {
            self.memory_phase = self.rng.gen_bool(memory_bias);
            self.phase_left = self.rng.gen_range(phase_ops);
        }
        self.phase_left -= 1;
        self.memory_phase
    }
}

macro_rules! spec_workload {
    ($(#[$doc:meta])* $name:ident, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            core: SpecCore,
        }

        impl $name {
            /// Creates an instance with a deterministic seed.
            pub fn new(seed: u64) -> Self {
                $name {
                    core: SpecCore::new(seed ^ const_hash($label), 16),
                }
            }
        }
    };
}

/// Compile-time-ish label hash so same seed + different workload differ.
fn const_hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

spec_workload!(
    /// gobmk-like: Go engine with branchy compute and bus-heavy board
    /// scans; issues occasional legacy unaligned atomics (lock-prefixed
    /// RMW on packed structures).
    Gobmk,
    "gobmk"
);

impl Program for Gobmk {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.55, 40..220);
        if memory {
            if self.core.rng.gen_ratio(1, 400) {
                // A packed-structure atomic: the benign source of the
                // occasional bus lock in Figure 14's first column.
                let line = self.core.rng.gen_range(0..self.core.region_lines);
                return Op::AtomicUnaligned {
                    addr: self.core.region_base + line * 64,
                };
            }
            self.core.random_load()
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(30..200),
            }
        }
    }

    fn name(&self) -> &str {
        "gobmk"
    }
}

spec_workload!(
    /// sjeng-like: chess search alternating deep compute with transposition
    /// table lookups that mostly miss cache; rare locked RMWs.
    Sjeng,
    "sjeng"
);

impl Program for Sjeng {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.45, 60..300);
        if memory {
            if self.core.rng.gen_ratio(1, 500) {
                let line = self.core.rng.gen_range(0..self.core.region_lines);
                return Op::AtomicUnaligned {
                    addr: self.core.region_base + line * 64,
                };
            }
            self.core.random_load()
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(50..350),
            }
        }
    }

    fn name(&self) -> &str {
        "sjeng"
    }
}

spec_workload!(
    /// bzip2-like: block-sorting compression with division-heavy entropy
    /// coding phases.
    Bzip2,
    "bzip2"
);

impl Program for Bzip2 {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.35, 80..400);
        if memory {
            self.core.random_load()
        } else if self.core.rng.gen_ratio(1, 12) {
            Op::Div {
                count: self.core.rng.gen_range(1..3),
            }
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(20..160),
            }
        }
    }

    fn name(&self) -> &str {
        "bzip2"
    }
}

spec_workload!(
    /// h264ref-like: video encoding with rate-distortion divisions and
    /// motion-search memory sweeps.
    H264ref,
    "h264ref"
);

impl Program for H264ref {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.40, 100..500);
        if memory {
            self.core.random_load()
        } else if self.core.rng.gen_ratio(1, 8) {
            Op::Div { count: 1 }
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(15..120),
            }
        }
    }

    fn name(&self) -> &str {
        "h264ref"
    }
}

spec_workload!(
    /// mcf-like: single-thread network simplex — almost purely
    /// latency-bound pointer chasing over a huge working set.
    Mcf,
    "mcf"
);

impl Program for Mcf {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.85, 200..800);
        if memory {
            self.core.random_load()
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(10..60),
            }
        }
    }

    fn name(&self) -> &str {
        "mcf"
    }
}

spec_workload!(
    /// libquantum-like: quantum simulation with long streaming sweeps over
    /// the state vector, interleaved with light arithmetic.
    Libquantum,
    "libquantum"
);

impl Program for Libquantum {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        // Streaming: sequential lines, not random.
        let memory = self.core.tick_phase(0.70, 500..2_000);
        if memory {
            let line = (view.now.as_u64() / 64) % self.core.region_lines;
            Op::Load {
                addr: self.core.region_base + line * 64,
            }
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(20..90),
            }
        }
    }

    fn name(&self) -> &str {
        "libquantum"
    }
}

spec_workload!(
    /// povray-like: ray tracing — overwhelmingly compute with small hot
    /// data, occasional divisions in shading math.
    Povray,
    "povray"
);

impl Program for Povray {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.10, 100..400);
        if memory {
            self.core.random_load()
        } else if self.core.rng.gen_ratio(1, 20) {
            Op::Div { count: 1 }
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(40..300),
            }
        }
    }

    fn name(&self) -> &str {
        "povray"
    }
}

spec_workload!(
    /// hmmer-like: profile HMM search — tight integer compute with
    /// regular, prefetch-friendly memory access and multiplications.
    Hmmer,
    "hmmer"
);

impl Program for Hmmer {
    fn next_op(&mut self, view: &ProgramView) -> Op {
        let memory = self.core.tick_phase(0.30, 150..600);
        if memory {
            let line = (view.now.as_u64() / 128) % self.core.region_lines;
            Op::Load {
                addr: self.core.region_base + line * 64,
            }
        } else if self.core.rng.gen_ratio(1, 6) {
            Op::Mul {
                count: self.core.rng.gen_range(1..4),
            }
        } else {
            Op::Compute {
                cycles: self.core.rng.gen_range(15..100),
            }
        }
    }

    fn name(&self) -> &str {
        "hmmer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cchunter_sim::{Machine, MachineConfig};

    fn run_alone(program: Box<dyn Program>, cycles: u64) -> cchunter_sim::MachineStats {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        machine.spawn(program, ctx);
        machine.run_for(cycles);
        machine.stats()
    }

    #[test]
    fn gobmk_touches_bus_and_occasionally_locks() {
        let stats = run_alone(Box::new(Gobmk::new(7)), 5_000_000);
        assert!(stats.memory_ops > 1_000);
        assert!(stats.bus_locks > 0, "gobmk issues occasional atomics");
        // Locks are rare, not a storm.
        assert!(stats.bus_locks < stats.memory_ops / 50);
    }

    #[test]
    fn bzip2_divides_a_lot() {
        let stats = run_alone(Box::new(Bzip2::new(7)), 5_000_000);
        assert!(stats.divisions > 1_000, "got {}", stats.divisions);
        assert_eq!(stats.bus_locks, 0, "bzip2 does not lock the bus");
    }

    #[test]
    fn h264_divides_more_often_than_sjeng() {
        let h264 = run_alone(Box::new(H264ref::new(7)), 5_000_000);
        let sjeng = run_alone(Box::new(Sjeng::new(7)), 5_000_000);
        assert!(h264.divisions > sjeng.divisions * 10);
    }

    #[test]
    fn same_seed_reproduces_op_stream() {
        let a = run_alone(Box::new(Gobmk::new(42)), 1_000_000);
        let b = run_alone(Box::new(Gobmk::new(42)), 1_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_workloads_differ_under_same_seed() {
        let a = run_alone(Box::new(Gobmk::new(42)), 1_000_000);
        let b = run_alone(Box::new(Sjeng::new(42)), 1_000_000);
        assert_ne!(a, b);
    }

    #[test]
    fn mcf_is_memory_bound() {
        let stats = run_alone(Box::new(Mcf::new(7)), 5_000_000);
        assert!(stats.memory_ops * 2 > stats.committed_ops);
        assert_eq!(stats.bus_locks, 0);
    }

    #[test]
    fn povray_is_compute_bound() {
        let stats = run_alone(Box::new(Povray::new(7)), 5_000_000);
        assert!(stats.memory_ops * 4 < stats.committed_ops);
    }

    #[test]
    fn hmmer_multiplies() {
        let stats = run_alone(Box::new(Hmmer::new(7)), 5_000_000);
        assert!(stats.multiplications > 500, "got {}", stats.multiplications);
        assert_eq!(stats.divisions, 0);
    }

    #[test]
    fn libquantum_streams() {
        let stats = run_alone(Box::new(Libquantum::new(7)), 5_000_000);
        assert!(stats.memory_ops > 5_000);
        assert_eq!(stats.bus_locks, 0);
    }

    #[test]
    fn workloads_never_halt() {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        let tid = machine.spawn(Box::new(Bzip2::new(1)), ctx);
        machine.run_for(2_000_000);
        assert_eq!(machine.thread_state(tid), cchunter_sim::ThreadState::Ready);
    }
}
