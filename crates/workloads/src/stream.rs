//! A STREAM-like bandwidth benchmark (McCalpin).
//!
//! STREAM cycles through its four kernels (copy, scale, add, triad) over
//! arrays far larger than any cache, producing a steady wall of sequential
//! memory traffic — maximal pressure on the bus with no locks and no
//! recurrent burst structure (the access rate is *constant*, which is
//! exactly what the burst detector's threshold-density split rejects).

use cchunter_sim::{Op, Program, ProgramView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which STREAM kernel is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Copy,
    Scale,
    Add,
    Triad,
}

impl Kernel {
    fn next(self) -> Kernel {
        match self {
            Kernel::Copy => Kernel::Scale,
            Kernel::Scale => Kernel::Add,
            Kernel::Add => Kernel::Triad,
            Kernel::Triad => Kernel::Copy,
        }
    }

    /// Loads per stored element (copy/scale read one array, add/triad two).
    fn loads(self) -> u32 {
        match self {
            Kernel::Copy | Kernel::Scale => 1,
            Kernel::Add | Kernel::Triad => 2,
        }
    }

    /// Arithmetic cycles per element.
    fn flops_cycles(self) -> u64 {
        match self {
            Kernel::Copy => 1,
            Kernel::Scale => 4,
            Kernel::Add => 4,
            Kernel::Triad => 8,
        }
    }
}

/// The STREAM-like generator.
#[derive(Debug)]
pub struct Stream {
    base: u64,
    array_lines: u64,
    cursor: u64,
    kernel: Kernel,
    /// Per-element micro-state: pending loads before the store.
    loads_left: u32,
    store_pending: bool,
}

impl Stream {
    /// Creates an instance; `seed` staggers the address region so two
    /// STREAM instances do not share lines.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Stream {
            base: 0x20_0000_0000 + rng.gen_range(0..32u64) * 0x4000_0000,
            array_lines: 4 * 1024 * 1024 / 64, // 4 MB arrays
            cursor: 0,
            kernel: Kernel::Copy,
            loads_left: 1,
            store_pending: false,
        }
    }

    fn line_addr(&self, array: u64, line: u64) -> u64 {
        self.base + array * 0x1000_0000 + line * 64
    }
}

impl Program for Stream {
    fn next_op(&mut self, _view: &ProgramView) -> Op {
        if self.loads_left > 0 {
            let array = self.loads_left as u64; // source array 1 or 2
            self.loads_left -= 1;
            self.store_pending = true;
            return Op::Load {
                addr: self.line_addr(array, self.cursor),
            };
        }
        if self.store_pending {
            self.store_pending = false;
            return Op::Store {
                addr: self.line_addr(0, self.cursor),
            };
        }
        // Element done: arithmetic, then advance (next kernel at wrap).
        let flops = self.kernel.flops_cycles();
        self.cursor += 1;
        if self.cursor >= self.array_lines {
            self.cursor = 0;
            self.kernel = self.kernel.next();
        }
        self.loads_left = self.kernel.loads();
        Op::Compute { cycles: flops }
    }

    fn name(&self) -> &str {
        "stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cchunter_sim::{Machine, MachineConfig};

    #[test]
    fn stream_is_memory_dominated() {
        let mut machine = Machine::new(MachineConfig::default());
        let ctx = machine.config().context_id(0, 0);
        machine.spawn(Box::new(Stream::new(1)), ctx);
        machine.run_for(5_000_000);
        let stats = machine.stats();
        assert!(stats.memory_ops * 2 > stats.committed_ops);
        assert_eq!(stats.bus_locks, 0);
        assert_eq!(stats.divisions, 0);
    }

    #[test]
    fn sequential_cursor_walks_lines() {
        let mut s = Stream::new(1);
        let view = ProgramView {
            now: cchunter_sim::Cycle::ZERO,
            last_latency: 0,
            ctx: cchunter_sim::ContextId::new(0, 0),
            thread: 0,
        };
        let mut loads = Vec::new();
        for _ in 0..30 {
            if let Op::Load { addr } = s.next_op(&view) {
                loads.push(addr);
            }
        }
        assert!(loads.windows(2).all(|w| w[1] >= w[0]), "monotone walk");
    }

    #[test]
    fn two_instances_use_disjoint_regions() {
        let a = Stream::new(1);
        let b = Stream::new(2);
        assert_ne!(a.base, b.base);
    }
}
