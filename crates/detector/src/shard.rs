//! Failure-domain sharding: a self-healing fleet of fleets.
//!
//! One flat [`Supervisor`] contains *pair*-level failures (a panicking
//! detector, a wedged analysis) but is itself a single failure domain: if
//! the supervising loop wedges, every monitored pair goes blind at once.
//! The paper's deployment story — a cloud host auditing every
//! co-scheduled pair — needs the monitor partitioned the same way the
//! time-protection literature partitions the resources it guards.
//!
//! [`ShardedFleet`] hashes pair identities across N crash-contained shard
//! supervisors and re-applies the PR 3 watchdog machinery one level up:
//!
//! * **Placement** — rendezvous (highest-random-weight) hashing
//!   ([`pair_key`] + [`rendezvous_shard`]) assigns each pair to one live
//!   shard. The assignment is stable across restarts with the same shard
//!   count, and removing one shard moves only *that shard's* pairs.
//! * **Isolation** — each shard wraps today's [`Supervisor`] with its own
//!   exclusively-owned [`CheckpointStore`] directory
//!   ([`CheckpointStore::open_exclusive`]), its own metrics [`Registry`]
//!   (scraped with a `shard="N"` label), its own optional
//!   [`IngestPipeline`], and its own [`MitigationEnforcer`].
//! * **Hand-off** — the coordinator probes each pair once per tick
//!   (owning the retry/backoff budget) and enqueues inputs into bounded
//!   per-shard mailboxes. Overload converts [`Harvest::Complete`] into
//!   [`Harvest::Partial`] backpressure — wider verdict uncertainty — and
//!   never blocks the coordinator or silently drops a pair's input.
//! * **Heartbeats** — shard ticks fan out under `catch_unwind` with a
//!   wall-clock deadline budget. A panicked or over-deadline shard tick is
//!   a heartbeat miss; [`ShardedFleetConfig::dead_after`] consecutive
//!   misses declare the shard dead.
//! * **Migration** — a dead shard's pairs are restored onto survivors
//!   from its checkpoint store ([`Supervisor::recover_pairs`] →
//!   [`Supervisor::import_pair`]), rolling back over corrupt generations.
//!   An active containment re-asserts through the adoptive shard's
//!   enforcer, exactly like a crash-restore. Pairs whose checkpoints are
//!   unrecoverable are re-created *degraded*: their Clean verdicts floor
//!   to [`Verdict::Inconclusive`]. With no survivors at all, pairs are
//!   carried as orphans (reported Inconclusive) until a shard revives.
//!
//! The global pair table is the source of truth: every pair added to the
//! fleet is accounted for in [`ShardedFleet::pair_statuses`] at all times
//! — monitored, degraded, or orphaned, never silently gone. A
//! partially-dead fleet never silently acquits.
//!
//! Shard count comes from [`ShardedFleetConfig`] or the `CCHUNTER_SHARDS`
//! environment knob ([`shard_count_from_env`]), so the same binary runs a
//! 1-core CI box and a many-core host.

use crate::ingest::{IngestConfig, IngestPipeline};
use crate::metrics::{
    render_prometheus_merged, Counter, Family, Gauge, Histogram, Registry, LATENCY_BUCKETS_US,
};
use crate::mitigation::{AdvisoryEnforcer, ContainmentState, MitigationEnforcer};
use crate::online::Harvest;
use crate::pipeline::Verdict;
use crate::policy::{
    backoff_delay, mix_seed, BreakerState, SuspicionConfig, SuspicionTracker, SuspicionTransition,
};
use crate::span::{self, Tracer};
use crate::store::{CheckpointStore, StorageMedium};
use crate::supervisor::{
    IngestSnapshot, LatencySummary, MetricsSnapshot, PairInput, PairKind, PairSnapshot, PairStatus,
    ProbeFault, ProbeSource, RestoredFrom, Supervisor, SupervisorConfig, TickReport,
};
use crate::DetectorError;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Sharded-fleet configuration.
#[derive(Debug, Clone)]
pub struct ShardedFleetConfig {
    /// Number of shard supervisors (failure domains). See
    /// [`shard_count_from_env`] for the `CCHUNTER_SHARDS` knob.
    pub shards: usize,
    /// The per-shard supervisor configuration. The coordinator owns the
    /// probe retry/backoff budget, so shard supervisors run with
    /// `backoff.max_retries = 0` regardless of what `base` says.
    pub base: SupervisorConfig,
    /// Per-shard, per-tick mailbox capacity; inputs beyond it are degraded
    /// to partial harvests (backpressure), never dropped. 0 = unbounded.
    pub mailbox_capacity: usize,
    /// The `lost_fraction` widening applied to an input degraded by
    /// mailbox overflow, in `[0, 1]`.
    pub overflow_loss: f64,
    /// Wall-clock budget for one whole shard tick, in microseconds; an
    /// over-budget tick is a heartbeat miss. 0 disables the deadline.
    pub shard_deadline_us: u64,
    /// Consecutive heartbeat misses before a shard is declared dead and
    /// its pairs migrate to survivors.
    pub dead_after: u32,
    /// Checkpoint generations retained per shard store.
    pub keep_generations: usize,
    /// When set, each shard gets its own hardened [`IngestPipeline`] with
    /// this configuration (stats attached to the shard's supervisor).
    pub ingest: Option<IngestConfig>,
    /// When set, shards are *suspected* on sustained tick-latency SLO
    /// breaches (the gray-failure watchdog) and proactively drained; see
    /// [`LatencySloConfig`]. `None` disables suspicion.
    pub latency_slo: Option<LatencySloConfig>,
    /// Per-tick cap on pairs migrated back onto their rendezvous-hash home
    /// shard after it revives (or is cleared of suspicion) — the churn
    /// budget of the rebalance pass. 0 disables rebalancing (pairs stay
    /// where migration left them).
    pub rebalance_per_tick: usize,
}

impl Default for ShardedFleetConfig {
    fn default() -> Self {
        ShardedFleetConfig {
            shards: 4,
            base: SupervisorConfig::default(),
            mailbox_capacity: 0,
            overflow_loss: 0.25,
            shard_deadline_us: 0,
            dead_after: 3,
            keep_generations: 4,
            ingest: None,
            latency_slo: None,
            rebalance_per_tick: 4,
        }
    }
}

/// Latency-SLO suspicion parameters: the *gray*-failure counterpart of the
/// hard heartbeat watchdog. A shard whose tick-latency p99 (over a rolling
/// window of [`window_ticks`] shard ticks) breaches [`p99_budget_us`] for
/// [`SuspicionConfig::breach_ticks`] consecutive ticks is **suspected**:
/// still live, still ticking, but its pairs are proactively drained to
/// healthy shards through the checkpoint-restore path — *before* the
/// watchdog would declare death — at [`drain_per_tick`] pairs per tick.
/// Suspicion clears after [`SuspicionConfig::clear_ticks`] consecutive
/// in-budget ticks, and the rebalance pass then walks the pairs home
/// again.
///
/// [`window_ticks`]: LatencySloConfig::window_ticks
/// [`p99_budget_us`]: LatencySloConfig::p99_budget_us
/// [`drain_per_tick`]: LatencySloConfig::drain_per_tick
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySloConfig {
    /// The tick-latency p99 budget, in microseconds.
    pub p99_budget_us: u64,
    /// Shard ticks per p99 window; the window resets when full so old
    /// latencies cannot mask a fresh brownout (or a fresh recovery).
    pub window_ticks: u64,
    /// Hysteresis streak lengths (consecutive breach/clear ticks).
    pub suspicion: SuspicionConfig,
    /// Per-tick cap on pairs drained off suspected shards.
    pub drain_per_tick: usize,
}

impl Default for LatencySloConfig {
    fn default() -> Self {
        LatencySloConfig {
            p99_budget_us: 50_000,
            window_ticks: 8,
            suspicion: SuspicionConfig::default(),
            drain_per_tick: 4,
        }
    }
}

impl ShardedFleetConfig {
    fn validate(&self) -> Result<(), DetectorError> {
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return Err(DetectorError::InvalidConfig {
                reason: format!("shard count {} out of range 1..={MAX_SHARDS}", self.shards),
            });
        }
        if !self.overflow_loss.is_finite() || !(0.0..=1.0).contains(&self.overflow_loss) {
            return Err(DetectorError::InvalidConfig {
                reason: format!("overflow loss {} out of [0, 1]", self.overflow_loss),
            });
        }
        if self.dead_after == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "dead_after must be at least one missed heartbeat".to_string(),
            });
        }
        if self.keep_generations == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "shard stores must keep at least one generation".to_string(),
            });
        }
        if let Some(slo) = &self.latency_slo {
            if slo.p99_budget_us == 0 {
                return Err(DetectorError::InvalidConfig {
                    reason: "latency-SLO p99 budget must be positive".to_string(),
                });
            }
            if slo.window_ticks == 0 {
                return Err(DetectorError::InvalidConfig {
                    reason: "latency-SLO window must cover at least one tick".to_string(),
                });
            }
            if slo.drain_per_tick == 0 {
                return Err(DetectorError::InvalidConfig {
                    reason: "suspected shards must drain at least one pair per tick".to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Hard upper bound on the shard count (a config typo guard, far above any
/// sensible core count).
pub const MAX_SHARDS: usize = 256;

/// Reads the shard count from the `CCHUNTER_SHARDS` environment variable,
/// clamped to `1..=`[`MAX_SHARDS`]; `default` when unset or unparseable.
pub fn shard_count_from_env(default: usize) -> usize {
    std::env::var("CCHUNTER_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_SHARDS))
        .unwrap_or(default)
}

/// FNV-1a hash of a pair label: the stable pair identity used for shard
/// placement (independent of insertion order and shard count).
pub fn pair_key(label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Rendezvous (highest-random-weight) choice among `shards` for `key`:
/// each candidate's weight is a mix of `(key, shard)`, and the largest
/// wins. Removing one shard from the candidate set only ever moves the
/// pairs whose maximum *was* that shard — survivors keep their pairs.
/// Returns `None` when `shards` is empty.
pub fn rendezvous_shard(key: u64, shards: &[usize]) -> Option<usize> {
    shards
        .iter()
        .copied()
        .max_by_key(|&shard| (mix_seed(key, shard as u64, 0x5AD0_C0DE), shard))
}

/// A shard's liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard's supervisor is running.
    Live,
    /// The shard was declared dead; its pairs migrated (or orphaned).
    Dead,
}

/// One shard's standing for a monitoring page.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub index: usize,
    /// Liveness.
    pub health: ShardHealth,
    /// Pairs currently hosted.
    pub pairs: usize,
    /// Consecutive heartbeat misses (resets on a clean tick).
    pub heartbeat_misses: u32,
    /// Whether the latency-SLO watchdog currently suspects this shard
    /// (slow but alive; its pairs are being drained).
    pub suspected: bool,
    /// Times this shard has been declared dead.
    pub deaths: u64,
    /// Contained shard-tick panics.
    pub panics: u64,
    /// Shard ticks that blew the wall-clock deadline.
    pub tick_deadline_misses: u64,
    /// Wall-clock microseconds of the last completed shard tick.
    pub last_tick_us: u64,
}

/// One pair's fleet-wide standing: every pair ever added appears here,
/// whatever happened to its shard.
#[derive(Debug, Clone)]
pub struct FleetPairStatus {
    /// Global pair index (stable across migrations).
    pub pair: usize,
    /// Pair label.
    pub label: String,
    /// Daemon kind.
    pub kind: PairKind,
    /// Hosting shard; `None` while orphaned (no live shard to run on).
    pub shard: Option<usize>,
    /// Current verdict. Orphaned pairs report
    /// [`Verdict::Inconclusive`] — a pair the fleet cannot monitor is
    /// never reported Clean.
    pub verdict: Verdict,
    /// Whether the pair runs degraded (untrusted window provenance).
    pub degraded: bool,
    /// Containment standing ([`ContainmentState::Inactive`] for orphans).
    pub containment: ContainmentState,
    /// Breaker state on the hosting shard, when live.
    pub health: Option<BreakerState>,
    /// Provenance of the pair's window, when it was restored/migrated.
    pub restored_from: Option<RestoredFrom>,
}

/// What a migration (one shard death) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Pairs re-homed onto surviving shards.
    pub migrated: usize,
    /// Of those, pairs imported degraded (unrecoverable or invalid
    /// checkpoints).
    pub degraded_imports: usize,
    /// Pairs left orphaned because no live shard remained.
    pub orphaned: usize,
}

/// Fleet-wide report for one coordinator tick.
#[derive(Debug)]
pub struct FleetTickReport {
    /// The coordinator tick that ran.
    pub tick: u64,
    /// Per-shard tick reports (`None` for shards that were dead, panicked,
    /// or skipped this tick), indexed by shard.
    pub shard_reports: Vec<Option<TickReport>>,
    /// Shards that missed their heartbeat this tick (panic or deadline).
    pub heartbeat_misses: Vec<usize>,
    /// Shards declared dead (and buried) this tick.
    pub deaths: Vec<usize>,
    /// What this tick's migrations did (zeros when nothing died).
    pub migration: MigrationReport,
    /// Inputs degraded to partial harvests by mailbox overflow.
    pub overflow_degraded: usize,
    /// Shards that *became* suspected this tick (latency-SLO breach
    /// streak completed).
    pub suspected: Vec<usize>,
    /// Shards cleared of suspicion this tick (recovery streak completed).
    pub cleared: Vec<usize>,
    /// Pairs drained off suspected shards this tick.
    pub drained: usize,
    /// Pairs rebalanced back onto their rendezvous home shard this tick.
    pub rebalanced: usize,
}

/// Everything a monitoring page needs about the sharded fleet.
#[derive(Debug)]
pub struct ShardedFleetStatus {
    /// Coordinator ticks completed.
    pub tick: u64,
    /// Per-shard standing.
    pub shards: Vec<ShardStatus>,
    /// Every pair's standing (monitored, degraded, or orphaned).
    pub pairs: Vec<FleetPairStatus>,
    /// The rolled-up numeric digest (see
    /// [`ShardedFleet::metrics_snapshot`]).
    pub metrics: MetricsSnapshot,
}

/// Where a pair currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairHome {
    /// Hosted by `shard` at local index `slot`.
    Assigned { shard: usize, slot: usize },
    /// No live shard could host it; carried until one revives.
    Orphaned,
}

/// One row of the global pair table: the authoritative identity of a pair,
/// surviving every shard death.
#[derive(Debug, Clone)]
struct PairEntry {
    label: String,
    kind: PairKind,
    key: u64,
    home: PairHome,
}

/// One failure domain: a supervisor plus everything scoped to it.
struct Shard {
    /// `None` while dead.
    supervisor: Option<Supervisor>,
    /// The shard's isolated metrics registry (kept across death for
    /// post-mortem scrapes; replaced on revive).
    registry: Registry,
    /// The shard's mitigation actuation backend.
    enforcer: Box<dyn MitigationEnforcer + Send>,
    /// The shard's hardened ingest pipeline, when configured.
    ingest: Option<IngestPipeline>,
    /// Global pair index hosted at each local slot.
    slots: Vec<usize>,
    /// Latency-SLO suspicion state, when configured.
    suspicion: Option<SloState>,
    /// Consecutive heartbeat misses.
    misses: u32,
    deaths: u64,
    panics: u64,
    tick_deadline_misses: u64,
    last_tick_us: u64,
    /// Chaos injection: panic the next N shard ticks.
    chaos_panic_ticks: u32,
    /// Chaos injection: stall the next shard tick this long.
    chaos_stall_us: u64,
}

impl Shard {
    /// Whether the latency-SLO watchdog currently suspects this shard.
    fn is_suspected(&self) -> bool {
        self.suspicion
            .as_ref()
            .is_some_and(|s| s.tracker.suspected())
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("live", &self.supervisor.is_some())
            .field("slots", &self.slots.len())
            .field("suspected", &self.is_suspected())
            .field("misses", &self.misses)
            .field("deaths", &self.deaths)
            .finish_non_exhaustive()
    }
}

/// Per-shard latency-SLO suspicion state: a rolling tick-latency window
/// (reset when full) judged against the p99 budget through the hysteresis
/// tracker.
#[derive(Debug)]
struct SloState {
    window: Histogram,
    tracker: SuspicionTracker,
}

/// Coordinator-level instruments (the shard supervisors' own instruments
/// live in their per-shard registries).
#[derive(Debug)]
struct CoordinatorMetrics {
    ticks: Counter,
    tick_latency_us: Histogram,
    live_shards: Gauge,
    orphaned_pairs: Gauge,
    degraded_pairs: Gauge,
    shard_deaths: Counter,
    migrated_pairs: Counter,
    degraded_imports: Counter,
    mailbox_overflow: Counter,
    probe_retries: Counter,
    suspected_shards: Gauge,
    drained_pairs: Counter,
    rebalanced_pairs: Counter,
    shard_live: Family<Gauge>,
    shard_suspected: Family<Gauge>,
    shard_pairs: Family<Gauge>,
    shard_heartbeat_misses: Family<Counter>,
    shard_tick_latency_us: Family<Histogram>,
}

impl CoordinatorMetrics {
    fn register(registry: &Registry) -> Self {
        const SHARD: &str = "shard";
        CoordinatorMetrics {
            ticks: registry.counter(
                "cchunter_fleet_ticks_total",
                "Sharded-fleet coordinator ticks completed.",
            ),
            tick_latency_us: registry.histogram(
                "cchunter_fleet_tick_latency_us",
                "Wall-clock latency of one whole-fleet tick, in microseconds.",
                &LATENCY_BUCKETS_US,
            ),
            live_shards: registry.gauge("cchunter_fleet_live_shards", "Shards currently live."),
            orphaned_pairs: registry.gauge(
                "cchunter_fleet_orphaned_pairs",
                "Pairs with no live shard to run on (reported Inconclusive).",
            ),
            degraded_pairs: registry.gauge(
                "cchunter_fleet_degraded_pairs",
                "Pairs running in degraded mode (Clean floors to Inconclusive).",
            ),
            shard_deaths: registry.counter(
                "cchunter_fleet_shard_deaths_total",
                "Shards declared dead by the heartbeat watchdog.",
            ),
            migrated_pairs: registry.counter(
                "cchunter_fleet_migrated_pairs_total",
                "Pairs migrated off dead shards onto survivors.",
            ),
            degraded_imports: registry.counter(
                "cchunter_fleet_degraded_imports_total",
                "Migrated pairs whose checkpoints were unrecoverable.",
            ),
            mailbox_overflow: registry.counter(
                "cchunter_fleet_mailbox_overflow_total",
                "Inputs degraded to partial harvests by mailbox overflow.",
            ),
            probe_retries: registry.counter(
                "cchunter_fleet_probe_retries_total",
                "Coordinator-side probe retries across all pairs.",
            ),
            suspected_shards: registry.gauge(
                "cchunter_fleet_suspected_shards",
                "Shards currently suspected by the latency-SLO watchdog.",
            ),
            drained_pairs: registry.counter(
                "cchunter_fleet_drained_pairs_total",
                "Pairs proactively drained off suspected (slow-but-alive) shards.",
            ),
            rebalanced_pairs: registry.counter(
                "cchunter_fleet_rebalanced_pairs_total",
                "Pairs rebalanced back onto their rendezvous home shard.",
            ),
            shard_live: registry.gauge_family(
                "cchunter_shard_live",
                "1 when the shard is live, else 0.",
                SHARD,
            ),
            shard_suspected: registry.gauge_family(
                "cchunter_shard_suspected",
                "1 while the latency-SLO watchdog suspects the shard, else 0.",
                SHARD,
            ),
            shard_pairs: registry.gauge_family(
                "cchunter_shard_pairs",
                "Pairs hosted per shard.",
                SHARD,
            ),
            shard_heartbeat_misses: registry.counter_family(
                "cchunter_shard_heartbeat_misses_total",
                "Heartbeat misses (panic or tick deadline) per shard.",
                SHARD,
            ),
            shard_tick_latency_us: registry.histogram_family(
                "cchunter_shard_tick_latency_us",
                "Wall-clock latency of one shard tick, in microseconds, by shard.",
                SHARD,
                &LATENCY_BUCKETS_US,
            ),
        }
    }
}

/// The sharded-fleet coordinator: N crash-contained shard supervisors, a
/// global pair table, heartbeat watchdogs, and checkpoint-based migration.
///
/// ```
/// use cchunter_detector::shard::{ShardedFleet, ShardedFleetConfig};
/// use cchunter_detector::supervisor::{PairInput, ProbeFault};
///
/// let mut fleet = ShardedFleet::new(ShardedFleetConfig {
///     shards: 2,
///     ..ShardedFleetConfig::default()
/// })
/// .unwrap();
/// fleet.add_contention_pair("memory-bus: pid 17 <-> pid 23").unwrap();
/// let report = fleet.tick(&mut |_pair: usize, _tick: u64, _attempt: u32| {
///     Ok::<PairInput, ProbeFault>(PairInput::Missed)
/// });
/// assert!(report.deaths.is_empty());
/// ```
#[derive(Debug)]
pub struct ShardedFleet {
    config: ShardedFleetConfig,
    /// Root directory holding one store per shard (`shard-NN/`); `None`
    /// runs storeless (no checkpoints, migration always degrades).
    store_root: Option<PathBuf>,
    /// The storage medium every shard store writes through; `None` uses
    /// the real disk. A [`crate::fault::StorageFaultInjector`] here puts
    /// the whole fleet's persistence under chaos control.
    medium: Option<Arc<dyn StorageMedium>>,
    shards: Vec<Shard>,
    table: Vec<PairEntry>,
    tick: u64,
    registry: Registry,
    metrics: CoordinatorMetrics,
    tracer: Tracer,
}

fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:02}"))
}

fn shard_label(shard: usize) -> String {
    shard.to_string()
}

/// Replays a pre-probed mailbox into a shard supervisor's probe loop.
/// Slots are taken at most once; anything unfilled (or re-probed) is a
/// miss — shard supervisors run with zero retries, so the coordinator's
/// retry budget is the only one.
struct MailboxSource {
    slots: Vec<Option<PairInput>>,
}

impl ProbeSource for MailboxSource {
    fn probe(&mut self, pair: usize, _tick: u64, _attempt: u32) -> Result<PairInput, ProbeFault> {
        Ok(self
            .slots
            .get_mut(pair)
            .and_then(Option::take)
            .unwrap_or(PairInput::Missed))
    }
}

/// Degrades an input under mailbox overflow: complete evidence widens to
/// partial (the backpressure signal), already-partial evidence widens
/// further; nothing is dropped.
fn degrade_for_overflow(input: PairInput, loss: f64) -> PairInput {
    match input {
        PairInput::Harvest(Harvest::Complete(histogram)) => PairInput::Harvest(Harvest::Partial {
            histogram,
            lost_fraction: loss,
        }),
        PairInput::Harvest(Harvest::Partial {
            histogram,
            lost_fraction,
        }) => PairInput::Harvest(Harvest::Partial {
            histogram,
            lost_fraction: (lost_fraction + loss).min(1.0),
        }),
        PairInput::Conflicts {
            records,
            lost_fraction,
        } => PairInput::Conflicts {
            records,
            lost_fraction: (lost_fraction + loss).min(1.0),
        },
        other => other,
    }
}

/// Imports a migrated pair into `sup` without ever losing it: a snapshot
/// that fails validation retries degraded; no snapshot at all becomes a
/// fresh pair under the table's authoritative identity, marked degraded.
/// Returns `(slot, imported_degraded)`.
fn import_with_fallback(
    sup: &mut Supervisor,
    snapshot: Option<PairSnapshot>,
    label: &str,
    kind: PairKind,
) -> (usize, bool) {
    if let Some(snap) = snapshot {
        let degraded = snap.is_degraded();
        match sup.import_pair(snap.clone()) {
            Ok(slot) => return (slot, degraded),
            Err(_) => {
                if let Ok(slot) = sup.import_pair(snap.degrade()) {
                    return (slot, true);
                }
            }
        }
    }
    // Losing the pair is the one unacceptable outcome; pair construction
    // under an already-validated config cannot fail.
    let slot = match kind {
        PairKind::Contention => sup.add_contention_pair(label),
        PairKind::Oscillation => sup.add_oscillation_pair(label),
    }
    .expect("shard config validated at fleet construction");
    sup.set_degraded(slot, true).expect("slot just added");
    (slot, true)
}

impl ShardedFleet {
    /// Creates a storeless sharded fleet: no checkpoints are written, so a
    /// dead shard's pairs always migrate degraded. Use
    /// [`ShardedFleet::with_store_root`] for durable failure domains.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range shard
    /// count, overflow loss, or per-shard configuration.
    pub fn new(config: ShardedFleetConfig) -> Result<Self, DetectorError> {
        Self::build(config, None, None)
    }

    /// Creates a sharded fleet whose shards checkpoint into
    /// `root/shard-NN/` directories, each exclusively owned by its shard
    /// ([`CheckpointStore::open_exclusive`]).
    ///
    /// # Errors
    ///
    /// As for [`ShardedFleet::new`], plus store-open errors (including
    /// [`DetectorError::StoreBusy`] when another fleet owns a shard
    /// directory).
    pub fn with_store_root(
        config: ShardedFleetConfig,
        root: impl Into<PathBuf>,
    ) -> Result<Self, DetectorError> {
        Self::build(config, Some(root.into()), None)
    }

    /// [`ShardedFleet::with_store_root`] with an explicit
    /// [`StorageMedium`] every shard store writes through — the
    /// chaos-engineering entry point: pass a
    /// [`crate::fault::StorageFaultInjector`] (keeping a clone as the
    /// control handle) to brown out and heal the whole fleet's
    /// persistence at runtime.
    ///
    /// # Errors
    ///
    /// As for [`ShardedFleet::with_store_root`].
    pub fn with_store_root_and_medium(
        config: ShardedFleetConfig,
        root: impl Into<PathBuf>,
        medium: Arc<dyn StorageMedium>,
    ) -> Result<Self, DetectorError> {
        Self::build(config, Some(root.into()), Some(medium))
    }

    fn build(
        config: ShardedFleetConfig,
        root: Option<PathBuf>,
        medium: Option<Arc<dyn StorageMedium>>,
    ) -> Result<Self, DetectorError> {
        config.validate()?;
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            shards.push(Self::build_shard(
                &config,
                root.as_deref(),
                medium.as_ref(),
                i,
            )?);
        }
        let registry = Registry::new();
        let metrics = CoordinatorMetrics::register(&registry);
        let fleet = ShardedFleet {
            config,
            store_root: root,
            medium,
            shards,
            table: Vec::new(),
            tick: 0,
            registry,
            metrics,
            tracer: span::global().clone(),
        };
        fleet.refresh_gauges();
        Ok(fleet)
    }

    /// The per-shard supervisor configuration: the coordinator owns the
    /// retry budget, so shards probe their mailbox exactly once.
    fn shard_supervisor_config(&self, shard: usize) -> SupervisorConfig {
        let mut cfg = self.config.base;
        cfg.backoff.max_retries = 0;
        cfg.seed = mix_seed(self.config.base.seed, shard as u64, 0x5AD0_C0DE);
        cfg
    }

    fn build_shard(
        config: &ShardedFleetConfig,
        root: Option<&Path>,
        medium: Option<&Arc<dyn StorageMedium>>,
        index: usize,
    ) -> Result<Shard, DetectorError> {
        let mut shard_cfg = config.base;
        shard_cfg.backoff.max_retries = 0;
        shard_cfg.seed = mix_seed(config.base.seed, index as u64, 0x5AD0_C0DE);
        let registry = Registry::new();
        let mut supervisor = Supervisor::new(shard_cfg)?.with_registry(registry.clone());
        if let Some(root) = root {
            let owner = format!("shard-{index:02}");
            let store = match medium {
                Some(medium) => CheckpointStore::open_exclusive_with_medium(
                    shard_dir(root, index),
                    config.keep_generations,
                    owner,
                    Arc::clone(medium),
                )?,
                None => CheckpointStore::open_exclusive(
                    shard_dir(root, index),
                    config.keep_generations,
                    owner,
                )?,
            };
            supervisor = supervisor.with_store(store);
        }
        let ingest = match &config.ingest {
            Some(cfg) => {
                let pipeline = IngestPipeline::new(*cfg)?;
                supervisor.attach_ingest_stats(pipeline.stats());
                Some(pipeline)
            }
            None => None,
        };
        let suspicion = config.latency_slo.as_ref().map(|slo| SloState {
            window: Histogram::latency_us(),
            tracker: SuspicionTracker::new(slo.suspicion),
        });
        Ok(Shard {
            supervisor: Some(supervisor),
            registry,
            enforcer: Box::new(AdvisoryEnforcer),
            ingest,
            slots: Vec::new(),
            suspicion,
            misses: 0,
            deaths: 0,
            panics: 0,
            tick_deadline_misses: 0,
            last_tick_us: 0,
            chaos_panic_ticks: 0,
            chaos_stall_us: 0,
        })
    }

    /// Replaces `shard`'s mitigation actuation backend (default:
    /// [`AdvisoryEnforcer`], shadow mode). The enforcer survives shard
    /// death and revival — it models the hardware/scheduler interface of
    /// the failure domain, not the supervisor process.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index.
    pub fn set_enforcer(
        &mut self,
        shard: usize,
        enforcer: Box<dyn MitigationEnforcer + Send>,
    ) -> Result<(), DetectorError> {
        let slot = self
            .shards
            .get_mut(shard)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("no shard {shard}"),
            })?;
        slot.enforcer = enforcer;
        Ok(())
    }

    /// The fleet configuration.
    pub fn config(&self) -> &ShardedFleetConfig {
        &self.config
    }

    /// Coordinator ticks completed so far.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Total pairs in the global table (monitored, degraded, or orphaned).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the fleet has no pairs.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of shards (failure domains), live or dead.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Indices of currently live shards.
    pub fn live_shard_ids(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.supervisor.is_some().then_some(i))
            .collect()
    }

    /// One shard's liveness (None for an out-of-range index).
    pub fn shard_health(&self, shard: usize) -> Option<ShardHealth> {
        self.shards.get(shard).map(|s| {
            if s.supervisor.is_some() {
                ShardHealth::Live
            } else {
                ShardHealth::Dead
            }
        })
    }

    /// The shard currently hosting `pair` (None for an out-of-range index
    /// or an orphaned pair).
    pub fn shard_of(&self, pair: usize) -> Option<usize> {
        match self.table.get(pair)?.home {
            PairHome::Assigned { shard, .. } => Some(shard),
            PairHome::Orphaned => None,
        }
    }

    /// The coordinator's own registry (per-shard instruments live in the
    /// shard registries; see [`ShardedFleet::render_prometheus`] for the
    /// merged exposition).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One shard's metrics registry (None for an out-of-range index). A
    /// dead shard's registry keeps its last values until the shard is
    /// revived (post-mortem scrape), then starts fresh.
    pub fn shard_registry(&self, shard: usize) -> Option<&Registry> {
        self.shards.get(shard).map(|s| &s.registry)
    }

    /// Mutable access to one shard's hardened ingest pipeline (None when
    /// the shard is out of range or [`ShardedFleetConfig::ingest`] is
    /// unset). Offer raw events and call
    /// [`IngestPipeline::end_quantum`] between fleet ticks; feed the
    /// resulting [`Harvest`] back through your [`ProbeSource`].
    pub fn ingest_mut(&mut self, shard: usize) -> Option<&mut IngestPipeline> {
        self.shards.get_mut(shard)?.ingest.as_mut()
    }

    /// Adds a contention (combinational-resource) pair, placing it on a
    /// live shard by rendezvous hashing of its label; returns its global
    /// index. With no live shard the pair starts orphaned (and is adopted,
    /// degraded, when a shard revives).
    ///
    /// # Errors
    ///
    /// Propagates daemon-construction errors from the hosting shard.
    pub fn add_contention_pair(
        &mut self,
        label: impl Into<String>,
    ) -> Result<usize, DetectorError> {
        self.add_pair(label.into(), PairKind::Contention)
    }

    /// Adds an oscillation (memory-resource) pair; see
    /// [`ShardedFleet::add_contention_pair`].
    ///
    /// # Errors
    ///
    /// Propagates daemon-construction errors from the hosting shard.
    pub fn add_oscillation_pair(
        &mut self,
        label: impl Into<String>,
    ) -> Result<usize, DetectorError> {
        self.add_pair(label.into(), PairKind::Oscillation)
    }

    fn add_pair(&mut self, label: String, kind: PairKind) -> Result<usize, DetectorError> {
        let key = pair_key(&label);
        let global = self.table.len();
        let live = self.live_shard_ids();
        let home = match rendezvous_shard(key, &live) {
            Some(shard) => {
                let host = &mut self.shards[shard];
                let sup = host.supervisor.as_mut().expect("live shard has supervisor");
                let slot = match kind {
                    PairKind::Contention => sup.add_contention_pair(label.clone())?,
                    PairKind::Oscillation => sup.add_oscillation_pair(label.clone())?,
                };
                debug_assert_eq!(slot, host.slots.len());
                host.slots.push(global);
                PairHome::Assigned { shard, slot }
            }
            None => PairHome::Orphaned,
        };
        self.table.push(PairEntry {
            label,
            kind,
            key,
            home,
        });
        self.refresh_gauges();
        Ok(global)
    }

    /// Runs one fleet tick: probes every assigned pair once (coordinator
    /// retry/backoff), hands inputs to each shard through its bounded
    /// mailbox, fans shard ticks out under the panic + deadline
    /// watchdogs, settles heartbeats, and migrates the pairs of any shard
    /// declared dead. Never panics and never blocks on a wedged shard
    /// beyond the deadline fan-out itself.
    pub fn tick<S: ProbeSource + ?Sized>(&mut self, source: &mut S) -> FleetTickReport {
        let tick = self.tick;
        let started = Instant::now();
        let shard_count = self.shards.len();
        let mut tick_span = self.tracer.span("fleet", "tick");

        // Phase A (serial): probe each assigned pair once, with the
        // coordinator-owned retry/backoff budget, into per-shard bounded
        // mailboxes.
        let mut mailboxes: Vec<Vec<(usize, PairInput)>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        let mut overflow_degraded = 0usize;
        let mut probe_retries = 0u64;
        for (global, entry) in self.table.iter().enumerate() {
            let PairHome::Assigned { shard, slot } = entry.home else {
                continue;
            };
            if self.shards[shard].supervisor.is_none() {
                continue;
            }
            let seed = mix_seed(self.config.base.seed, global as u64, tick);
            let mut attempt: u32 = 0;
            let input = loop {
                let result = source.probe(global, tick, attempt);
                let retryable = match &result {
                    Ok(input) => matches!(
                        input,
                        PairInput::Missed | PairInput::Harvest(Harvest::Missed)
                    ),
                    Err(_) => true,
                };
                if !retryable {
                    break result.expect("non-retryable is Ok");
                }
                match backoff_delay(&self.config.base.backoff, seed, attempt) {
                    // Virtual, as in the flat supervisor: the schedule is
                    // deterministic and recorded, not slept.
                    Some(_delay) => attempt += 1,
                    None => break PairInput::Missed,
                }
            };
            probe_retries += u64::from(attempt);
            let mailbox = &mut mailboxes[shard];
            let input = if self.config.mailbox_capacity > 0
                && mailbox.len() >= self.config.mailbox_capacity
            {
                overflow_degraded += 1;
                degrade_for_overflow(input, self.config.overflow_loss)
            } else {
                input
            };
            mailbox.push((slot, input));
        }
        if probe_retries > 0 {
            self.metrics.probe_retries.inc_by(probe_retries);
        }
        if overflow_degraded > 0 {
            self.metrics
                .mailbox_overflow
                .inc_by(overflow_degraded as u64);
        }

        // Phase B (parallel): one job per live shard, each under
        // catch_unwind; a panicking shard is contained in its own slot.
        struct ShardJob<'a> {
            shard: &'a mut Shard,
            mailbox: Vec<(usize, PairInput)>,
        }
        let mut jobs: Vec<ShardJob<'_>> = Vec::new();
        let mut job_ids: Vec<usize> = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if shard.supervisor.is_some() {
                jobs.push(ShardJob {
                    shard,
                    mailbox: std::mem::take(&mut mailboxes[i]),
                });
                job_ids.push(i);
            }
        }
        let results = threadpool::par_catch_map_mut(&mut jobs, |job| {
            if job.shard.chaos_panic_ticks > 0 {
                job.shard.chaos_panic_ticks -= 1;
                panic!("chaos: injected shard failure");
            }
            // The chaos stall counts as shard work: a stalled shard is a
            // *slow* shard, visible to both the hard deadline watchdog
            // and the latency-SLO suspicion tracker.
            let shard_started = Instant::now();
            let stall = std::mem::take(&mut job.shard.chaos_stall_us);
            if stall > 0 {
                std::thread::sleep(std::time::Duration::from_micros(stall));
            }
            let supervisor = job
                .shard
                .supervisor
                .as_mut()
                .expect("jobs are built from live shards");
            let mut slots: Vec<Option<PairInput>> = vec![None; supervisor.len()];
            for (slot, input) in job.mailbox.drain(..) {
                if let Some(cell) = slots.get_mut(slot) {
                    *cell = Some(input);
                }
            }
            let report = supervisor
                .tick_with_enforcer(&mut MailboxSource { slots }, job.shard.enforcer.as_mut());
            let elapsed_us = shard_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            (report, elapsed_us)
        });
        drop(jobs);

        // Phase C (serial): heartbeat settlement and death declaration.
        let mut shard_reports: Vec<Option<TickReport>> = (0..shard_count).map(|_| None).collect();
        let mut heartbeat_misses = Vec::new();
        let mut deaths = Vec::new();
        let mut suspected = Vec::new();
        let mut cleared = Vec::new();
        let deadline_us = self.config.shard_deadline_us;
        for (i, result) in job_ids.into_iter().zip(results) {
            let shard = &mut self.shards[i];
            // The gray-failure (latency-SLO) verdict for this shard tick:
            // Some(over_budget) to feed the suspicion tracker, None to
            // leave it alone.
            let mut slo_breach = None;
            match result {
                Err(panic) => {
                    shard.panics += 1;
                    shard.misses += 1;
                    heartbeat_misses.push(i);
                    // A panicked tick produced no latency sample, but it is
                    // certainly not *within* the latency budget.
                    slo_breach = Some(true);
                    self.metrics
                        .shard_heartbeat_misses
                        .with_label(&shard_label(i))
                        .inc();
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "fleet",
                            "shard-panic",
                            format_args!("shard {i}: {} (miss {})", panic.message, shard.misses),
                        );
                    }
                }
                Ok((report, elapsed_us)) => {
                    shard.last_tick_us = elapsed_us;
                    self.metrics
                        .shard_tick_latency_us
                        .with_label(&shard_label(i))
                        .observe(elapsed_us as f64);
                    if let (Some(slo), Some(state)) =
                        (&self.config.latency_slo, shard.suspicion.as_mut())
                    {
                        state.window.observe(elapsed_us as f64);
                        slo_breach = Some(state.window.quantile(0.99) > slo.p99_budget_us as f64);
                        if state.window.count() >= slo.window_ticks {
                            state.window.reset();
                        }
                    }
                    if deadline_us > 0 && elapsed_us > deadline_us {
                        shard.tick_deadline_misses += 1;
                        shard.misses += 1;
                        heartbeat_misses.push(i);
                        self.metrics
                            .shard_heartbeat_misses
                            .with_label(&shard_label(i))
                            .inc();
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "fleet",
                                "shard-deadline-miss",
                                format_args!(
                                    "shard {i}: {elapsed_us} µs > {deadline_us} µs budget (miss {})",
                                    shard.misses
                                ),
                            );
                        }
                    } else {
                        shard.misses = 0;
                    }
                    shard_reports[i] = Some(report);
                }
            }
            if let (Some(over), Some(state)) = (slo_breach, shard.suspicion.as_mut()) {
                match state.tracker.observe(over) {
                    Some(SuspicionTransition::Suspected) => {
                        suspected.push(i);
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "fleet",
                                "shard-suspected",
                                format_args!(
                                    "shard {i}: tick p99 breached the latency SLO; draining"
                                ),
                            );
                        }
                    }
                    Some(SuspicionTransition::Cleared) => {
                        cleared.push(i);
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "fleet",
                                "shard-suspicion-cleared",
                                format_args!("shard {i}: back within the latency SLO"),
                            );
                        }
                    }
                    None => {}
                }
            }
            if self.shards[i].misses >= self.config.dead_after {
                deaths.push(i);
            }
        }

        let mut migration = MigrationReport::default();
        for &i in &deaths {
            let report = self.bury_shard(i);
            migration.migrated += report.migrated;
            migration.degraded_imports += report.degraded_imports;
            migration.orphaned += report.orphaned;
        }

        // Phase D (serial): bounded-churn placement repair — drain
        // suspected shards and walk migrated pairs back to their
        // rendezvous homes.
        let (drained, rebalanced) = self.rebalance_pass();

        self.tick = tick + 1;
        let tick_elapsed_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.metrics.ticks.inc();
        self.metrics.tick_latency_us.observe(tick_elapsed_us as f64);
        self.refresh_gauges();
        if self.tracer.is_enabled() {
            tick_span.detail(format_args!(
                "tick {tick}: {} pairs, {} live shards, {} deaths",
                self.table.len(),
                self.live_shard_ids().len(),
                deaths.len()
            ));
        }
        drop(tick_span);

        FleetTickReport {
            tick,
            shard_reports,
            heartbeat_misses,
            deaths,
            migration,
            overflow_degraded,
            suspected,
            cleared,
            drained,
            rebalanced,
        }
    }

    /// One bounded-churn pass of the placement repairer. Each assigned
    /// pair's *preferred* shard is its rendezvous choice over the
    /// **eligible** set (live and unsuspected); a pair hosted elsewhere is
    /// moved there through the checkpoint-restore path
    /// ([`Supervisor::remove_pair`] → [`Supervisor::import_pair`]),
    /// window and containment intact. Two budgets cap the churn:
    ///
    /// * moves *off a suspected shard* (the proactive drain, racing the
    ///   watchdog) spend [`LatencySloConfig::drain_per_tick`];
    /// * all other moves (rebalancing onto a revived or
    ///   suspicion-cleared shard) spend
    ///   [`ShardedFleetConfig::rebalance_per_tick`].
    ///
    /// Returns `(drained, rebalanced)`.
    fn rebalance_pass(&mut self) -> (usize, usize) {
        let mut drain_left = self
            .config
            .latency_slo
            .as_ref()
            .map_or(0, |slo| slo.drain_per_tick);
        let mut rebalance_left = self.config.rebalance_per_tick;
        if drain_left == 0 && rebalance_left == 0 {
            return (0, 0);
        }
        let eligible: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.supervisor.is_some() && !s.is_suspected()).then_some(i))
            .collect();
        if eligible.is_empty() {
            // Every live shard is suspected: moving pairs between equally
            // sick shards is pure churn.
            return (0, 0);
        }
        let mut drained = 0usize;
        let mut rebalanced = 0usize;
        for global in 0..self.table.len() {
            if drain_left == 0 && rebalance_left == 0 {
                break;
            }
            let PairHome::Assigned { shard: current, .. } = self.table[global].home else {
                continue;
            };
            let Some(preferred) = rendezvous_shard(self.table[global].key, &eligible) else {
                continue;
            };
            if preferred == current {
                continue;
            }
            let from_suspected = self.shards[current].is_suspected();
            let budget = if from_suspected {
                &mut drain_left
            } else {
                &mut rebalance_left
            };
            if *budget == 0 {
                continue;
            }
            match self.move_pair(global, preferred) {
                Ok(degraded) => {
                    if from_suspected {
                        drained += 1;
                        drain_left -= 1;
                        self.metrics.drained_pairs.inc();
                    } else {
                        rebalanced += 1;
                        rebalance_left -= 1;
                        self.metrics.rebalanced_pairs.inc();
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "fleet",
                            if from_suspected {
                                "pair-drained"
                            } else {
                                "pair-rebalanced"
                            },
                            format_args!(
                                "{}: shard {current} -> {preferred}{}",
                                self.table[global].label,
                                if degraded { " (degraded)" } else { "" }
                            ),
                        );
                    }
                }
                Err(e) => {
                    // A pair that cannot be exported stays where it is —
                    // it is still monitored, just not where we'd like.
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "fleet",
                            "pair-move-failed",
                            format_args!("{}: {e}", self.table[global].label),
                        );
                    }
                }
            }
        }
        (drained, rebalanced)
    }

    /// Moves one assigned pair to the live shard `target` through the
    /// checkpoint-restore path, preserving its window, verdict, and
    /// containment. Fixes up both shards' slot maps (the source
    /// supervisor's removal is a `swap_remove`, so its last pair takes the
    /// vacated slot). Returns whether the import fell back to degraded.
    fn move_pair(&mut self, global: usize, target: usize) -> Result<bool, DetectorError> {
        let PairHome::Assigned {
            shard: source,
            slot,
        } = self.table[global].home
        else {
            return Err(DetectorError::InvalidConfig {
                reason: format!("pair {global} is not assigned to a shard"),
            });
        };
        let label = self.table[global].label.clone();
        let kind = self.table[global].kind;
        let snapshot = self.shards[source]
            .supervisor
            .as_mut()
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("pair {global}'s hosting shard {source} is dead"),
            })?
            .remove_pair(slot)?;
        let source_slots = &mut self.shards[source].slots;
        let removed = source_slots.swap_remove(slot);
        debug_assert_eq!(removed, global);
        if let Some(&moved_global) = source_slots.get(slot) {
            self.table[moved_global].home = PairHome::Assigned {
                shard: source,
                slot,
            };
        }
        let host = &mut self.shards[target];
        let sup = host
            .supervisor
            .as_mut()
            .expect("placement repair only targets live shards");
        let (new_slot, degraded) = import_with_fallback(sup, Some(snapshot), &label, kind);
        debug_assert_eq!(new_slot, host.slots.len());
        host.slots.push(global);
        self.table[global].home = PairHome::Assigned {
            shard: target,
            slot: new_slot,
        };
        Ok(degraded)
    }

    /// Declares `shard` dead immediately (as if its heartbeat budget had
    /// run out) and migrates its pairs: the chaos-drill entry point for
    /// the same path the watchdog takes. Crash semantics — no parting
    /// checkpoint is written; recovery works from whatever the shard's
    /// store already holds. A no-op report for an already-dead shard.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index.
    pub fn kill_shard(&mut self, shard: usize) -> Result<MigrationReport, DetectorError> {
        if shard >= self.shards.len() {
            return Err(DetectorError::InvalidConfig {
                reason: format!("no shard {shard}"),
            });
        }
        let report = self.bury_shard(shard);
        self.refresh_gauges();
        Ok(report)
    }

    /// Injects a panic into `shard`'s next `ticks` shard ticks (heartbeat
    /// misses; enough of them kill the shard through the watchdog path).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index.
    pub fn panic_shard(&mut self, shard: usize, ticks: u32) -> Result<(), DetectorError> {
        let slot = self
            .shards
            .get_mut(shard)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("no shard {shard}"),
            })?;
        slot.chaos_panic_ticks = ticks;
        Ok(())
    }

    /// Stalls `shard`'s next shard tick by `us` wall-clock microseconds
    /// (to trip the shard deadline watchdog).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index.
    pub fn stall_shard(&mut self, shard: usize, us: u64) -> Result<(), DetectorError> {
        let slot = self
            .shards
            .get_mut(shard)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("no shard {shard}"),
            })?;
        slot.chaos_stall_us = us;
        Ok(())
    }

    /// Buries a dead shard: drops its supervisor (releasing the store's
    /// exclusive claim — no parting checkpoint), recovers what its store
    /// holds, and re-homes every one of its pairs onto survivors (or
    /// orphans them when none remain). The global table is authoritative:
    /// pairs added after the shard's last checkpoint have no snapshot and
    /// are re-created degraded — counted, never lost.
    fn bury_shard(&mut self, victim: usize) -> MigrationReport {
        let mut report = MigrationReport::default();
        {
            let shard = &mut self.shards[victim];
            if shard.supervisor.is_none() {
                return report;
            }
            shard.supervisor = None;
            shard.ingest = None;
            shard.slots.clear();
            shard.misses = 0;
            shard.deaths += 1;
            // Death supersedes suspicion; the next life starts healthy.
            if let Some(state) = shard.suspicion.as_mut() {
                state.tracker.reset();
                state.window.reset();
            }
        }
        self.metrics.shard_deaths.inc();
        if self.tracer.is_enabled() {
            self.tracer.event(
                "fleet",
                "shard-dead",
                format_args!("shard {victim}: declared dead, migrating pairs"),
            );
        }

        // Read back whatever the dead shard's store still holds, under a
        // temporary exclusive claim (the dead supervisor just released
        // its own). Any failure here degrades the migration, never
        // aborts it.
        let recover_cfg = self.shard_supervisor_config(victim);
        let recovered: Vec<PairSnapshot> = match &self.store_root {
            Some(root) => {
                let dir = shard_dir(root, victim);
                let owner = format!("migrator:shard-{victim:02}");
                let opened = match &self.medium {
                    Some(medium) => CheckpointStore::open_exclusive_with_medium(
                        dir,
                        self.config.keep_generations,
                        owner,
                        Arc::clone(medium),
                    ),
                    None => {
                        CheckpointStore::open_exclusive(dir, self.config.keep_generations, owner)
                    }
                };
                match opened {
                    Ok(store) => match Supervisor::recover_pairs(&recover_cfg, &store) {
                        Ok(fleet) => fleet.pairs,
                        Err(_) => Vec::new(),
                    },
                    Err(_) => Vec::new(),
                }
            }
            None => Vec::new(),
        };

        let victims: Vec<(usize, usize)> = self
            .table
            .iter()
            .enumerate()
            .filter_map(|(global, entry)| match entry.home {
                PairHome::Assigned { shard, slot } if shard == victim => Some((global, slot)),
                _ => None,
            })
            .collect();
        let live = self.live_shard_ids();
        for (global, slot) in victims {
            let label = self.table[global].label.clone();
            let kind = self.table[global].kind;
            // A stale store could hold some other pair's state under this
            // slot index; the authoritative identity check guards against
            // migrating the wrong window.
            let snapshot = recovered
                .get(slot)
                .filter(|s| s.label() == label && s.kind() == kind)
                .cloned();
            match rendezvous_shard(self.table[global].key, &live) {
                None => {
                    self.table[global].home = PairHome::Orphaned;
                    report.orphaned += 1;
                }
                Some(target) => {
                    let host = &mut self.shards[target];
                    let sup = host
                        .supervisor
                        .as_mut()
                        .expect("live_shard_ids only lists live shards");
                    let (new_slot, degraded) = import_with_fallback(sup, snapshot, &label, kind);
                    debug_assert_eq!(new_slot, host.slots.len());
                    host.slots.push(global);
                    self.table[global].home = PairHome::Assigned {
                        shard: target,
                        slot: new_slot,
                    };
                    report.migrated += 1;
                    if degraded {
                        report.degraded_imports += 1;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "fleet",
                            "pair-migrated",
                            format_args!(
                                "{label}: shard {victim} -> {target}{}",
                                if degraded { " (degraded)" } else { "" }
                            ),
                        );
                    }
                }
            }
        }
        self.metrics.migrated_pairs.inc_by(report.migrated as u64);
        self.metrics
            .degraded_imports
            .inc_by(report.degraded_imports as u64);
        report
    }

    /// Revives a dead shard with a fresh supervisor (wiping its store
    /// directory first — its recoverable state already migrated away, and
    /// stale windows under recycled slot indices must not leak into the
    /// next life). Previously migrated pairs stay on their adoptive
    /// shards; orphaned pairs are adopted now, degraded, by rendezvous
    /// over the new live set.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range or
    /// still-live shard, and propagates store/supervisor construction
    /// errors (in which case the shard stays dead).
    pub fn revive_shard(&mut self, shard: usize) -> Result<MigrationReport, DetectorError> {
        if shard >= self.shards.len() {
            return Err(DetectorError::InvalidConfig {
                reason: format!("no shard {shard}"),
            });
        }
        if self.shards[shard].supervisor.is_some() {
            return Err(DetectorError::InvalidConfig {
                reason: format!("shard {shard} is still live"),
            });
        }
        if let Some(root) = &self.store_root {
            let _ = std::fs::remove_dir_all(shard_dir(root, shard));
        }
        let rebuilt = Self::build_shard(
            &self.config,
            self.store_root.as_deref(),
            self.medium.as_ref(),
            shard,
        )?;
        {
            let slot = &mut self.shards[shard];
            slot.supervisor = rebuilt.supervisor;
            slot.registry = rebuilt.registry;
            slot.ingest = rebuilt.ingest;
            slot.slots = Vec::new();
            slot.suspicion = rebuilt.suspicion;
            slot.misses = 0;
            // The enforcer is the failure domain's actuation backend; it
            // survives the supervisor's death and revival.
        }
        if self.tracer.is_enabled() {
            self.tracer
                .event("fleet", "shard-revived", format_args!("shard {shard}"));
        }

        // Adopt orphans: there is a live shard again, so nothing may stay
        // unmonitored. Orphans have no recoverable state by definition —
        // they import degraded.
        let mut report = MigrationReport::default();
        let live = self.live_shard_ids();
        for global in 0..self.table.len() {
            if !matches!(self.table[global].home, PairHome::Orphaned) {
                continue;
            }
            let Some(target) = rendezvous_shard(self.table[global].key, &live) else {
                continue;
            };
            let label = self.table[global].label.clone();
            let kind = self.table[global].kind;
            let host = &mut self.shards[target];
            let sup = host
                .supervisor
                .as_mut()
                .expect("live_shard_ids only lists live shards");
            let (new_slot, _) = import_with_fallback(sup, None, &label, kind);
            debug_assert_eq!(new_slot, host.slots.len());
            host.slots.push(global);
            self.table[global].home = PairHome::Assigned {
                shard: target,
                slot: new_slot,
            };
            report.migrated += 1;
            report.degraded_imports += 1;
        }
        self.metrics.migrated_pairs.inc_by(report.migrated as u64);
        self.metrics
            .degraded_imports
            .inc_by(report.degraded_imports as u64);
        self.refresh_gauges();
        Ok(report)
    }

    /// Manually checkpoints every live shard; returns `(shard,
    /// generation)` pairs. (Shards also auto-checkpoint through
    /// [`SupervisorConfig::checkpoint_every`].)
    ///
    /// # Errors
    ///
    /// Fails fast on the first shard whose checkpoint fails.
    pub fn checkpoint(&self) -> Result<Vec<(usize, u64)>, DetectorError> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(sup) = &shard.supervisor {
                if sup.store().is_some() {
                    out.push((i, sup.checkpoint()?));
                }
            }
        }
        Ok(out)
    }

    /// One pair's containment standing, routed through the global table
    /// (None for an out-of-range index;
    /// [`ContainmentState::Inactive`] for orphans).
    pub fn containment(&self, pair: usize) -> Option<ContainmentState> {
        match self.table.get(pair)?.home {
            PairHome::Assigned { shard, slot } => self
                .shards
                .get(shard)
                .and_then(|s| s.supervisor.as_ref())
                .and_then(|sup| sup.containment(slot)),
            PairHome::Orphaned => Some(ContainmentState::Inactive),
        }
    }

    /// Per-shard standing, indexed by shard.
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardStatus {
                index,
                health: if shard.supervisor.is_some() {
                    ShardHealth::Live
                } else {
                    ShardHealth::Dead
                },
                pairs: shard.slots.len(),
                heartbeat_misses: shard.misses,
                suspected: shard.is_suspected(),
                deaths: shard.deaths,
                panics: shard.panics,
                tick_deadline_misses: shard.tick_deadline_misses,
                last_tick_us: shard.last_tick_us,
            })
            .collect()
    }

    /// Every pair's fleet-wide standing, in global pair order — the
    /// zero-lost-pairs ledger: each pair is monitored, degraded, or
    /// orphaned-Inconclusive, never missing and never silently Clean
    /// after its shard died without state.
    pub fn pair_statuses(&self) -> Vec<FleetPairStatus> {
        let per_shard: Vec<Option<Vec<PairStatus>>> = self
            .shards
            .iter()
            .map(|s| s.supervisor.as_ref().map(|sup| sup.pair_statuses()))
            .collect();
        self.table
            .iter()
            .enumerate()
            .map(|(global, entry)| {
                let hosted = match entry.home {
                    PairHome::Assigned { shard, slot } => per_shard
                        .get(shard)
                        .and_then(|statuses| statuses.as_ref())
                        .and_then(|statuses| statuses.get(slot))
                        .map(|status| (shard, status)),
                    PairHome::Orphaned => None,
                };
                match hosted {
                    Some((shard, status)) => FleetPairStatus {
                        pair: global,
                        label: entry.label.clone(),
                        kind: entry.kind,
                        shard: Some(shard),
                        verdict: status.verdict,
                        degraded: status.degraded,
                        containment: status.containment,
                        health: Some(status.health),
                        restored_from: status.restored_from,
                    },
                    None => FleetPairStatus {
                        pair: global,
                        label: entry.label.clone(),
                        kind: entry.kind,
                        shard: None,
                        verdict: Verdict::Inconclusive,
                        degraded: true,
                        containment: ContainmentState::Inactive,
                        health: None,
                        restored_from: None,
                    },
                }
            })
            .collect()
    }

    /// Indices of shards the latency-SLO watchdog currently suspects.
    pub fn suspected_shard_ids(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_suspected().then_some(i))
            .collect()
    }

    /// The migration-accounting reconciliation check: asserts that the
    /// global pair table, the per-shard slot maps, the shard supervisors,
    /// and the exported `cchunter_shard_pairs` / orphan gauges all agree
    /// on where every pair is — no pair double-counted, none vanished —
    /// whatever sequence of kills, migrations, revivals, drains, and
    /// rebalances came before.
    ///
    /// Cheap enough to run after every chaos-drill step; CI's soaks call
    /// it at each epoch.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] naming the first
    /// inconsistency found.
    pub fn verify_accounting(&self) -> Result<(), DetectorError> {
        let broken = |reason: String| DetectorError::InvalidConfig { reason };
        // 1. Table -> shard direction: every assigned pair's slot must
        //    exist on a live shard and map back to the same global index.
        let mut assigned = 0usize;
        let mut orphaned = 0usize;
        for (global, entry) in self.table.iter().enumerate() {
            match entry.home {
                PairHome::Orphaned => orphaned += 1,
                PairHome::Assigned { shard, slot } => {
                    assigned += 1;
                    let host = self.shards.get(shard).ok_or_else(|| {
                        broken(format!("pair {global} assigned to missing shard {shard}"))
                    })?;
                    if host.supervisor.is_none() {
                        return Err(broken(format!(
                            "pair {global} assigned to dead shard {shard}"
                        )));
                    }
                    match host.slots.get(slot) {
                        Some(&back) if back == global => {}
                        Some(&back) => {
                            return Err(broken(format!(
                                "pair {global} claims shard {shard} slot {slot}, which hosts \
                                 pair {back}"
                            )));
                        }
                        None => {
                            return Err(broken(format!(
                                "pair {global} claims shard {shard} slot {slot}, beyond its \
                                 {} slots",
                                host.slots.len()
                            )));
                        }
                    }
                }
            }
        }
        // 2. Shard -> table direction: every hosted slot must belong to a
        //    pair that claims it, and the supervisor must host exactly the
        //    slot map's pairs.
        let mut hosted = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            match &shard.supervisor {
                None => {
                    if !shard.slots.is_empty() {
                        return Err(broken(format!(
                            "dead shard {i} still lists {} slots",
                            shard.slots.len()
                        )));
                    }
                }
                Some(sup) => {
                    if sup.len() != shard.slots.len() {
                        return Err(broken(format!(
                            "shard {i} supervisor hosts {} pairs but the slot map lists {}",
                            sup.len(),
                            shard.slots.len()
                        )));
                    }
                    hosted += shard.slots.len();
                    for (slot, &global) in shard.slots.iter().enumerate() {
                        let entry = self.table.get(global).ok_or_else(|| {
                            broken(format!("shard {i} slot {slot} hosts unknown pair {global}"))
                        })?;
                        if entry.home != (PairHome::Assigned { shard: i, slot }) {
                            return Err(broken(format!(
                                "shard {i} slot {slot} hosts pair {global}, whose table entry \
                                 says {:?}",
                                entry.home
                            )));
                        }
                    }
                }
            }
        }
        // 3. Totals: assigned + orphaned = table, and the exported
        //    per-shard gauge family sums to the same fleet total.
        if assigned != hosted || assigned + orphaned != self.table.len() {
            return Err(broken(format!(
                "pair totals disagree: {assigned} assigned + {orphaned} orphaned vs {} in the \
                 table, {hosted} hosted",
                self.table.len()
            )));
        }
        self.refresh_gauges();
        let gauge_pairs: f64 = (0..self.shards.len())
            .map(|i| self.metrics.shard_pairs.with_label(&shard_label(i)).get())
            .sum();
        let gauge_orphans = self.metrics.orphaned_pairs.get();
        if gauge_pairs + gauge_orphans != self.table.len() as f64 {
            return Err(broken(format!(
                "metric families disagree: sum(cchunter_shard_pairs) {gauge_pairs} + orphans \
                 {gauge_orphans} vs {} pairs",
                self.table.len()
            )));
        }
        Ok(())
    }

    /// The whole fleet's standing: per-shard table, per-pair ledger, and
    /// the rolled-up digest.
    pub fn fleet_status(&self) -> ShardedFleetStatus {
        ShardedFleetStatus {
            tick: self.tick,
            shards: self.shard_statuses(),
            pairs: self.pair_statuses(),
            metrics: self.metrics_snapshot(),
        }
    }

    /// The hierarchical rollup: every live shard's digest summed into one
    /// [`MetricsSnapshot`]. `ticks` is the coordinator tick, `pairs` the
    /// global table size (orphans included), `tick_latency` the
    /// whole-fleet tick distribution, and `audit_latency` the merge of
    /// every live shard's per-pair distribution. A dead shard's monotonic
    /// totals leave the sum until it revives — the coordinator's own
    /// counters (deaths, migrations, orphans) never reset.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let audit_latency = Histogram::latency_us();
        let mut quarantined_pairs = 0usize;
        let mut covert_pairs = 0usize;
        let mut contained_pairs = 0usize;
        let mut analyzed = 0u64;
        let mut degraded = 0u64;
        let mut failures = 0u64;
        let mut panics = 0u64;
        let mut deadline_misses = 0u64;
        let mut retries = 0u64;
        let mut quarantine_skips = 0u64;
        let mut verdict_flips = 0u64;
        let mut breaker_transitions = 0u64;
        let mut recoveries = 0u64;
        let mut mitigations_applied = 0u64;
        let mut mitigation_failures = 0u64;
        let mut mitigation_escalations = 0u64;
        let mut mitigation_stepdowns = 0u64;
        let mut checkpoints = 0u64;
        let mut checkpoint_errors = 0u64;
        let mut restore_rollbacks = 0u64;
        let mut durability_degraded = false;
        let mut shadow_checkpoints = 0u64;
        let mut durability_heals = 0u64;
        let mut confidence_sum = 0.0f64;
        let mut ingest = IngestSnapshot::default();
        for shard in &self.shards {
            let Some(sup) = &shard.supervisor else {
                continue;
            };
            let snap = sup.metrics_snapshot();
            quarantined_pairs += snap.quarantined_pairs;
            covert_pairs += snap.covert_pairs;
            contained_pairs += snap.contained_pairs;
            analyzed += snap.analyzed;
            degraded += snap.degraded;
            failures += snap.failures;
            panics += snap.panics;
            deadline_misses += snap.deadline_misses;
            retries += snap.retries;
            quarantine_skips += snap.quarantine_skips;
            verdict_flips += snap.verdict_flips;
            breaker_transitions += snap.breaker_transitions;
            recoveries += snap.recoveries;
            mitigations_applied += snap.mitigations_applied;
            mitigation_failures += snap.mitigation_failures;
            mitigation_escalations += snap.mitigation_escalations;
            mitigation_stepdowns += snap.mitigation_stepdowns;
            checkpoints += snap.checkpoints;
            checkpoint_errors += snap.checkpoint_errors;
            restore_rollbacks += snap.restore_rollbacks;
            durability_degraded |= snap.durability_degraded;
            shadow_checkpoints += snap.shadow_checkpoints;
            durability_heals += snap.durability_heals;
            confidence_sum += snap.mean_confidence * snap.pairs as f64;
            let (shard_audit, _shard_tick) = sup.totals_latency();
            audit_latency.merge_from(shard_audit);
            ingest.events_offered += snap.ingest.events_offered;
            ingest.events_shed += snap.ingest.events_shed;
            ingest.events_repaired += snap.ingest.events_repaired;
            ingest.events_dropped += snap.ingest.events_dropped;
            ingest.saturated_quanta += snap.ingest.saturated_quanta;
            ingest.quanta += snap.ingest.quanta;
            ingest.partial_harvests += snap.ingest.partial_harvests;
            ingest.missed_harvests += snap.ingest.missed_harvests;
        }
        retries += self.metrics.probe_retries.get();
        MetricsSnapshot {
            ticks: self.tick,
            pairs: self.table.len(),
            quarantined_pairs,
            covert_pairs,
            contained_pairs,
            analyzed,
            degraded,
            failures,
            panics,
            deadline_misses,
            retries,
            quarantine_skips,
            verdict_flips,
            breaker_transitions,
            recoveries,
            mitigations_applied,
            mitigation_failures,
            mitigation_escalations,
            mitigation_stepdowns,
            checkpoints,
            checkpoint_errors,
            restore_rollbacks,
            durability_degraded,
            shadow_checkpoints,
            durability_heals,
            mean_confidence: if self.table.is_empty() {
                0.0
            } else {
                confidence_sum / self.table.len() as f64
            },
            ingest,
            audit_latency: LatencySummary::from_histogram(&audit_latency),
            tick_latency: LatencySummary::from_histogram(&self.metrics.tick_latency_us),
        }
    }

    /// Renders the coordinator registry plus every shard registry as one
    /// Prometheus exposition, each shard's series labeled `shard="N"`.
    pub fn render_prometheus(&self) -> String {
        let labels: Vec<String> = (0..self.shards.len()).map(shard_label).collect();
        let mut parts: Vec<(Option<(&str, &str)>, &Registry)> = vec![(None, &self.registry)];
        for (i, shard) in self.shards.iter().enumerate() {
            parts.push((Some(("shard", labels[i].as_str())), &shard.registry));
        }
        render_prometheus_merged(&parts)
    }

    /// Pushes the cheap derived gauges (live shards, per-shard pair
    /// counts, orphan and degraded totals).
    fn refresh_gauges(&self) {
        let mut live = 0usize;
        let mut degraded = 0usize;
        let mut suspected = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let is_live = shard.supervisor.is_some();
            if is_live {
                live += 1;
            }
            if let Some(sup) = &shard.supervisor {
                degraded += sup.degraded_pairs();
            }
            let is_suspected = shard.is_suspected();
            if is_suspected {
                suspected += 1;
            }
            self.metrics
                .shard_live
                .with_label(&shard_label(i))
                .set(if is_live { 1.0 } else { 0.0 });
            self.metrics
                .shard_suspected
                .with_label(&shard_label(i))
                .set(if is_suspected { 1.0 } else { 0.0 });
            self.metrics
                .shard_pairs
                .with_label(&shard_label(i))
                .set(shard.slots.len() as f64);
        }
        self.metrics.suspected_shards.set(suspected as f64);
        let orphans = self
            .table
            .iter()
            .filter(|e| matches!(e.home, PairHome::Orphaned))
            .count();
        self.metrics.live_shards.set(live as f64);
        self.metrics.orphaned_pairs.set(orphans as f64);
        self.metrics.degraded_pairs.set((degraded + orphans) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{DensityHistogram, HISTOGRAM_BINS};
    use crate::policy::BackoffConfig;

    fn covert_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[19] = 20;
        bins[20] = 25;
        bins[21] = 20;
        DensityHistogram::from_bins(bins, 1_000).unwrap()
    }

    fn quiet_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[1] = 40;
        bins[2] = 12;
        DensityHistogram::from_bins(bins, 1_000).unwrap()
    }

    fn test_config(shards: usize) -> ShardedFleetConfig {
        ShardedFleetConfig {
            shards,
            base: SupervisorConfig {
                window_quanta: 8,
                backoff: BackoffConfig {
                    max_retries: 2,
                    ..BackoffConfig::default()
                },
                ..SupervisorConfig::default()
            },
            ..ShardedFleetConfig::default()
        }
    }

    fn covert_source(pair: usize, _tick: u64, _attempt: u32) -> Result<PairInput, ProbeFault> {
        let _ = pair;
        Ok(PairInput::Harvest(Harvest::Complete(covert_histogram())))
    }

    #[test]
    fn rendezvous_is_stable_and_minimal() {
        let shards: Vec<usize> = (0..8).collect();
        for pair in 0..256 {
            let key = pair_key(&format!("pair {pair}"));
            let full = rendezvous_shard(key, &shards).unwrap();
            assert_eq!(rendezvous_shard(key, &shards).unwrap(), full);
            // Removing any shard other than the chosen one never moves
            // this pair.
            for &removed in &shards {
                if removed == full {
                    continue;
                }
                let remaining: Vec<usize> =
                    shards.iter().copied().filter(|&s| s != removed).collect();
                assert_eq!(rendezvous_shard(key, &remaining).unwrap(), full);
            }
        }
    }

    #[test]
    fn pairs_spread_across_shards() {
        let mut fleet = ShardedFleet::new(test_config(4)).unwrap();
        for pair in 0..64 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        let statuses = fleet.shard_statuses();
        assert!(
            statuses.iter().filter(|s| s.pairs > 0).count() >= 3,
            "64 pairs should land on at least 3 of 4 shards: {statuses:?}"
        );
        assert_eq!(statuses.iter().map(|s| s.pairs).sum::<usize>(), 64);
    }

    #[test]
    fn single_shard_matches_flat_supervisor_verdicts() {
        let mut fleet = ShardedFleet::new(test_config(1)).unwrap();
        let mut flat = Supervisor::new(SupervisorConfig {
            window_quanta: 8,
            ..SupervisorConfig::default()
        })
        .unwrap();
        for pair in 0..4 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
            flat.add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        for _ in 0..16 {
            fleet.tick(&mut covert_source);
            flat.tick(&mut covert_source);
        }
        let sharded: Vec<Verdict> = fleet.pair_statuses().iter().map(|p| p.verdict).collect();
        let flat: Vec<Verdict> = flat.pair_statuses().iter().map(|p| p.verdict).collect();
        assert_eq!(sharded, flat);
    }

    #[test]
    fn mailbox_overflow_degrades_instead_of_dropping() {
        let mut config = test_config(1);
        config.mailbox_capacity = 2;
        config.overflow_loss = 0.3;
        let mut fleet = ShardedFleet::new(config).unwrap();
        for pair in 0..5 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        let report = fleet.tick(&mut |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<PairInput, ProbeFault>(PairInput::Harvest(Harvest::Complete(quiet_histogram())))
        });
        assert_eq!(report.overflow_degraded, 3);
        // Every pair still got its input analyzed (degraded, not dropped).
        let shard_report = report.shard_reports[0].as_ref().unwrap();
        assert_eq!(shard_report.reports.len(), 5);
    }

    #[test]
    fn storeless_kill_degrades_and_never_acquits() {
        let mut fleet = ShardedFleet::new(test_config(2)).unwrap();
        for pair in 0..8 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        let mut quiet = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<PairInput, ProbeFault>(PairInput::Harvest(Harvest::Complete(quiet_histogram())))
        };
        for _ in 0..12 {
            fleet.tick(&mut quiet);
        }
        let victim = fleet.shard_of(0).unwrap();
        let report = fleet.kill_shard(victim).unwrap();
        assert!(report.migrated > 0);
        // Storeless: every migrated pair must be degraded.
        assert_eq!(report.degraded_imports, report.migrated);
        for _ in 0..12 {
            fleet.tick(&mut quiet);
        }
        for status in fleet.pair_statuses() {
            if status.degraded {
                assert_ne!(
                    status.verdict,
                    Verdict::Clean,
                    "degraded pair {} must not acquit",
                    status.label
                );
            }
        }
        assert_eq!(fleet.pair_statuses().len(), 8, "no pair may be lost");
    }

    #[test]
    fn killing_every_shard_orphans_pairs_and_revival_adopts_them() {
        let mut fleet = ShardedFleet::new(test_config(2)).unwrap();
        for pair in 0..6 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        fleet.kill_shard(0).unwrap();
        let report = fleet.kill_shard(1).unwrap();
        assert!(report.orphaned > 0);
        let statuses = fleet.pair_statuses();
        assert_eq!(statuses.len(), 6);
        for status in &statuses {
            assert_eq!(status.shard, None);
            assert_eq!(status.verdict, Verdict::Inconclusive);
            assert!(status.degraded);
        }
        let adopted = fleet.revive_shard(0).unwrap();
        assert_eq!(adopted.migrated, 6);
        for status in fleet.pair_statuses() {
            assert_eq!(status.shard, Some(0));
            assert!(status.degraded);
        }
    }

    #[test]
    fn heartbeat_watchdog_declares_death_after_consecutive_panics() {
        let mut config = test_config(2);
        config.dead_after = 2;
        let mut fleet = ShardedFleet::new(config).unwrap();
        for pair in 0..8 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        let victim = fleet.shard_of(0).unwrap();
        fleet.panic_shard(victim, 2).unwrap();
        let first = fleet.tick(&mut covert_source);
        assert_eq!(first.heartbeat_misses, vec![victim]);
        assert!(first.deaths.is_empty());
        let second = fleet.tick(&mut covert_source);
        assert_eq!(second.deaths, vec![victim]);
        assert!(second.migration.migrated > 0);
        assert_eq!(fleet.shard_health(victim), Some(ShardHealth::Dead));
        // The survivor carries everything.
        assert_eq!(fleet.pair_statuses().len(), 8);
        assert!(fleet
            .pair_statuses()
            .iter()
            .all(|p| p.shard.is_some() && p.shard != Some(victim)));
    }

    /// A slow-but-alive shard breaches the latency SLO, gets suspected
    /// (not killed), and is drained proactively; once its latency
    /// recovers, suspicion clears and the bounded rebalance pass walks
    /// the pairs back to their rendezvous home. No watchdog death, no
    /// orphan, and the books balance at every step.
    #[test]
    fn suspicion_drains_slow_shard_and_rebalances_on_recovery() {
        let mut config = test_config(2);
        config.latency_slo = Some(LatencySloConfig {
            p99_budget_us: 25_000,
            window_ticks: 4,
            suspicion: SuspicionConfig {
                breach_ticks: 2,
                clear_ticks: 2,
            },
            drain_per_tick: 8,
        });
        let mut fleet = ShardedFleet::new(config).unwrap();
        for pair in 0..8 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        let mut quiet = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<PairInput, ProbeFault>(PairInput::Harvest(Harvest::Complete(quiet_histogram())))
        };
        for _ in 0..4 {
            fleet.tick(&mut quiet);
        }
        fleet.verify_accounting().unwrap();
        let victim = fleet.shard_of(0).unwrap();
        let homes: Vec<usize> = (0..8).map(|p| fleet.shard_of(p).unwrap()).collect();
        assert!(homes.contains(&victim));

        // Gray failure: the shard answers every tick, but slowly. The
        // stall is one-shot, so re-arm it before every tick.
        let mut drained_total = 0usize;
        let mut suspect_seen = false;
        for _ in 0..10 {
            fleet.stall_shard(victim, 100_000).unwrap();
            let report = fleet.tick(&mut quiet);
            drained_total += report.drained;
            if report.suspected.contains(&victim) {
                suspect_seen = true;
                break;
            }
        }
        assert!(suspect_seen, "sustained SLO breach must raise suspicion");
        assert_eq!(
            fleet.shard_health(victim),
            Some(ShardHealth::Live),
            "suspicion is not death: the shard stays live"
        );
        assert_eq!(fleet.suspected_shard_ids(), vec![victim]);
        assert!(fleet.shard_statuses()[victim].suspected);
        assert!(drained_total > 0, "drain must begin on the suspect tick");
        // Keep draining (and keep the shard slow) until it is empty.
        for _ in 0..4 {
            if fleet.shard_statuses()[victim].pairs == 0 {
                break;
            }
            fleet.stall_shard(victim, 100_000).unwrap();
            let report = fleet.tick(&mut quiet);
            drained_total += report.drained;
        }
        assert_eq!(
            fleet.shard_statuses()[victim].pairs,
            0,
            "a suspected shard must be fully drained"
        );
        assert_eq!(
            drained_total,
            homes.iter().filter(|&&h| h == victim).count()
        );
        fleet.verify_accounting().unwrap();
        // Nothing was orphaned or lost on the way out.
        assert!(fleet
            .pair_statuses()
            .iter()
            .all(|status| status.shard.is_some()));

        // Recovery: the stall is gone, latency falls back under budget,
        // and suspicion clears after a sustained quiet streak.
        let mut cleared_seen = false;
        for _ in 0..60 {
            let report = fleet.tick(&mut quiet);
            if report.cleared.contains(&victim) {
                cleared_seen = true;
                break;
            }
        }
        assert!(cleared_seen, "recovered latency must clear the suspicion");
        assert!(fleet.suspected_shard_ids().is_empty());

        // The rebalance pass now walks the drained pairs back to their
        // rendezvous home, bounded per tick.
        let mut rebalanced_total = 0usize;
        for _ in 0..8 {
            let report = fleet.tick(&mut quiet);
            assert!(report.rebalanced <= fleet.config.rebalance_per_tick);
            rebalanced_total += report.rebalanced;
        }
        assert!(
            rebalanced_total > 0,
            "pairs must return to the revived home"
        );
        for (pair, &home) in homes.iter().enumerate() {
            assert_eq!(
                fleet.shard_of(pair),
                Some(home),
                "pair {pair} must be back at its rendezvous home"
            );
        }
        fleet.verify_accounting().unwrap();
    }

    /// Killing and reviving a shard ends with every pair back at its
    /// rendezvous home: the rebalance pass moves at most
    /// `rebalance_per_tick` pairs per tick onto the revived shard, the
    /// accounting reconciliation holds at every step, and no verdict
    /// flips to Clean across the moves.
    #[test]
    fn revive_rebalances_home_pairs_with_bounded_churn() {
        let root = std::env::temp_dir().join(format!(
            "cchunter-shard-rebalance-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut config = test_config(3);
        config.rebalance_per_tick = 2;
        let mut fleet = ShardedFleet::with_store_root(config, &root).unwrap();
        for pair in 0..12 {
            fleet
                .add_contention_pair(format!("memory-bus: pair {pair}"))
                .unwrap();
        }
        for _ in 0..6 {
            fleet.tick(&mut covert_source);
        }
        fleet.verify_accounting().unwrap();
        fleet.checkpoint().unwrap();
        let homes: Vec<usize> = (0..12).map(|p| fleet.shard_of(p).unwrap()).collect();
        let victim = homes[0];
        let home_count = homes.iter().filter(|&&h| h == victim).count();

        fleet.kill_shard(victim).unwrap();
        fleet.verify_accounting().unwrap();
        fleet.tick(&mut covert_source);
        fleet.verify_accounting().unwrap();

        let adopted = fleet.revive_shard(victim).unwrap();
        assert_eq!(adopted.orphaned, 0);
        fleet.verify_accounting().unwrap();

        // The revived shard starts empty; each tick moves at most
        // `rebalance_per_tick` of its home pairs back.
        let mut rebalanced_total = 0usize;
        let mut ticks_needed = 0usize;
        for _ in 0..12 {
            let report = fleet.tick(&mut covert_source);
            assert!(
                report.rebalanced <= 2,
                "churn must respect the per-tick budget: {report:?}"
            );
            rebalanced_total += report.rebalanced;
            ticks_needed += 1;
            fleet.verify_accounting().unwrap();
            if rebalanced_total >= home_count {
                break;
            }
        }
        assert_eq!(
            rebalanced_total, home_count,
            "every home pair must be rebalanced onto the revived shard"
        );
        assert!(
            ticks_needed >= home_count.div_ceil(2),
            "the budget must actually bound the churn"
        );
        for (pair, &home) in homes.iter().enumerate() {
            assert_eq!(
                fleet.shard_of(pair),
                Some(home),
                "pair {pair} must end at its rendezvous home"
            );
        }
        // The moves never read as an acquittal.
        for status in fleet.pair_statuses() {
            assert_ne!(status.verdict, Verdict::Clean, "{}", status.label);
        }
        assert!(fleet.metrics_snapshot().ticks > 0);
        drop(fleet);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn env_knob_parses_and_clamps() {
        // Only exercises the parse/clamp logic through the public default
        // path — the variable itself is process-global state the test
        // suite must not mutate.
        assert_eq!(shard_count_from_env(6).clamp(1, MAX_SHARDS), 6);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(ShardedFleet::new(ShardedFleetConfig {
            shards: 0,
            ..ShardedFleetConfig::default()
        })
        .is_err());
        assert!(ShardedFleet::new(ShardedFleetConfig {
            overflow_loss: 1.5,
            ..ShardedFleetConfig::default()
        })
        .is_err());
        assert!(ShardedFleet::new(ShardedFleetConfig {
            dead_after: 0,
            ..ShardedFleetConfig::default()
        })
        .is_err());
    }
}
