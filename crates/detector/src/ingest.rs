//! Hardened ingest — the trust boundary between event sources and the
//! analysis core.
//!
//! Everything upstream of this module (sim probes, replayed traces, real
//! hardware counters) is treated as *untrusted*: it may flood the monitor
//! with more events than a quantum can absorb, deliver timestamps out of
//! order or duplicated, label events with impossible context IDs, or pack
//! thousands of events into a single cycle to overflow a histogram bin.
//! The paper's CC-auditor hardware is immune to none of this — it simply
//! has two 16-bit accumulators and 128-entry × 16-bit histogram buffers
//! that clamp — so a faithful software reproduction must (a) bound its own
//! memory and latency the way the hardware's registers do, and (b) say so
//! when it was blinded instead of emitting a confident verdict from
//! damaged evidence.
//!
//! The module provides four pieces, composed by [`IngestPipeline`]:
//!
//! * [`AdmissionQueue`] — a bounded queue in front of the analysis core
//!   with pluggable [`ShedPolicy`]s (drop-oldest, drop-newest, and a
//!   deterministic reservoir subsample). Overload becomes a quantified
//!   loss fraction, never an OOM or an unbounded drain.
//! * [`Sanitizer`] — repairs or rejects hostile event trains (bounded
//!   reorder tolerance, duplicate suppression, context-ID range checks,
//!   zero-Δt burst trimming) and reports exactly what it did in a typed
//!   [`SanitizeReport`] instead of the old `assert!`/silent-skip handling.
//! * [`SatAccumulator`] / [`SaturatingHistogram`] — the paper's 16-bit
//!   accumulator semantics: counts clamp at [`u16::MAX`] and set a sticky
//!   saturation flag that widens verdict uncertainty downstream.
//! * [`IngestStats`] — cloneable shared counters so a supervisor (or the
//!   chaos soak harness) can observe every shed / sanitize / saturation
//!   event in its `metrics_snapshot()`.
//!
//! ## Loss semantics
//!
//! Every form of damage funnels into the existing [`Harvest`] confidence
//! machinery rather than inventing a parallel channel:
//!
//! * unbiased loss (reservoir shedding, duplicate suppression) produces
//!   [`Harvest::Partial`] with a quantified `lost_fraction` — detection
//!   proceeds on the salvaged evidence at decayed confidence;
//! * *biased* loss past [`IngestConfig::bias_tolerance`] (drop-oldest /
//!   drop-newest shed a time-contiguous chunk of the quantum, skewing the
//!   density statistics) produces [`Harvest::Missed`] — the pipeline
//!   refuses to synthesize burst evidence from a time-truncated train, the
//!   window keeps a gap, and the online verdict degrades to
//!   [`Inconclusive`](crate::Verdict::Inconclusive) instead of `Clean`;
//! * saturation keeps the (clamped) histogram but widens `lost_fraction`
//!   by [`IngestConfig::saturation_penalty`], because a clamped bin is a
//!   lower bound, not a measurement.
//!
//! Reservoir shedding additionally rescales the surviving event weights by
//! the inverse keep rate (a Horvitz–Thompson estimate), so the *expected*
//! density histogram matches the unshed one and a covert channel hiding
//! inside a flood is still flagged — see `tests/noise_robustness.rs`.

use crate::auditor::ConflictRecord;
use crate::density::{DensityHistogram, HISTOGRAM_BINS};
use crate::events::{EventTrain, EventTrainArena};
use crate::metrics::{default_registry, Counter};
use crate::online::Harvest;
use crate::span;
use crate::window::SlidingWindow;
use crate::DetectorError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::OnceLock;

/// Process-wide count of events offered to any admission queue.
fn ingest_offered_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_ingest_offered_total",
            "Raw events offered to admission queues (all pipelines)",
        )
    })
}

/// Process-wide count of events shed by admission queues.
fn ingest_shed_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_ingest_shed_total",
            "Events shed by admission queues under overload",
        )
    })
}

/// Process-wide count of events repaired by sanitizers.
fn ingest_repaired_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_ingest_repaired_total",
            "Events repaired by ingest sanitizers (reorder clamps)",
        )
    })
}

/// Process-wide count of events dropped by sanitizers.
fn ingest_dropped_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_ingest_dropped_total",
            "Hostile events dropped by ingest sanitizers",
        )
    })
}

/// Process-wide count of quanta whose 16-bit accumulators saturated.
fn ingest_saturated_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_ingest_saturated_quanta_total",
            "Quanta whose saturating 16-bit accumulators clamped",
        )
    })
}

/// Process-wide count of quanta finished by ingest pipelines.
fn ingest_quanta_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_ingest_quanta_total",
            "Quanta harvested through ingest pipelines",
        )
    })
}

/// One raw indicator event as delivered by an event source, before any
/// trust has been established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Claimed cycle of the event.
    pub time: u64,
    /// Unit-event weight (e.g. contention-run length in cycles).
    pub weight: u32,
    /// Claimed hardware context ID (3-bit in the paper).
    pub context: u8,
}

/// What the admission queue does when it is full and one more event
/// arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Keep the newest `capacity` events (the ring evicts the oldest).
    /// Biased: sheds a time-contiguous prefix of the quantum.
    DropOldest,
    /// Keep the first `capacity` events, discard later arrivals.
    /// Biased: sheds a time-contiguous suffix of the quantum.
    DropNewest,
    /// Deterministic reservoir sample (Algorithm R seeded with `seed`):
    /// every offered event is kept with equal probability, so the sample is
    /// *unbiased* in time and the surviving train still carries the
    /// channel's burst statistics.
    Reservoir {
        /// RNG seed — two queues with the same seed shed identically.
        seed: u64,
    },
}

impl ShedPolicy {
    /// Whether shedding under this policy skews the time distribution of
    /// the surviving events (see [`IngestConfig::bias_tolerance`]).
    pub fn is_biased(self) -> bool {
        !matches!(self, ShedPolicy::Reservoir { .. })
    }

    /// Short label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::DropNewest => "drop-newest",
            ShedPolicy::Reservoir { .. } => "reservoir",
        }
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Sizing and policy of an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum events buffered between drains. This — times
    /// `size_of::<RawEvent>()` — is the queue's entire memory bound.
    pub capacity: usize,
    /// What to do with event `capacity + 1`.
    pub policy: ShedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 1 << 16,
            policy: ShedPolicy::DropOldest,
        }
    }
}

/// What one [`AdmissionQueue::drain`] handed back.
#[derive(Debug, Clone)]
pub struct DrainedBatch {
    /// The admitted events, oldest → newest in arrival order.
    pub events: Vec<RawEvent>,
    /// Events offered since the previous drain.
    pub offered: u64,
    /// Events shed since the previous drain.
    pub shed: u64,
}

impl DrainedBatch {
    /// Fraction of offered events that were shed, in `[0, 1]`.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// A bounded queue between an event source and the analysis core.
///
/// `offer` is O(1) and never allocates past the configured capacity;
/// overload is converted into shed counts (reported by `drain`) instead of
/// memory growth or latency. One queue feeds one audited pair; the
/// supervisor drains it once per OS quantum.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    /// Drop-oldest storage (ring; push evicts the oldest).
    ring: SlidingWindow<RawEvent>,
    /// Drop-newest / reservoir storage.
    buf: Vec<RawEvent>,
    rng: SmallRng,
    offered: u64,
    shed: u64,
}

impl AdmissionQueue {
    /// Creates an empty queue.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if the capacity is zero.
    pub fn new(config: AdmissionConfig) -> Result<Self, DetectorError> {
        if config.capacity == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "admission queue needs capacity >= 1".to_string(),
            });
        }
        let seed = match config.policy {
            ShedPolicy::Reservoir { seed } => seed,
            _ => 0,
        };
        Ok(AdmissionQueue {
            config,
            ring: SlidingWindow::new(config.capacity),
            buf: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            offered: 0,
            shed: 0,
        })
    }

    /// The configured capacity (the memory bound, in events).
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// The active shedding policy.
    pub fn policy(&self) -> ShedPolicy {
        self.config.policy
    }

    /// Events currently buffered — never exceeds [`capacity`](Self::capacity).
    pub fn len(&self) -> usize {
        match self.config.policy {
            ShedPolicy::DropOldest => self.ring.len(),
            _ => self.buf.len(),
        }
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers one event. O(1); a full queue sheds per the policy instead of
    /// growing.
    pub fn offer(&mut self, event: RawEvent) {
        self.offered += 1;
        match self.config.policy {
            ShedPolicy::DropOldest => {
                if self.ring.push(event).is_some() {
                    self.shed += 1;
                }
            }
            ShedPolicy::DropNewest => {
                if self.buf.len() < self.config.capacity {
                    self.buf.push(event);
                } else {
                    self.shed += 1;
                }
            }
            ShedPolicy::Reservoir { .. } => {
                if self.buf.len() < self.config.capacity {
                    self.buf.push(event);
                } else {
                    // Algorithm R: the n-th offered event replaces a random
                    // reservoir slot with probability capacity / n, so every
                    // offered event survives with equal probability.
                    let j = self.rng.gen_range(0..self.offered);
                    if (j as usize) < self.config.capacity {
                        self.buf[j as usize] = event;
                    }
                    self.shed += 1;
                }
            }
        }
    }

    /// Empties the queue, returning the admitted events (sorted back into
    /// nondecreasing time order for the reservoir policy, whose slot
    /// replacement scrambles arrival order) and the offered/shed counts
    /// since the previous drain.
    pub fn drain(&mut self) -> DrainedBatch {
        let mut events = match self.config.policy {
            ShedPolicy::DropOldest => self.ring.drain(),
            _ => std::mem::take(&mut self.buf),
        };
        if matches!(self.config.policy, ShedPolicy::Reservoir { .. }) {
            events.sort_by_key(|e| e.time);
        }
        let batch = DrainedBatch {
            events,
            offered: self.offered,
            shed: self.shed,
        };
        self.offered = 0;
        self.shed = 0;
        batch
    }
}

/// Tolerances of the [`Sanitizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Maximum backwards time step (cycles) that is *repaired* by clamping
    /// to the last accepted timestamp; larger steps are rejected as time
    /// travel. Models bounded reorder in a real event transport.
    pub reorder_tolerance: u64,
    /// Number of valid hardware contexts; events claiming `context >=
    /// max_contexts` are dropped (the paper's context IDs are 3-bit).
    pub max_contexts: u8,
    /// Maximum accepted events carrying the *same* timestamp; the excess of
    /// a zero-Δt burst is trimmed (an attacker packing one cycle cannot
    /// overflow a histogram bin or starve the drain).
    pub zero_dt_burst_limit: u32,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            reorder_tolerance: 1_000,
            max_contexts: 8,
            zero_dt_burst_limit: 4_096,
        }
    }
}

/// Exactly what a sanitization pass did — returned alongside the clean
/// train instead of the old silent assumptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Events examined.
    pub offered: u64,
    /// Events accepted into the output train.
    pub accepted: u64,
    /// Out-of-order events repaired by clamping within the reorder
    /// tolerance (accepted; counted separately because repair is a guess).
    pub repaired_reorder: u64,
    /// Consecutive exact duplicates dropped.
    pub duplicates: u64,
    /// Events with out-of-range context IDs dropped.
    pub out_of_range: u64,
    /// Zero-Δt burst excess dropped.
    pub zero_dt_trimmed: u64,
    /// Time travel beyond the reorder tolerance dropped.
    pub time_travel: u64,
}

impl SanitizeReport {
    /// Total events dropped (not repaired) by the pass.
    pub fn dropped(&self) -> u64 {
        self.duplicates + self.out_of_range + self.zero_dt_trimmed + self.time_travel
    }

    /// Fraction of offered events lost, in `[0, 1]`.
    pub fn lost_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.offered as f64
        }
    }

    /// Whether the input needed no repair or drop at all.
    pub fn is_clean(&self) -> bool {
        self.dropped() == 0 && self.repaired_reorder == 0
    }

    /// Folds another report into this one.
    pub fn absorb(&mut self, other: &SanitizeReport) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.repaired_reorder += other.repaired_reorder;
        self.duplicates += other.duplicates;
        self.out_of_range += other.out_of_range;
        self.zero_dt_trimmed += other.zero_dt_trimmed;
        self.time_travel += other.time_travel;
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} accepted ({} repaired, {} dup, {} bad-context, {} zero-dt, {} time-travel)",
            self.accepted,
            self.offered,
            self.repaired_reorder,
            self.duplicates,
            self.out_of_range,
            self.zero_dt_trimmed,
            self.time_travel
        )
    }
}

/// Repairs or rejects hostile event input per [`SanitizerConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Sanitizer {
    config: SanitizerConfig,
}

impl Sanitizer {
    /// Creates a sanitizer with the given tolerances.
    pub fn new(config: SanitizerConfig) -> Self {
        Sanitizer { config }
    }

    /// The active tolerances.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// Sanitizes raw events into a well-formed [`EventTrain`], repairing
    /// what the tolerances allow and dropping the rest. Never panics on any
    /// input; the report says exactly what happened.
    pub fn sanitize(&self, events: &[RawEvent]) -> (EventTrain, SanitizeReport) {
        let mut arena = EventTrainArena::new();
        let (idx, report) = self.sanitize_into(events, &mut arena);
        (arena.view(idx).to_owned(), report)
    }

    /// Sanitizes raw events directly into `arena` as a new train, returning
    /// its index and the report — the zero-copy core of
    /// [`sanitize`](Self::sanitize). The arena's slabs are reused across
    /// quanta by the ingest pipeline, so a steady-state quantum allocates
    /// nothing on this path.
    pub fn sanitize_into(
        &self,
        events: &[RawEvent],
        arena: &mut EventTrainArena,
    ) -> (usize, SanitizeReport) {
        let idx = arena.begin_train();
        let mut report = SanitizeReport {
            offered: events.len() as u64,
            ..SanitizeReport::default()
        };
        let mut prev_accepted: Option<RawEvent> = None;
        let mut last_time = 0u64;
        let mut run_len = 0u32;
        for &event in events {
            if event.context >= self.config.max_contexts {
                report.out_of_range += 1;
                continue;
            }
            if prev_accepted == Some(event) {
                report.duplicates += 1;
                continue;
            }
            let mut time = event.time;
            let had_history = prev_accepted.is_some();
            if had_history && time < last_time {
                if last_time - time <= self.config.reorder_tolerance {
                    time = last_time;
                    report.repaired_reorder += 1;
                } else {
                    report.time_travel += 1;
                    continue;
                }
            }
            if had_history && time == last_time {
                run_len += 1;
                if run_len >= self.config.zero_dt_burst_limit {
                    report.zero_dt_trimmed += 1;
                    continue;
                }
            } else {
                run_len = 0;
            }
            // Cannot fail: `time` was clamped to be >= the last accepted
            // timestamp — but hostile input must never panic, so the error
            // path degrades to a drop instead of unwrapping.
            if arena.push(time, event.weight).is_err() {
                report.time_travel += 1;
                continue;
            }
            report.accepted += 1;
            prev_accepted = Some(event);
            last_time = time;
        }
        (idx, report)
    }

    /// Strict mode: returns the sanitized train only if the input needed no
    /// repair or drop, otherwise [`DetectorError::HostileTrain`] naming the
    /// first class of violation. For callers (trace replay, checkpoints)
    /// where damage means the source itself is broken.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::HostileTrain`] on any sanitizer finding.
    pub fn strict(&self, events: &[RawEvent]) -> Result<EventTrain, DetectorError> {
        let (train, report) = self.sanitize(events);
        if report.is_clean() {
            Ok(train)
        } else {
            Err(DetectorError::HostileTrain {
                reason: format!("sanitizer findings: {report}"),
            })
        }
    }

    /// Sanitizes a conflict-record batch for the oscillation path: same
    /// rules as [`sanitize`](Self::sanitize) with the replacer/victim pair
    /// as the context and the conflict cycle as the timestamp.
    pub fn sanitize_conflicts(
        &self,
        records: &[ConflictRecord],
    ) -> (Vec<ConflictRecord>, SanitizeReport) {
        let mut out = Vec::with_capacity(records.len().min(1 << 16));
        let mut report = SanitizeReport {
            offered: records.len() as u64,
            ..SanitizeReport::default()
        };
        let mut prev: Option<ConflictRecord> = None;
        let mut last_cycle = 0u64;
        let mut run_len = 0u32;
        for &record in records {
            if record.replacer >= self.config.max_contexts
                || record.victim >= self.config.max_contexts
            {
                report.out_of_range += 1;
                continue;
            }
            if prev == Some(record) {
                report.duplicates += 1;
                continue;
            }
            let mut cycle = record.cycle;
            let had_history = prev.is_some();
            if had_history && cycle < last_cycle {
                if last_cycle - cycle <= self.config.reorder_tolerance {
                    cycle = last_cycle;
                    report.repaired_reorder += 1;
                } else {
                    report.time_travel += 1;
                    continue;
                }
            }
            if had_history && cycle == last_cycle {
                run_len += 1;
                if run_len >= self.config.zero_dt_burst_limit {
                    report.zero_dt_trimmed += 1;
                    continue;
                }
            } else {
                run_len = 0;
            }
            out.push(ConflictRecord {
                cycle,
                replacer: record.replacer,
                victim: record.victim,
            });
            report.accepted += 1;
            prev = Some(record);
            last_cycle = cycle;
        }
        (out, report)
    }
}

/// One of the paper's 16-bit CC-auditor accumulators: adds clamp at
/// [`u16::MAX`] and set a *sticky* saturation flag instead of wrapping —
/// a saturated count is a lower bound, and downstream analyses must widen
/// their uncertainty accordingly rather than silently under-count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatAccumulator {
    value: u16,
    saturated: bool,
}

impl SatAccumulator {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        SatAccumulator::default()
    }

    /// Adds `count`, clamping at [`u16::MAX`]; the saturation flag sticks.
    pub fn add(&mut self, count: u64) {
        let sum = self.value as u64 + count;
        if sum > u16::MAX as u64 {
            self.value = u16::MAX;
            self.saturated = true;
        } else {
            self.value = sum as u16;
        }
    }

    /// The current (possibly clamped) value.
    pub fn value(&self) -> u16 {
        self.value
    }

    /// Whether any add has ever clamped.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Resets to zero and clears the flag (hardware harvest-and-clear).
    pub fn reset(&mut self) {
        *self = SatAccumulator::default();
    }
}

/// A density histogram with the CC-auditor's hardware width: 128 bins of
/// 16 bits each plus a 16-bit total-window accumulator, all saturating
/// with a sticky flag (the 8/16-bit entry widths of paper Figure 8).
///
/// [`finish`](Self::finish) converts back to the software-width
/// [`DensityHistogram`] and reports whether any counter clamped.
#[derive(Debug, Clone)]
pub struct SaturatingHistogram {
    bins: Vec<SatAccumulator>,
    windows: SatAccumulator,
    delta_t: u64,
}

impl SaturatingHistogram {
    /// Creates an empty hardware-width histogram for windows of `delta_t`
    /// cycles.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `delta_t` is zero.
    pub fn new(delta_t: u64) -> Result<Self, DetectorError> {
        if delta_t == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "Δt must be nonzero".to_string(),
            });
        }
        Ok(SaturatingHistogram {
            bins: vec![SatAccumulator::new(); HISTOGRAM_BINS],
            windows: SatAccumulator::new(),
            delta_t,
        })
    }

    /// Adds `count` windows of density `bin` (clamped to the last bin, as
    /// the hardware histogram does).
    pub fn record(&mut self, bin: usize, count: u64) {
        let bin = bin.min(HISTOGRAM_BINS - 1);
        self.bins[bin].add(count);
        self.windows.add(count);
    }

    /// Accumulates a software-width histogram bin by bin.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::BadHarvest`] on a Δt mismatch.
    pub fn accumulate(&mut self, histogram: &DensityHistogram) -> Result<(), DetectorError> {
        if histogram.delta_t() != self.delta_t {
            return Err(DetectorError::BadHarvest {
                reason: format!(
                    "Δt mismatch in accumulate: {} vs {}",
                    self.delta_t,
                    histogram.delta_t()
                ),
            });
        }
        for (bin, &count) in histogram.bins().iter().enumerate() {
            if count > 0 {
                self.record(bin, count);
            }
        }
        Ok(())
    }

    /// Whether any bin or the window accumulator has clamped.
    pub fn is_saturated(&self) -> bool {
        self.windows.is_saturated() || self.bins.iter().any(|b| b.is_saturated())
    }

    /// The Δt this histogram was built with.
    pub fn delta_t(&self) -> u64 {
        self.delta_t
    }

    /// Converts to a software-width [`DensityHistogram`] plus the sticky
    /// saturation flag. The caller must treat a saturated read-out as a
    /// lower bound (the ingest pipeline widens `lost_fraction`).
    pub fn finish(&self) -> (DensityHistogram, bool) {
        let bins: Vec<u64> = self.bins.iter().map(|b| b.value() as u64).collect();
        let histogram = DensityHistogram::from_bins(bins, self.delta_t)
            .expect("bin count and Δt are valid by construction");
        (histogram, self.is_saturated())
    }
}

/// Cloneable shared counters published by every [`IngestPipeline`];
/// attach a clone to a [`Supervisor`](crate::Supervisor) (via
/// `attach_ingest_stats`) and the totals appear in `metrics_snapshot()`.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Raw events offered to the admission queue.
    pub events_offered: Counter,
    /// Events shed by the admission queue.
    pub events_shed: Counter,
    /// Events repaired (reorder-clamped) by the sanitizer.
    pub events_repaired: Counter,
    /// Hostile events dropped by the sanitizer.
    pub events_dropped: Counter,
    /// Quanta whose 16-bit accumulators saturated.
    pub saturated_quanta: Counter,
    /// Quanta harvested through the pipeline.
    pub quanta: Counter,
    /// Quanta degraded to `Harvest::Partial`.
    pub partial_harvests: Counter,
    /// Quanta refused as `Harvest::Missed` (biased shedding past
    /// tolerance).
    pub missed_harvests: Counter,
}

impl IngestStats {
    /// Creates a fresh set of zeroed counters.
    pub fn new() -> Self {
        IngestStats::default()
    }
}

/// Configuration of an [`IngestPipeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Admission queue sizing and shedding policy.
    pub admission: AdmissionConfig,
    /// Sanitizer tolerances.
    pub sanitizer: SanitizerConfig,
    /// Δt (cycles) for the per-quantum density histogram.
    pub delta_t: u64,
    /// Maximum shed fraction under a *biased* policy (drop-oldest /
    /// drop-newest) before the quantum is refused as [`Harvest::Missed`]:
    /// a time-truncated train's density statistics are skewed, and skewed
    /// evidence must blind the monitor, not acquit the channel.
    pub bias_tolerance: f64,
    /// Extra `lost_fraction` applied when the 16-bit accumulators clamp —
    /// a saturated histogram is a lower bound, so the verdict uncertainty
    /// widens instead of the counts silently under-reporting.
    pub saturation_penalty: f64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            admission: AdmissionConfig::default(),
            sanitizer: SanitizerConfig::default(),
            delta_t: 100_000,
            bias_tolerance: 0.25,
            saturation_penalty: 0.25,
        }
    }
}

/// What one quantum's ingest did — returned alongside the [`Harvest`].
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Events offered to the admission queue this quantum.
    pub offered: u64,
    /// Events admitted (survived shedding).
    pub admitted: u64,
    /// Events shed by the admission queue.
    pub shed: u64,
    /// `shed / offered`, in `[0, 1]`.
    pub shed_fraction: f64,
    /// The active shedding policy.
    pub policy: ShedPolicy,
    /// What the sanitizer repaired and dropped.
    pub sanitize: SanitizeReport,
    /// Whether the 16-bit accumulators clamped.
    pub saturated: bool,
    /// The combined loss fraction carried by the harvest.
    pub lost_fraction: f64,
    /// Whether the quantum was refused as [`Harvest::Missed`].
    pub refused: bool,
}

/// The hardened ingest path for one audited pair: admission queue →
/// sanitizer → saturating 16-bit histogram → [`Harvest`].
#[derive(Debug)]
pub struct IngestPipeline {
    config: IngestConfig,
    queue: AdmissionQueue,
    sanitizer: Sanitizer,
    /// Reused SoA storage for the per-quantum sanitized train: cleared (not
    /// freed) every quantum so steady state allocates nothing.
    arena: EventTrainArena,
    stats: IngestStats,
}

impl IngestPipeline {
    /// Creates a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for a zero queue capacity,
    /// zero Δt, or tolerances outside `[0, 1]`.
    pub fn new(config: IngestConfig) -> Result<Self, DetectorError> {
        if config.delta_t == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "ingest Δt must be nonzero".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&config.bias_tolerance)
            || !(0.0..=1.0).contains(&config.saturation_penalty)
        {
            return Err(DetectorError::InvalidConfig {
                reason: "bias_tolerance and saturation_penalty must be in [0, 1]".to_string(),
            });
        }
        Ok(IngestPipeline {
            queue: AdmissionQueue::new(config.admission)?,
            sanitizer: Sanitizer::new(config.sanitizer),
            arena: EventTrainArena::new(),
            stats: IngestStats::new(),
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// A cloneable handle to this pipeline's counters (share it with a
    /// supervisor so ingest totals appear in its `metrics_snapshot()`).
    pub fn stats(&self) -> IngestStats {
        self.stats.clone()
    }

    /// Events currently queued — bounded by the admission capacity.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Offers one raw event to the admission queue. O(1), bounded memory.
    pub fn offer(&mut self, event: RawEvent) {
        self.stats.events_offered.inc();
        ingest_offered_total().inc();
        self.queue.offer(event);
    }

    /// Ends the quantum `[start, end)`: drains the queue, sanitizes the
    /// batch, builds the density histogram through the saturating 16-bit
    /// accumulators, and folds every form of damage into the returned
    /// [`Harvest`]'s loss fraction (or refuses the quantum outright — see
    /// the module docs for the loss semantics).
    pub fn end_quantum(&mut self, start: u64, end: u64) -> (Harvest, IngestReport) {
        let tracer = span::global();
        let _span = tracer.span("ingest", "quantum");

        let batch = self.queue.drain();
        let shed_fraction = batch.shed_fraction();
        let mut events = batch.events;

        // Reservoir shedding is an unbiased subsample: rescale the
        // surviving weights by the inverse keep rate (Horvitz–Thompson) so
        // the expected density histogram matches the unshed quantum.
        if !self.config.admission.policy.is_biased() && batch.shed > 0 && !events.is_empty() {
            let inflate =
                ((batch.offered as f64 / events.len() as f64).round() as u32).clamp(1, 1 << 16);
            for event in &mut events {
                event.weight = event.weight.saturating_mul(inflate);
            }
        }

        self.arena.clear();
        let (train_idx, sanitize) = self.sanitizer.sanitize_into(&events, &mut self.arena);
        let software = DensityHistogram::from_view(
            self.arena.view(train_idx),
            self.config.delta_t,
            start,
            end,
        );
        let mut hardware =
            SaturatingHistogram::new(self.config.delta_t).expect("Δt validated at construction");
        hardware
            .accumulate(&software)
            .expect("same Δt by construction");
        let (histogram, saturated) = hardware.finish();

        // Damage composes multiplicatively on the surviving fraction.
        let mut lost = 1.0 - (1.0 - shed_fraction) * (1.0 - sanitize.lost_fraction());
        if saturated {
            lost = 1.0 - (1.0 - lost) * (1.0 - self.config.saturation_penalty);
        }
        let lost = lost.clamp(0.0, 1.0);

        let refused =
            self.config.admission.policy.is_biased() && shed_fraction > self.config.bias_tolerance;
        let harvest = if refused {
            Harvest::Missed
        } else if lost > 0.0 {
            Harvest::Partial {
                histogram,
                lost_fraction: lost,
            }
        } else {
            Harvest::Complete(histogram)
        };

        self.stats.quanta.inc();
        ingest_quanta_total().inc();
        self.stats.events_shed.inc_by(batch.shed);
        ingest_shed_total().inc_by(batch.shed);
        self.stats.events_repaired.inc_by(sanitize.repaired_reorder);
        ingest_repaired_total().inc_by(sanitize.repaired_reorder);
        self.stats.events_dropped.inc_by(sanitize.dropped());
        ingest_dropped_total().inc_by(sanitize.dropped());
        if saturated {
            self.stats.saturated_quanta.inc();
            ingest_saturated_total().inc();
        }
        match harvest {
            Harvest::Partial { .. } => self.stats.partial_harvests.inc(),
            Harvest::Missed => self.stats.missed_harvests.inc(),
            Harvest::Complete(_) => {}
        }
        if tracer.is_enabled() && (batch.shed > 0 || !sanitize.is_clean() || saturated) {
            tracer.event(
                "ingest",
                "degraded-quantum",
                format!(
                    "policy {} shed {}/{} sanitize [{}] saturated {} -> lost {:.3}{}",
                    self.config.admission.policy,
                    batch.shed,
                    batch.offered,
                    sanitize,
                    saturated,
                    lost,
                    if refused { " REFUSED" } else { "" }
                ),
            );
        }

        let report = IngestReport {
            offered: batch.offered,
            admitted: batch.offered - batch.shed,
            shed: batch.shed,
            shed_fraction,
            policy: self.config.admission.policy,
            sanitize,
            saturated,
            lost_fraction: if refused { 1.0 } else { lost },
            refused,
        };
        (harvest, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, weight: u32, context: u8) -> RawEvent {
        RawEvent {
            time,
            weight,
            context,
        }
    }

    #[test]
    fn drop_oldest_keeps_newest_and_counts_shed() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 3,
            policy: ShedPolicy::DropOldest,
        })
        .unwrap();
        for t in 0..10u64 {
            q.offer(ev(t, 1, 0));
            assert!(q.len() <= 3, "queue must never exceed capacity");
        }
        let batch = q.drain();
        assert_eq!(batch.offered, 10);
        assert_eq!(batch.shed, 7);
        let times: Vec<u64> = batch.events.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![7, 8, 9]);
        // Counters reset after a drain.
        assert_eq!(q.drain().offered, 0);
    }

    #[test]
    fn drop_newest_keeps_oldest() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 3,
            policy: ShedPolicy::DropNewest,
        })
        .unwrap();
        for t in 0..10u64 {
            q.offer(ev(t, 1, 0));
            assert!(q.len() <= 3);
        }
        let batch = q.drain();
        assert_eq!(batch.shed, 7);
        let times: Vec<u64> = batch.events.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_is_deterministic_uniform_and_sorted() {
        let config = AdmissionConfig {
            capacity: 100,
            policy: ShedPolicy::Reservoir { seed: 42 },
        };
        let run = |config| {
            let mut q = AdmissionQueue::new(config).unwrap();
            for t in 0..10_000u64 {
                q.offer(ev(t, 1, 0));
                assert!(q.len() <= 100);
            }
            q.drain()
        };
        let a = run(config);
        let b = run(config);
        assert_eq!(a.events, b.events, "same seed must shed identically");
        assert_eq!(a.events.len(), 100);
        assert_eq!(a.shed, 9_900);
        assert!(
            a.events.windows(2).all(|w| w[0].time <= w[1].time),
            "drain must re-sort the reservoir into time order"
        );
        // Uniformity (coarse): both halves of the stream are represented.
        let early = a.events.iter().filter(|e| e.time < 5_000).count();
        assert!(
            (20..=80).contains(&early),
            "reservoir should sample the whole quantum, got {early} early"
        );
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            AdmissionQueue::new(AdmissionConfig {
                capacity: 0,
                policy: ShedPolicy::DropOldest,
            }),
            Err(DetectorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn sanitizer_repairs_bounded_reorder_and_rejects_time_travel() {
        let s = Sanitizer::new(SanitizerConfig {
            reorder_tolerance: 10,
            ..SanitizerConfig::default()
        });
        let events = [
            ev(100, 1, 0),
            ev(95, 1, 1), // within tolerance: clamped to 100
            ev(200, 1, 0),
            ev(50, 1, 0), // 150 back: rejected
            ev(210, 1, 0),
        ];
        let (train, report) = s.sanitize(&events);
        assert_eq!(report.accepted, 4);
        assert_eq!(report.repaired_reorder, 1);
        assert_eq!(report.time_travel, 1);
        assert_eq!(train.times(), &[100, 100, 200, 210]);
        assert!(!report.is_clean());
    }

    #[test]
    fn sanitizer_drops_duplicates_and_bad_contexts() {
        let s = Sanitizer::new(SanitizerConfig::default());
        let events = [
            ev(10, 1, 0),
            ev(10, 1, 0),   // exact duplicate
            ev(10, 2, 0),   // same time, different weight: legitimate
            ev(20, 1, 200), // context out of range
            ev(30, 1, 7),
        ];
        let (train, report) = s.sanitize(&events);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.out_of_range, 1);
        assert_eq!(report.accepted, 3);
        assert_eq!(train.len(), 3);
    }

    #[test]
    fn sanitizer_trims_zero_dt_bursts() {
        let s = Sanitizer::new(SanitizerConfig {
            zero_dt_burst_limit: 4,
            ..SanitizerConfig::default()
        });
        // Distinct weights so the duplicate rule never fires first.
        let events: Vec<RawEvent> = (0..100u32).map(|i| ev(500, i + 1, 0)).collect();
        let (train, report) = s.sanitize(&events);
        assert_eq!(report.accepted, 4, "burst trimmed to the limit");
        assert_eq!(report.zero_dt_trimmed, 96);
        assert_eq!(train.len(), 4);
    }

    #[test]
    fn sanitizer_never_panics_on_adversarial_streams() {
        // Deterministic garbage: every combination of backwards jumps,
        // duplicates, and wild contexts.
        let s = Sanitizer::new(SanitizerConfig::default());
        let mut rng = SmallRng::seed_from_u64(0xBAD_F00D);
        let events: Vec<RawEvent> = (0..20_000)
            .map(|_| {
                ev(
                    rng.gen_range(0..5_000u64),
                    rng.gen_range(0..4u32),
                    rng.gen_range(0..255u8),
                )
            })
            .collect();
        let (train, report) = s.sanitize(&events);
        assert_eq!(report.offered, 20_000);
        assert_eq!(report.accepted, train.len() as u64);
        assert!(
            train.times().windows(2).all(|w| w[0] <= w[1]),
            "output train must always be monotonic"
        );
    }

    #[test]
    fn strict_mode_errors_on_any_finding() {
        let s = Sanitizer::new(SanitizerConfig::default());
        assert!(s.strict(&[ev(10, 1, 0), ev(20, 1, 0)]).is_ok());
        let err = s.strict(&[ev(10, 1, 0), ev(10, 1, 0)]).unwrap_err();
        assert!(matches!(err, DetectorError::HostileTrain { .. }), "{err}");
    }

    #[test]
    fn conflict_sanitizer_same_rules() {
        let s = Sanitizer::new(SanitizerConfig {
            reorder_tolerance: 5,
            ..SanitizerConfig::default()
        });
        let records = [
            ConflictRecord {
                cycle: 100,
                replacer: 1,
                victim: 0,
            },
            ConflictRecord {
                cycle: 100,
                replacer: 1,
                victim: 0,
            }, // duplicate
            ConflictRecord {
                cycle: 97,
                replacer: 0,
                victim: 1,
            }, // repaired to 100
            ConflictRecord {
                cycle: 10,
                replacer: 0,
                victim: 1,
            }, // time travel
            ConflictRecord {
                cycle: 120,
                replacer: 9,
                victim: 0,
            }, // bad context
        ];
        let (clean, report) = s.sanitize_conflicts(&records);
        assert_eq!(clean.len(), 2);
        assert_eq!(clean[1].cycle, 100);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.repaired_reorder, 1);
        assert_eq!(report.time_travel, 1);
        assert_eq!(report.out_of_range, 1);
    }

    #[test]
    fn accumulator_clamps_sticky() {
        let mut a = SatAccumulator::new();
        a.add(60_000);
        assert!(!a.is_saturated());
        a.add(10_000);
        assert_eq!(a.value(), u16::MAX);
        assert!(a.is_saturated());
        a.add(1);
        assert_eq!(a.value(), u16::MAX, "clamp, never wrap");
        a.reset();
        assert_eq!(a.value(), 0);
        assert!(!a.is_saturated());
    }

    #[test]
    fn saturating_histogram_clamps_and_flags() {
        let mut h = SaturatingHistogram::new(100).unwrap();
        h.record(0, 70_000);
        h.record(5, 10);
        assert!(h.is_saturated());
        let (out, saturated) = h.finish();
        assert!(saturated);
        assert_eq!(out.frequency(0), u16::MAX as u64);
        assert_eq!(out.frequency(5), 10);
    }

    #[test]
    fn small_counts_pass_through_unclamped() {
        let train = EventTrain::from_times(vec![10, 20, 250]);
        let software = DensityHistogram::from_train(&train, 100, 0, 400);
        let mut h = SaturatingHistogram::new(100).unwrap();
        h.accumulate(&software).unwrap();
        let (out, saturated) = h.finish();
        assert!(!saturated);
        assert_eq!(out.bins(), software.bins());
        assert_eq!(out.total_windows(), software.total_windows());
    }

    #[test]
    fn pipeline_clean_stream_is_complete() {
        let mut p = IngestPipeline::new(IngestConfig {
            delta_t: 100,
            ..IngestConfig::default()
        })
        .unwrap();
        for t in 0..50u64 {
            p.offer(ev(t * 20, 1, 0));
        }
        let (harvest, report) = p.end_quantum(0, 1_000);
        assert!(matches!(harvest, Harvest::Complete(_)));
        assert_eq!(report.offered, 50);
        assert_eq!(report.shed, 0);
        assert!(report.sanitize.is_clean());
        assert!(!report.saturated);
        assert_eq!(report.lost_fraction, 0.0);
    }

    #[test]
    fn pipeline_biased_flood_refuses_quantum() {
        let mut p = IngestPipeline::new(IngestConfig {
            admission: AdmissionConfig {
                capacity: 64,
                policy: ShedPolicy::DropNewest,
            },
            delta_t: 100,
            ..IngestConfig::default()
        })
        .unwrap();
        for t in 0..10_000u64 {
            p.offer(ev(t, 1, 0));
        }
        let (harvest, report) = p.end_quantum(0, 10_000);
        assert_eq!(harvest, Harvest::Missed);
        assert!(report.refused);
        assert_eq!(report.lost_fraction, 1.0);
        assert_eq!(p.stats().missed_harvests.get(), 1);
    }

    #[test]
    fn pipeline_reservoir_flood_degrades_but_observes() {
        let mut p = IngestPipeline::new(IngestConfig {
            admission: AdmissionConfig {
                capacity: 256,
                policy: ShedPolicy::Reservoir { seed: 7 },
            },
            delta_t: 100,
            ..IngestConfig::default()
        })
        .unwrap();
        for t in 0..10_000u64 {
            p.offer(ev(t, 1, 0));
        }
        let (harvest, report) = p.end_quantum(0, 10_000);
        match harvest {
            Harvest::Partial {
                histogram,
                lost_fraction,
            } => {
                assert!(lost_fraction > 0.9, "heavy shed must be quantified");
                assert!(histogram.contended_windows() > 0, "evidence survives");
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        assert!(!report.refused);
        assert_eq!(p.stats().partial_harvests.get(), 1);
    }

    #[test]
    fn pipeline_saturation_widens_loss() {
        let mut p = IngestPipeline::new(IngestConfig {
            delta_t: 1,
            ..IngestConfig::default()
        })
        .unwrap();
        // One event at t=0 over a quantum of 100 000 one-cycle windows:
        // bin 0 receives ~100 000 empty windows and must clamp at 65 535.
        p.offer(ev(0, 1, 0));
        let (harvest, report) = p.end_quantum(0, 100_000);
        assert!(report.saturated);
        match harvest {
            Harvest::Partial { lost_fraction, .. } => {
                assert!(lost_fraction >= 0.25, "saturation widens uncertainty");
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        assert_eq!(p.stats().saturated_quanta.get(), 1);
    }

    #[test]
    fn pipeline_stats_handle_shares_counters() {
        let mut p = IngestPipeline::new(IngestConfig {
            admission: AdmissionConfig {
                capacity: 4,
                policy: ShedPolicy::DropOldest,
            },
            delta_t: 100,
            ..IngestConfig::default()
        })
        .unwrap();
        let stats = p.stats();
        for t in 0..10u64 {
            p.offer(ev(t, 1, 0));
        }
        let _ = p.end_quantum(0, 1_000);
        assert_eq!(stats.events_offered.get(), 10);
        assert_eq!(stats.events_shed.get(), 6);
        assert_eq!(stats.quanta.get(), 1);
    }
}
