//! Iterative radix-2 real-input FFT — the fast path behind the
//! autocorrelogram (Wiener–Khinchin theorem).
//!
//! The naive autocorrelogram is O(n·max_lag); for the paper's operating
//! point (≈5 000 conflict symbols per quantum, 1 000 lags) that is millions
//! of multiply-adds per quantum per audited pair. The Wiener–Khinchin
//! theorem turns it into two FFTs: the inverse transform of the power
//! spectrum *is* the (circular) autocorrelation, and zero-padding the series
//! by at least `max_lag` makes the circular sums equal the linear ones.
//!
//! The real-input transform packs the 2M-point real sequence into an M-point
//! complex FFT (even samples → real parts, odd samples → imaginary parts)
//! and untangles the half-spectrum afterwards — the standard trick that
//! halves both work and memory versus treating the input as complex.
//!
//! Everything here is deterministic: no threading, no data-dependent
//! ordering, plain `f64` arithmetic.

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + i·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    pub(crate) fn add(self, other: Self) -> Self {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    pub(crate) fn sub(self, other: Self) -> Self {
        Complex::new(self.re - other.re, self.im - other.im)
    }

    pub(crate) fn mul(self, other: Self) -> Self {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    pub(crate) fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

/// In-place iterative radix-2 FFT (decimation in time) over a
/// power-of-two-length buffer. `inverse` selects the inverse transform,
/// which includes the 1/N scaling.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes: width doubles each stage.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut width = 2;
    while width <= n {
        let angle = sign * std::f64::consts::TAU / width as f64;
        let w_step = Complex::new(angle.cos(), angle.sin());
        for start in (0..n).step_by(width) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..width / 2 {
                let even = data[start + k];
                let odd = data[start + k + width / 2].mul(w);
                data[start + k] = even.add(odd);
                data[start + k + width / 2] = even.sub(odd);
                w = w.mul(w_step);
            }
        }
        width *= 2;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for value in data.iter_mut() {
            *value = value.scale(scale);
        }
    }
}

/// Forward FFT of a real sequence of power-of-two length `N = 2M`, computed
/// through an M-point complex FFT. Returns the non-redundant half-spectrum
/// `X[0..=M]` (`X[0]` and the Nyquist bin `X[M]` are purely real; the rest
/// of the spectrum is the Hermitian mirror).
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two or is less than 2.
pub fn real_fft(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "real FFT length must be a power of two >= 2"
    );
    let m = n / 2;
    // Pack: even samples into real parts, odd samples into imaginary parts.
    let mut packed: Vec<Complex> = (0..m)
        .map(|j| Complex::new(signal[2 * j], signal[2 * j + 1]))
        .collect();
    fft_in_place(&mut packed, false);
    // Untangle the even/odd sub-spectra and recombine.
    let mut spectrum = Vec::with_capacity(m + 1);
    for k in 0..=m {
        let z_k = packed[k % m];
        let z_mk = packed[(m - k) % m].conj();
        let even = z_k.add(z_mk).scale(0.5);
        // odd = (z_k - z_mk) / (2i)  ==  (z_k - z_mk) · (-i/2)
        let diff = z_k.sub(z_mk);
        let odd = Complex::new(diff.im * 0.5, -diff.re * 0.5);
        let angle = -std::f64::consts::TAU * k as f64 / n as f64;
        let twiddle = Complex::new(angle.cos(), angle.sin());
        spectrum.push(even.add(twiddle.mul(odd)));
    }
    spectrum
}

/// Inverse of [`real_fft`]: reconstructs the length-`n` real sequence from
/// its Hermitian half-spectrum `X[0..=n/2]`.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2 or `spectrum.len() != n/2 + 1`.
pub fn inverse_real_fft(spectrum: &[Complex], n: usize) -> Vec<f64> {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "real FFT length must be a power of two >= 2"
    );
    let m = n / 2;
    assert_eq!(
        spectrum.len(),
        m + 1,
        "half-spectrum must hold n/2 + 1 bins"
    );
    // Re-tangle the half-spectrum into the M-point packed spectrum.
    let mut packed = Vec::with_capacity(m);
    for k in 0..m {
        let x_k = spectrum[k];
        let x_mk = spectrum[m - k].conj();
        let even = x_k.add(x_mk).scale(0.5);
        let with_twiddle = x_k.sub(x_mk).scale(0.5);
        let angle = std::f64::consts::TAU * k as f64 / n as f64;
        let inv_twiddle = Complex::new(angle.cos(), angle.sin());
        let odd = inv_twiddle.mul(with_twiddle);
        // Z[k] = even + i·odd
        packed.push(Complex::new(even.re - odd.im, even.im + odd.re));
    }
    fft_in_place(&mut packed, true);
    let mut signal = Vec::with_capacity(n);
    for z in packed {
        signal.push(z.re);
        signal.push(z.im);
    }
    signal
}

/// Linear autocorrelation sums `r[lag] = Σᵢ x[i]·x[i+lag]` for
/// `lag ∈ 0..=max_lag`, via the Wiener–Khinchin theorem: zero-pad to kill
/// circular wrap-around, forward real FFT, power spectrum, inverse real FFT.
///
/// The caller centers the series (subtracts the mean) beforehand; dividing
/// `r[lag]` by `r[0]` then yields the autocorrelation coefficients.
pub fn autocorrelation_sums(centered: &[f64], max_lag: usize) -> Vec<f64> {
    let n = centered.len();
    let lags = max_lag.min(n.saturating_sub(1));
    // Padding to n + lags zeroes every wrapped product for lag <= lags.
    let len = (n + lags).next_power_of_two().max(2);
    let mut padded = vec![0.0; len];
    padded[..n].copy_from_slice(centered);
    let spectrum = real_fft(&padded);
    let power: Vec<Complex> = spectrum
        .iter()
        .map(|c| Complex::new(c.norm_sqr(), 0.0))
        .collect();
    let sums = inverse_real_fft(&power, len);
    sums[..=lags.min(len - 1)].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(signal: &[f64]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &x) in signal.iter().enumerate() {
                    let angle = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
                    acc = acc.add(Complex::new(angle.cos(), angle.sin()).scale(x));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn real_fft_matches_naive_dft() {
        let signal: Vec<f64> = (0..64)
            .map(|i| ((i * 37 % 11) as f64) - 5.0 + (i as f64 * 0.25).sin())
            .collect();
        let full = naive_dft(&signal);
        let half = real_fft(&signal);
        for (k, bin) in half.iter().enumerate() {
            assert!(
                (bin.re - full[k].re).abs() < 1e-9 && (bin.im - full[k].im).abs() < 1e-9,
                "bin {k}: {bin:?} vs {:?}",
                full[k]
            );
        }
    }

    #[test]
    fn real_fft_roundtrips() {
        for len in [2usize, 4, 8, 64, 256, 1024] {
            let signal: Vec<f64> = (0..len).map(|i| ((i * 7919) % 23) as f64 - 11.0).collect();
            let spectrum = real_fft(&signal);
            let back = inverse_real_fft(&spectrum, len);
            for (a, b) in signal.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "len {len}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn autocorrelation_sums_match_direct_products() {
        let series: Vec<f64> = (0..300).map(|i| ((i % 17) as f64) - 8.0).collect();
        let sums = autocorrelation_sums(&series, 50);
        for (lag, &sum) in sums.iter().enumerate() {
            let direct: f64 = (0..series.len() - lag)
                .map(|i| series[i] * series[i + lag])
                .sum();
            assert!(
                (sum - direct).abs() < 1e-7 * direct.abs().max(1.0),
                "lag {lag}: {sum} vs {direct}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::default(); 12];
        fft_in_place(&mut data, false);
    }
}
