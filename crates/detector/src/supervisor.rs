//! The supervision layer: a crash-safe, self-healing fleet of per-pair
//! online detectors.
//!
//! [`crate::online`] gives one daemon per audited pair; a deployment runs
//! *many* — every suspect trojan/spy pairing on every shared unit — and the
//! audit loop must survive everything a long-horizon, adversarial
//! deployment throws at it. [`Supervisor`] owns the fleet and makes the
//! per-quantum tick crash-safe end to end:
//!
//! * **Per-pair watchdogs** — every pair's analysis runs under
//!   `catch_unwind` (via the thread pool's panic-safe
//!   [`threadpool::par_catch_map_mut`] fan-out) with a deadline budget. A
//!   panic or deadline miss becomes a typed
//!   [`DetectorError::AnalysisPanicked`] /
//!   [`DetectorError::DeadlineExceeded`], counts against that pair alone,
//!   and yields a degraded per-pair report instead of poisoning the batch.
//!   A panicked detector is rebuilt from the checkpoint store (or reset)
//!   so the fleet keeps ticking.
//! * **Retry with deterministic backoff** — a transiently missed probe is
//!   retried up to the configured budget with seeded exponential backoff +
//!   jitter ([`crate::policy::backoff_delay`]); the schedule depends only
//!   on `(seed, pair, tick, attempt)`, so fault-injected runs replay
//!   exactly, before and after a crash-restore.
//! * **Quarantine** — each pair carries a
//!   [`CircuitBreaker`]: pairs whose
//!   failure rate over a sliding window exceeds the threshold are skipped
//!   (with decaying reported confidence) and probed periodically for
//!   recovery, so one broken monitor cannot starve the fleet's audit
//!   budget.
//! * **Crash-safe state** — [`Supervisor::checkpoint`] writes every pair's
//!   sliding window plus a fleet manifest (tick, pair roster, breaker
//!   states) through the CRC-framed, generational
//!   [`CheckpointStore`];
//!   [`Supervisor::restore`] reloads the newest generations that validate,
//!   rolling back over corrupt ones and surfacing every rollback in the
//!   pair status.
//!
//! Determinism contract: given the same config, seed, and probe inputs,
//! a supervisor restored from its checkpoint store at any tick produces
//! the same verdict sequence as one that never crashed. (The deadline
//! watchdog is the one wall-clock element; with a generous budget it never
//! fires and the contract is exact.)

use crate::auditor::ConflictRecord;
use crate::ingest::IngestStats;
use crate::metrics::{
    default_registry, Counter, Family, Gauge, Histogram, Registry, LATENCY_BUCKETS_US,
};
use crate::mitigation::{
    AdvisoryEnforcer, ContainmentState, MitigationConfig, MitigationEnforcer, MitigationPolicy,
};
use crate::online::{Harvest, OnlineContentionDetector, OnlineOscillationDetector, OnlineStatus};
use crate::pipeline::{CcHunterConfig, Verdict};
use crate::policy::{
    backoff_delay, mix_seed, reconcile_quarantine_recovery, BackoffConfig, BreakerState,
    CircuitBreaker, QuarantineConfig,
};
use crate::span::{self, Tracer};
use crate::store::CheckpointStore;
use crate::DetectorError;
use std::fmt;
use std::io::{BufRead, BufReader};
use std::mem::discriminant;
use std::time::Instant;

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Detection parameters shared by every pair's daemon.
    pub hunter: CcHunterConfig,
    /// Sliding-window length (quanta) of every pair's daemon.
    pub window_quanta: usize,
    /// Per-pair analysis deadline budget in microseconds; 0 disables the
    /// deadline watchdog.
    pub deadline_us: u64,
    /// Retry/backoff policy for transiently failing probes.
    pub backoff: BackoffConfig,
    /// Quarantine (circuit-breaker) policy.
    pub quarantine: QuarantineConfig,
    /// Closed-loop mitigation policy (conviction, escalation ladder,
    /// residual-driven step-down).
    pub mitigation: MitigationConfig,
    /// Automatically checkpoint every N ticks when a store is attached
    /// (0 = manual checkpoints only).
    pub checkpoint_every: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            hunter: CcHunterConfig::default(),
            window_quanta: 64,
            deadline_us: 0,
            backoff: BackoffConfig::default(),
            quarantine: QuarantineConfig::default(),
            mitigation: MitigationConfig::default(),
            checkpoint_every: 0,
            seed: 0xCC_4117,
        }
    }
}

/// A chaos-engineering input for exercising the watchdogs: first-class so
/// robustness tests and drills can inject the exact failure modes the
/// supervisor must contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOp {
    /// The pair's analysis panics mid-push.
    Panic,
    /// The pair's analysis stalls for the given number of microseconds
    /// before completing (to trip the deadline watchdog).
    StallUs(u64),
}

/// One pair's harvested input for one tick.
#[derive(Debug, Clone, PartialEq)]
pub enum PairInput {
    /// A contention pair's per-quantum harvest.
    Harvest(Harvest),
    /// An oscillation pair's drained conflict records.
    Conflicts {
        /// The records drained this quantum.
        records: Vec<ConflictRecord>,
        /// Estimated corrupted/lost fraction, in `[0, 1]`.
        lost_fraction: f64,
    },
    /// The probe produced nothing at all (kind-agnostic gap).
    Missed,
    /// An injected failure (see [`ChaosOp`]).
    Chaos(ChaosOp),
}

impl PairInput {
    /// Whether this input is a retryable non-observation.
    fn is_missed(&self) -> bool {
        matches!(
            self,
            PairInput::Missed | PairInput::Harvest(Harvest::Missed)
        )
    }
}

/// A transient probe failure, retried under the backoff policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFault {
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for ProbeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probe fault: {}", self.reason)
    }
}

impl std::error::Error for ProbeFault {}

/// Source of per-pair probe inputs, polled once per pair per tick (plus
/// retries). Implemented for closures
/// `FnMut(pair, tick, attempt) -> Result<PairInput, ProbeFault>`.
pub trait ProbeSource {
    /// Harvests pair `pair`'s input for `tick`; `attempt` is 0 for the
    /// first try and counts up across retries.
    ///
    /// # Errors
    ///
    /// Returns [`ProbeFault`] for a transient failure the supervisor
    /// should retry under its backoff policy.
    fn probe(&mut self, pair: usize, tick: u64, attempt: u32) -> Result<PairInput, ProbeFault>;
}

impl<F> ProbeSource for F
where
    F: FnMut(usize, u64, u32) -> Result<PairInput, ProbeFault>,
{
    fn probe(&mut self, pair: usize, tick: u64, attempt: u32) -> Result<PairInput, ProbeFault> {
        self(pair, tick, attempt)
    }
}

/// The two daemon kinds a pair can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Combinational resource: recurrent-burst daemon.
    Contention,
    /// Memory resource: oscillation daemon.
    Oscillation,
}

impl fmt::Display for PairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairKind::Contention => f.write_str("contention"),
            PairKind::Oscillation => f.write_str("oscillation"),
        }
    }
}

#[derive(Debug)]
enum PairDetector {
    Contention(OnlineContentionDetector),
    Oscillation(OnlineOscillationDetector),
}

/// What [`analyze`] yields for one pair: the post-push status plus
/// whether the quantum was actually observed.
type AnalysisResult = Result<(OnlineStatus, bool), DetectorError>;

/// An [`AnalysisResult`] paired with its elapsed microseconds, as it
/// comes back from the panic-catching fan-out.
type TimedAnalysis = Result<(AnalysisResult, u64), threadpool::JobPanic>;

/// How a panicked pair's detector was brought back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Restored from the checkpoint store.
    RestoredFromStore {
        /// The generation the state came from.
        generation: u64,
    },
    /// No usable checkpoint: the window was reset empty.
    Reset,
}

/// Where a pair's state came from at restore time — surfaced so operators
/// can see that (and how far) a rollback happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoredFrom {
    /// Store generation the state was loaded from.
    pub generation: u64,
    /// Corrupt newer generations skipped to reach it.
    pub rolled_back: usize,
}

#[derive(Debug)]
struct Pair {
    label: String,
    kind: PairKind,
    detector: PairDetector,
    breaker: CircuitBreaker,
    mitigation: MitigationPolicy,
    /// Confidence reported while quarantined; decays per skipped tick.
    quarantine_confidence: f64,
    last_verdict: Verdict,
    restored_from: Option<RestoredFrom>,
    /// Degraded mode: the pair's window provenance is untrusted (e.g. its
    /// checkpoint was unrecoverable after a shard death), so Clean
    /// verdicts floor to [`Verdict::Inconclusive`] — a blinded monitor
    /// must never acquit.
    degraded: bool,
    failures: u64,
    panics: u64,
    deadline_misses: u64,
    retries: u64,
    backoff_waited_us: u64,
}

/// Outcome of one pair's tick.
#[derive(Debug)]
pub enum PairOutcome {
    /// The analysis ran cleanly.
    Analyzed(OnlineStatus),
    /// The analysis produced a status but something went wrong around it
    /// (final probe missed after retries, wrong-kind input, deadline
    /// miss); the window advanced with a gap or the status is tainted.
    Degraded {
        /// The daemon's status after the (gap) push.
        status: OnlineStatus,
        /// The typed cause.
        error: DetectorError,
    },
    /// The pair is quarantined and was skipped this tick.
    Skipped {
        /// The decayed confidence the fleet reports for it.
        confidence: f64,
    },
    /// The analysis panicked; the detector was rebuilt.
    Failed {
        /// The typed cause ([`DetectorError::AnalysisPanicked`]).
        error: DetectorError,
        /// How the pair's detector was brought back.
        recovery: Recovery,
    },
}

/// One pair's report for one tick.
#[derive(Debug)]
pub struct PairReport {
    /// Pair index.
    pub pair: usize,
    /// Pair label.
    pub label: String,
    /// What happened.
    pub outcome: PairOutcome,
    /// Breaker state after the tick.
    pub health: BreakerState,
    /// Containment state after the tick.
    pub containment: ContainmentState,
    /// Probe retries spent this tick.
    pub retries: u32,
    /// Virtual microseconds of backoff delay scheduled this tick.
    pub backoff_us: u64,
}

/// Fleet-wide report for one tick.
#[derive(Debug)]
pub struct TickReport {
    /// The tick that ran (the supervisor's quantum counter before
    /// incrementing).
    pub tick: u64,
    /// Per-pair reports, in pair order.
    pub reports: Vec<PairReport>,
    /// Generation written by this tick's automatic checkpoint, if one ran.
    pub checkpoint_generation: Option<u64>,
    /// Error from this tick's automatic checkpoint, if it failed (the tick
    /// itself still completes).
    pub checkpoint_error: Option<String>,
}

/// A pair's standing in the fleet (for status tables and monitoring).
#[derive(Debug, Clone)]
pub struct PairStatus {
    /// Pair index.
    pub index: usize,
    /// Pair label.
    pub label: String,
    /// Daemon kind.
    pub kind: PairKind,
    /// Breaker state.
    pub health: BreakerState,
    /// Failure rate over the breaker's window.
    pub failure_rate: f64,
    /// The pair's current verdict (last analyzed status).
    pub verdict: Verdict,
    /// Where the pair stands on the containment ladder.
    pub containment: ContainmentState,
    /// Where the pair's state was restored from, if it was.
    pub restored_from: Option<RestoredFrom>,
    /// Whether the pair runs in degraded mode (untrusted window
    /// provenance; Clean verdicts floor to [`Verdict::Inconclusive`]).
    pub degraded: bool,
    /// Total probe/analysis failures recorded.
    pub failures: u64,
    /// Contained analysis panics.
    pub panics: u64,
    /// Deadline misses.
    pub deadline_misses: u64,
    /// Total probe retries.
    pub retries: u64,
}

/// One pair's portable state: everything needed to re-create the pair in
/// another fleet running the same configuration. This is the unit of
/// migration when a shard dies — [`Supervisor::export_pair`] produces one
/// from a live pair, [`Supervisor::recover_pairs`] reads a whole dead
/// fleet's worth back from its checkpoint store, and
/// [`Supervisor::import_pair`] re-creates the pair on a survivor.
///
/// Breaker and containment states travel in their serialized (manifest)
/// form so the importing fleet re-validates them against *its* config —
/// and so an imported active containment comes back flagged for
/// re-assertion through the new fleet's enforcer, exactly like a
/// crash-restore.
#[derive(Debug, Clone)]
pub struct PairSnapshot {
    pub(crate) label: String,
    pub(crate) kind: PairKind,
    /// The detector's window checkpoint. `None` means the window was
    /// unrecoverable: the pair can only be imported degraded.
    pub(crate) window: Option<Vec<u8>>,
    pub(crate) breaker: String,
    pub(crate) mitigation: String,
    pub(crate) quarantine_confidence: f64,
    pub(crate) degraded: bool,
    pub(crate) provenance: Option<RestoredFrom>,
    pub(crate) failures: u64,
    pub(crate) panics: u64,
    pub(crate) deadline_misses: u64,
    pub(crate) retries: u64,
}

impl PairSnapshot {
    /// The pair's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The pair's daemon kind.
    pub fn kind(&self) -> PairKind {
        self.kind
    }

    /// Whether a window checkpoint was recovered for this pair.
    pub fn has_window(&self) -> bool {
        self.window.is_some()
    }

    /// Whether importing this snapshot yields a degraded pair.
    pub fn is_degraded(&self) -> bool {
        self.degraded || self.window.is_none()
    }

    /// Where the snapshot's window came from, when it was read back from
    /// a store.
    pub fn provenance(&self) -> Option<RestoredFrom> {
        self.provenance
    }

    /// Discards the window checkpoint, forcing a degraded import: the
    /// fallback when a snapshot's window fails validation on the
    /// importing fleet.
    pub fn degrade(mut self) -> Self {
        self.window = None;
        self.degraded = true;
        self
    }
}

/// Everything [`Supervisor::recover_pairs`] could read back about a
/// (possibly dead) fleet from its checkpoint store.
#[derive(Debug, Clone)]
pub struct RecoveredFleet {
    /// The tick counter the fleet had checkpointed.
    pub tick: u64,
    /// Manifest provenance (generation loaded, corrupt generations rolled
    /// over).
    pub manifest: RestoredFrom,
    /// Recovered pair snapshots, in the dead fleet's pair order. Pairs
    /// whose windows were unrecoverable are present with
    /// [`PairSnapshot::has_window`] `== false`, never silently dropped.
    pub pairs: Vec<PairSnapshot>,
}

/// Report of a [`Supervisor::restore`]: which generations the fleet state
/// actually came from.
#[derive(Debug, Clone)]
pub struct RestoreReport {
    /// Manifest provenance.
    pub manifest: RestoredFrom,
    /// Per-pair provenance, in pair order.
    pub pairs: Vec<RestoredFrom>,
}

impl RestoreReport {
    /// Total corrupt generations rolled over across manifest and pairs.
    pub fn total_rolled_back(&self) -> usize {
        self.manifest.rolled_back + self.pairs.iter().map(|p| p.rolled_back).sum::<usize>()
    }
}

const MANIFEST_MAGIC: &str = "cchunter-supervisor,v1";
const MANIFEST_NAME: &str = "supervisor";

/// The fleet's registered instrument set (see DESIGN.md §12 for the name
/// and label scheme). Families are labeled by pair label.
#[derive(Debug, Clone)]
struct FleetMetrics {
    ticks: Counter,
    tick_latency_us: Histogram,
    audit_latency_us: Histogram,
    pair_audit_latency_us: Family<Histogram>,
    analyzed: Family<Counter>,
    degraded: Family<Counter>,
    failures: Family<Counter>,
    panics: Family<Counter>,
    deadline_misses: Family<Counter>,
    retries: Family<Counter>,
    backoff_us: Family<Counter>,
    quarantine_skips: Family<Counter>,
    verdict_flips: Family<Counter>,
    breaker_transitions: Family<Counter>,
    recoveries: Family<Counter>,
    confidence: Family<Gauge>,
    covert: Family<Gauge>,
    quarantined: Family<Gauge>,
    mitigations_applied: Family<Counter>,
    mitigation_failures: Family<Counter>,
    mitigation_escalations: Family<Counter>,
    mitigation_stepdowns: Family<Counter>,
    containment_level: Family<Gauge>,
    contained_pairs: Gauge,
    checkpoints: Counter,
    checkpoint_errors: Counter,
    restore_rollbacks: Counter,
    durability_degraded: Gauge,
    shadow_checkpoints: Counter,
    durability_heals: Counter,
}

impl FleetMetrics {
    fn register(registry: &Registry) -> Self {
        const PAIR: &str = "pair";
        FleetMetrics {
            ticks: registry.counter(
                "cchunter_supervisor_ticks_total",
                "Supervised fleet ticks completed.",
            ),
            tick_latency_us: registry.histogram(
                "cchunter_supervisor_tick_latency_us",
                "Wall-clock latency of one supervised fleet tick, in microseconds.",
                &LATENCY_BUCKETS_US,
            ),
            audit_latency_us: registry.histogram(
                "cchunter_audit_latency_us",
                "Per-pair analysis latency, in microseconds.",
                &LATENCY_BUCKETS_US,
            ),
            pair_audit_latency_us: registry.histogram_family(
                "cchunter_pair_audit_latency_us",
                "Per-pair analysis latency, in microseconds, by pair.",
                PAIR,
                &LATENCY_BUCKETS_US,
            ),
            analyzed: registry.counter_family(
                "cchunter_pair_analyzed_total",
                "Clean per-pair analyses.",
                PAIR,
            ),
            degraded: registry.counter_family(
                "cchunter_pair_degraded_total",
                "Degraded per-pair outcomes (gaps, wrong-kind inputs, deadline misses).",
                PAIR,
            ),
            failures: registry.counter_family(
                "cchunter_pair_failures_total",
                "Per-pair probe/analysis failures.",
                PAIR,
            ),
            panics: registry.counter_family(
                "cchunter_pair_panics_total",
                "Contained per-pair analysis panics.",
                PAIR,
            ),
            deadline_misses: registry.counter_family(
                "cchunter_pair_deadline_misses_total",
                "Per-pair deadline watchdog trips.",
                PAIR,
            ),
            retries: registry.counter_family(
                "cchunter_pair_retries_total",
                "Per-pair probe retries.",
                PAIR,
            ),
            backoff_us: registry.counter_family(
                "cchunter_pair_backoff_us_total",
                "Virtual microseconds of retry backoff scheduled per pair.",
                PAIR,
            ),
            quarantine_skips: registry.counter_family(
                "cchunter_pair_quarantine_skips_total",
                "Ticks skipped because the pair was quarantined.",
                PAIR,
            ),
            verdict_flips: registry.counter_family(
                "cchunter_pair_verdict_flips_total",
                "Per-pair verdict changes (clean <-> covert).",
                PAIR,
            ),
            breaker_transitions: registry.counter_family(
                "cchunter_pair_breaker_transitions_total",
                "Per-pair circuit-breaker state transitions.",
                PAIR,
            ),
            recoveries: registry.counter_family(
                "cchunter_pair_recoveries_total",
                "Detector rebuilds after contained panics.",
                PAIR,
            ),
            confidence: registry.gauge_family(
                "cchunter_pair_confidence",
                "The pair's current covert-channel confidence, in [0, 1].",
                PAIR,
            ),
            covert: registry.gauge_family(
                "cchunter_pair_covert",
                "1 when the pair's current verdict is covert, else 0.",
                PAIR,
            ),
            quarantined: registry.gauge_family(
                "cchunter_pair_quarantined",
                "1 when the pair's breaker is open or half-open, else 0.",
                PAIR,
            ),
            mitigations_applied: registry.counter_family(
                "cchunter_pair_mitigations_applied_total",
                "Accepted mitigation enforcement calls, by pair.",
                PAIR,
            ),
            mitigation_failures: registry.counter_family(
                "cchunter_pair_mitigation_failures_total",
                "Refused mitigation enforcement calls (apply or release), by pair.",
                PAIR,
            ),
            mitigation_escalations: registry.counter_family(
                "cchunter_pair_mitigation_escalations_total",
                "Containment-ladder rungs escalated past, by pair.",
                PAIR,
            ),
            mitigation_stepdowns: registry.counter_family(
                "cchunter_pair_mitigation_stepdowns_total",
                "Containment-ladder rungs stepped down, by pair.",
                PAIR,
            ),
            containment_level: registry.gauge_family(
                "cchunter_pair_containment_level",
                "The pair's containment rung (0 inactive, 1 flush-on-switch … 4 deschedule).",
                PAIR,
            ),
            contained_pairs: registry.gauge(
                "cchunter_contained_pairs",
                "Pairs with an active or pending containment.",
            ),
            checkpoints: registry.counter(
                "cchunter_checkpoints_total",
                "Successful fleet checkpoints.",
            ),
            checkpoint_errors: registry.counter(
                "cchunter_checkpoint_errors_total",
                "Failed fleet checkpoint attempts.",
            ),
            restore_rollbacks: registry.counter(
                "cchunter_restore_rollbacks_total",
                "Corrupt checkpoint generations rolled over during restores.",
            ),
            durability_degraded: registry.gauge(
                "cchunter_durability_degraded",
                "1 while checkpoints are shadow-only (storage browning out), else 0.",
            ),
            shadow_checkpoints: registry.counter(
                "cchunter_shadow_checkpoints_total",
                "In-memory shadow checkpoints taken while storage was degraded.",
            ),
            durability_heals: registry.counter(
                "cchunter_durability_heals_total",
                "Durable-write resumptions (full re-persists) after storage healed.",
            ),
        }
    }
}

/// Fleet-local (unregistered) mirrors of the cross-pair aggregates.
///
/// [`Supervisor::metrics_snapshot`] reads these instead of the registry so
/// the digest stays exact for *this* fleet even when several supervisors
/// share the process-wide default registry. Instruments (not plain ints)
/// so `&self` methods like [`Supervisor::checkpoint`] can bump them.
#[derive(Debug)]
struct FleetTotals {
    analyzed: Counter,
    degraded: Counter,
    quarantine_skips: Counter,
    verdict_flips: Counter,
    breaker_transitions: Counter,
    recoveries: Counter,
    checkpoints: Counter,
    checkpoint_errors: Counter,
    restore_rollbacks: Counter,
    shadow_checkpoints: Counter,
    durability_heals: Counter,
    audit_latency_us: Histogram,
    tick_latency_us: Histogram,
}

impl FleetTotals {
    fn new() -> Self {
        FleetTotals {
            analyzed: Counter::new(),
            degraded: Counter::new(),
            quarantine_skips: Counter::new(),
            verdict_flips: Counter::new(),
            breaker_transitions: Counter::new(),
            recoveries: Counter::new(),
            checkpoints: Counter::new(),
            checkpoint_errors: Counter::new(),
            restore_rollbacks: Counter::new(),
            shadow_checkpoints: Counter::new(),
            durability_heals: Counter::new(),
            audit_latency_us: Histogram::latency_us(),
            tick_latency_us: Histogram::latency_us(),
        }
    }
}

/// A compact latency-distribution digest taken from a fixed-bucket
/// histogram; quantiles are bucket-interpolated (see
/// [`Histogram::quantile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean, in microseconds.
    pub mean_us: f64,
    /// Interpolated median, in microseconds.
    pub p50_us: f64,
    /// Interpolated 90th percentile, in microseconds.
    pub p90_us: f64,
    /// Largest observation, in microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    pub(crate) fn from_histogram(h: &Histogram) -> Self {
        LatencySummary {
            count: h.count(),
            mean_us: h.mean(),
            p50_us: h.quantile(0.5),
            p90_us: h.quantile(0.9),
            max_us: h.max(),
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}µs p50={:.1}µs p90={:.1}µs max={:.1}µs",
            self.count, self.mean_us, self.p50_us, self.p90_us, self.max_us
        )
    }
}

/// Ingest-layer totals, summed over every [`IngestStats`] handle attached
/// to the fleet (all zeros when no hardened ingest pipeline is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSnapshot {
    /// Raw events offered to admission queues.
    pub events_offered: u64,
    /// Events shed by admission queues under overload.
    pub events_shed: u64,
    /// Events repaired (reorder-clamped) by sanitizers.
    pub events_repaired: u64,
    /// Hostile events dropped by sanitizers.
    pub events_dropped: u64,
    /// Quanta whose 16-bit accumulators saturated.
    pub saturated_quanta: u64,
    /// Quanta harvested through ingest pipelines.
    pub quanta: u64,
    /// Quanta degraded to partial harvests.
    pub partial_harvests: u64,
    /// Quanta refused outright (biased shedding past tolerance).
    pub missed_harvests: u64,
}

impl IngestSnapshot {
    /// Whether any ingest activity was recorded at all.
    pub fn is_empty(&self) -> bool {
        *self == IngestSnapshot::default()
    }
}

/// A point-in-time numeric digest of one fleet's health, computed from the
/// fleet's own state (exact for this fleet even when the metrics registry
/// is shared process-wide).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Ticks completed.
    pub ticks: u64,
    /// Supervised pairs.
    pub pairs: usize,
    /// Pairs whose breaker is not closed.
    pub quarantined_pairs: usize,
    /// Pairs whose current verdict is covert.
    pub covert_pairs: usize,
    /// Pairs with an active or pending containment.
    pub contained_pairs: usize,
    /// Clean analyses across all pairs and ticks.
    pub analyzed: u64,
    /// Degraded outcomes (gaps, wrong-kind inputs, deadline misses).
    pub degraded: u64,
    /// Probe/analysis failures.
    pub failures: u64,
    /// Contained analysis panics.
    pub panics: u64,
    /// Deadline watchdog trips.
    pub deadline_misses: u64,
    /// Probe retries.
    pub retries: u64,
    /// Ticks skipped under quarantine.
    pub quarantine_skips: u64,
    /// Verdict changes (clean <-> covert).
    pub verdict_flips: u64,
    /// Circuit-breaker state transitions.
    pub breaker_transitions: u64,
    /// Detector rebuilds after contained panics.
    pub recoveries: u64,
    /// Accepted mitigation enforcement calls.
    pub mitigations_applied: u64,
    /// Refused mitigation enforcement calls (apply or release).
    pub mitigation_failures: u64,
    /// Containment-ladder rungs escalated past.
    pub mitigation_escalations: u64,
    /// Containment-ladder rungs stepped down.
    pub mitigation_stepdowns: u64,
    /// Successful checkpoints.
    pub checkpoints: u64,
    /// Failed checkpoint attempts.
    pub checkpoint_errors: u64,
    /// Corrupt generations rolled over during restores.
    pub restore_rollbacks: u64,
    /// Whether checkpoints are currently shadow-only (storage degraded).
    pub durability_degraded: bool,
    /// In-memory shadow checkpoints taken while storage was degraded.
    pub shadow_checkpoints: u64,
    /// Durable-write resumptions (full re-persists) after storage healed.
    pub durability_heals: u64,
    /// Mean covert-channel confidence across pairs.
    pub mean_confidence: f64,
    /// Ingest-layer totals (shedding, sanitization, saturation) from every
    /// attached [`IngestStats`] handle; zeros when none is attached.
    pub ingest: IngestSnapshot,
    /// Per-pair analysis latency distribution.
    pub audit_latency: LatencySummary,
    /// Whole-tick latency distribution.
    pub tick_latency: LatencySummary,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} pairs ({} covert, {} quarantined, {} contained) at tick {}",
            self.pairs, self.covert_pairs, self.quarantined_pairs, self.contained_pairs, self.ticks
        )?;
        writeln!(
            f,
            "  analyzed {}  degraded {}  failures {}  panics {}  deadline misses {}",
            self.analyzed, self.degraded, self.failures, self.panics, self.deadline_misses
        )?;
        writeln!(
            f,
            "  retries {}  quarantine skips {}  verdict flips {}  breaker transitions {}  recoveries {}",
            self.retries,
            self.quarantine_skips,
            self.verdict_flips,
            self.breaker_transitions,
            self.recoveries
        )?;
        writeln!(
            f,
            "  mitigations: {} applied  {} refused  {} escalations  {} step-downs",
            self.mitigations_applied,
            self.mitigation_failures,
            self.mitigation_escalations,
            self.mitigation_stepdowns
        )?;
        writeln!(
            f,
            "  checkpoints {} ({} failed)  restore rollbacks {}  mean confidence {:.3}",
            self.checkpoints, self.checkpoint_errors, self.restore_rollbacks, self.mean_confidence
        )?;
        if self.durability_degraded || self.shadow_checkpoints > 0 {
            writeln!(
                f,
                "  durability: {}  shadow checkpoints {}  heals {}",
                if self.durability_degraded {
                    "DEGRADED (shadow-only)"
                } else {
                    "durable"
                },
                self.shadow_checkpoints,
                self.durability_heals
            )?;
        }
        if !self.ingest.is_empty() {
            writeln!(
                f,
                "  ingest: {} offered  {} shed  {} repaired  {} dropped  {} saturated quanta  {} partial  {} refused",
                self.ingest.events_offered,
                self.ingest.events_shed,
                self.ingest.events_repaired,
                self.ingest.events_dropped,
                self.ingest.saturated_quanta,
                self.ingest.partial_harvests,
                self.ingest.missed_harvests
            )?;
        }
        writeln!(f, "  audit latency: {}", self.audit_latency)?;
        write!(f, "  tick latency:  {}", self.tick_latency)
    }
}

/// Whether the fleet's checkpoints are currently landing on stable
/// storage.
///
/// Under a persistent storage fault (a disk brownout) the supervisor does
/// not wedge and does not silently no-op: it keeps checkpointing *in
/// memory* (shadow checkpoints), reports `Degraded` here and in metrics,
/// and resumes durable writes — with a full re-persist of every pair plus
/// the manifest — the first time the medium heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Checkpoints are landing on stable storage.
    Durable,
    /// Checkpoints are shadow-only (in memory) until the medium heals.
    Degraded {
        /// The tick at which durable writes started failing.
        since_tick: u64,
    },
}

impl Durability {
    /// Whether durable writes are currently suspended.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Durability::Degraded { .. })
    }
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Durability::Durable => f.write_str("durable"),
            Durability::Degraded { since_tick } => {
                write!(f, "degraded (since tick {since_tick})")
            }
        }
    }
}

/// The in-memory stand-in for a durable checkpoint, taken while the
/// storage medium is browning out. Holds exactly the entries a durable
/// checkpoint would have written (every pair's window plus the manifest),
/// so the most recent fleet state survives as long as the process does.
#[derive(Debug, Clone)]
struct ShadowCheckpoint {
    tick: u64,
    entries: Vec<(String, Vec<u8>)>,
}

/// Everything a monitoring page needs about one fleet: the tick counter,
/// every pair's standing, the durability mode, and the numeric digest.
#[derive(Debug, Clone)]
pub struct FleetStatus {
    /// Ticks completed.
    pub tick: u64,
    /// Per-pair standing, in pair order.
    pub pairs: Vec<PairStatus>,
    /// Whether checkpoints are landing durably or shadow-only.
    pub durability: Durability,
    /// The numeric digest.
    pub metrics: MetricsSnapshot,
}

/// The supervised audit service: owns the per-pair daemons, their
/// watchdogs and breakers, and (optionally) a durable checkpoint store.
///
/// ```
/// use cchunter_detector::supervisor::{PairInput, ProbeFault, Supervisor, SupervisorConfig};
/// use cchunter_detector::online::Harvest;
///
/// let mut fleet = Supervisor::new(SupervisorConfig::default()).unwrap();
/// fleet.add_contention_pair("memory-bus: pid 17 <-> pid 23").unwrap();
/// let report = fleet.tick(&mut |_pair: usize, _tick: u64, _attempt: u32| {
///     Ok::<PairInput, ProbeFault>(PairInput::Missed)
/// });
/// assert_eq!(report.reports.len(), 1);
/// ```
#[derive(Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    pairs: Vec<Pair>,
    store: Option<CheckpointStore>,
    tick: u64,
    registry: Registry,
    metrics: FleetMetrics,
    totals: FleetTotals,
    tracer: Tracer,
    ingest_stats: Vec<IngestStats>,
    durability: Durability,
    shadow: Option<ShadowCheckpoint>,
}

impl Supervisor {
    /// Creates an empty fleet. Instruments register in the process-wide
    /// [`default_registry`] and structured events go to the
    /// `CCHUNTER_TRACE`-controlled [`span::global`] tracer; see
    /// [`Supervisor::with_registry`] / [`Supervisor::with_tracer`] to
    /// redirect either.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `window_quanta` is zero.
    pub fn new(config: SupervisorConfig) -> Result<Self, DetectorError> {
        if config.window_quanta == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "supervisor window must hold at least one quantum".to_string(),
            });
        }
        config.mitigation.validate()?;
        let registry = default_registry();
        let metrics = FleetMetrics::register(&registry);
        Ok(Supervisor {
            config,
            pairs: Vec::new(),
            store: None,
            tick: 0,
            registry,
            metrics,
            totals: FleetTotals::new(),
            tracer: span::global().clone(),
            ingest_stats: Vec::new(),
            durability: Durability::Durable,
            shadow: None,
        })
    }

    /// Attaches a durable checkpoint store (builder style).
    pub fn with_store(mut self, store: CheckpointStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Rebinds this fleet's instruments to `registry` (builder style) —
    /// e.g. a fresh [`Registry`] per fleet when exact isolation matters.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.metrics = FleetMetrics::register(&registry);
        self.registry = registry;
        self
    }

    /// Redirects this fleet's structured events to `tracer` (builder
    /// style).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches an ingest pipeline's shared counters (see
    /// [`crate::IngestPipeline::stats`]): the handle's totals are summed
    /// into [`MetricsSnapshot::ingest`] so every shed / sanitize /
    /// saturation event is visible in this fleet's digest. Attach one
    /// handle per pipeline; repeat for each audited pair that routes
    /// through hardened ingest.
    pub fn attach_ingest_stats(&mut self, stats: IngestStats) {
        self.ingest_stats.push(stats);
    }

    /// Builder-style [`Supervisor::attach_ingest_stats`].
    pub fn with_ingest_stats(mut self, stats: IngestStats) -> Self {
        self.attach_ingest_stats(stats);
        self
    }

    /// The registry this fleet's instruments live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The tracer receiving this fleet's structured events.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Renders this fleet's registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// The fleet configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Ticks completed so far.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Number of supervised pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Number of pairs currently running in degraded mode.
    pub fn degraded_pairs(&self) -> usize {
        self.pairs.iter().filter(|p| p.degraded).count()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    fn add_pair(&mut self, label: String, kind: PairKind) -> Result<usize, DetectorError> {
        let detector = self.fresh_detector(kind)?;
        self.pairs.push(Pair {
            label,
            kind,
            detector,
            breaker: CircuitBreaker::new(self.config.quarantine),
            mitigation: MitigationPolicy::new(self.config.mitigation)
                .expect("mitigation config validated at construction"),
            quarantine_confidence: 0.0,
            last_verdict: Verdict::Clean,
            restored_from: None,
            degraded: false,
            failures: 0,
            panics: 0,
            deadline_misses: 0,
            retries: 0,
            backoff_waited_us: 0,
        });
        Ok(self.pairs.len() - 1)
    }

    fn fresh_detector(&self, kind: PairKind) -> Result<PairDetector, DetectorError> {
        Ok(match kind {
            PairKind::Contention => PairDetector::Contention(OnlineContentionDetector::new(
                self.config.hunter,
                self.config.window_quanta,
            )?),
            PairKind::Oscillation => PairDetector::Oscillation(OnlineOscillationDetector::new(
                self.config.hunter,
                self.config.window_quanta,
            )?),
        })
    }

    /// Adds a contention (combinational-resource) pair; returns its index.
    ///
    /// # Errors
    ///
    /// Propagates daemon-construction errors.
    pub fn add_contention_pair(
        &mut self,
        label: impl Into<String>,
    ) -> Result<usize, DetectorError> {
        self.add_pair(label.into(), PairKind::Contention)
    }

    /// Adds an oscillation (memory-resource) pair; returns its index.
    ///
    /// # Errors
    ///
    /// Propagates daemon-construction errors.
    pub fn add_oscillation_pair(
        &mut self,
        label: impl Into<String>,
    ) -> Result<usize, DetectorError> {
        self.add_pair(label.into(), PairKind::Oscillation)
    }

    /// Runs one supervised tick: probes every non-quarantined pair
    /// (retrying transient misses under the backoff policy), fans the
    /// analyses out across the thread pool under the panic/deadline
    /// watchdogs, updates every breaker, and (when due) auto-checkpoints.
    ///
    /// Never panics and never aborts the batch: every per-pair failure is
    /// contained and reported in the returned [`TickReport`].
    ///
    /// Mitigation decisions run against the [`AdvisoryEnforcer`]
    /// (shadow mode); use [`Supervisor::tick_with_enforcer`] to actuate a
    /// real scheduler/hardware backend.
    pub fn tick<S: ProbeSource + ?Sized>(&mut self, source: &mut S) -> TickReport {
        self.tick_with_enforcer(source, &mut AdvisoryEnforcer)
    }

    /// Like [`Supervisor::tick`], but drives each pair's containment
    /// policy through `enforcer`, so convictions actuate real scheduler
    /// and cache-hardware responses (and failed applies escalate the
    /// ladder).
    pub fn tick_with_enforcer<S: ProbeSource + ?Sized, E: MitigationEnforcer + ?Sized>(
        &mut self,
        source: &mut S,
        enforcer: &mut E,
    ) -> TickReport {
        let tick = self.tick;
        let deadline_us = self.config.deadline_us;
        let tick_started = Instant::now();
        let mut tick_span = self.tracer.span("supervisor", "tick");

        // Phase 1 (serial): decide skips, probe with retry + backoff.
        enum Plan {
            Skip {
                confidence: f64,
            },
            Analyze {
                input: PairInput,
                retries: u32,
                backoff_us: u64,
            },
        }
        let mut plans: Vec<Plan> = Vec::with_capacity(self.pairs.len());
        for (idx, pair) in self.pairs.iter_mut().enumerate() {
            if !pair.breaker.should_attempt(tick) {
                pair.quarantine_confidence *= pair.breaker.config().confidence_decay;
                self.metrics.quarantine_skips.with_label(&pair.label).inc();
                self.totals.quarantine_skips.inc();
                self.metrics
                    .confidence
                    .with_label(&pair.label)
                    .set(pair.quarantine_confidence);
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        "supervisor",
                        "quarantine-skip",
                        format_args!(
                            "{} (confidence {:.3})",
                            pair.label, pair.quarantine_confidence
                        ),
                    );
                }
                plans.push(Plan::Skip {
                    confidence: pair.quarantine_confidence,
                });
                continue;
            }
            let seed = mix_seed(self.config.seed, idx as u64, tick);
            let mut attempt: u32 = 0;
            let mut backoff_us: u64 = 0;
            let input = loop {
                let result = source.probe(idx, tick, attempt);
                let retryable = match &result {
                    Ok(input) => input.is_missed(),
                    Err(_) => true,
                };
                if !retryable {
                    break result.expect("non-retryable is Ok");
                }
                match backoff_delay(&self.config.backoff, seed, attempt) {
                    Some(delay) => {
                        // The delay is virtual: the schedule is recorded
                        // (and reproducible), not slept, so supervised
                        // tests replay instantly.
                        backoff_us += delay;
                        attempt += 1;
                    }
                    None => break PairInput::Missed,
                }
            };
            pair.retries += attempt as u64;
            pair.backoff_waited_us += backoff_us;
            if attempt > 0 {
                self.metrics
                    .retries
                    .with_label(&pair.label)
                    .inc_by(attempt as u64);
                self.metrics
                    .backoff_us
                    .with_label(&pair.label)
                    .inc_by(backoff_us);
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        "policy",
                        "retry-backoff",
                        format_args!(
                            "{}: {attempt} retries, {backoff_us} µs scheduled at tick {tick}",
                            pair.label
                        ),
                    );
                }
            }
            plans.push(Plan::Analyze {
                input,
                retries: attempt,
                backoff_us,
            });
        }

        // Phase 2 (parallel): run every planned analysis under the
        // watchdogs. Jobs are per-pair &mut state; a panicking job is
        // contained in its own slot.
        struct Job<'a> {
            pair: &'a mut Pair,
            input: Option<PairInput>,
        }
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut job_index: Vec<usize> = Vec::new();
        for (idx, (pair, plan)) in self.pairs.iter_mut().zip(&mut plans).enumerate() {
            if let Plan::Analyze { input, .. } = plan {
                jobs.push(Job {
                    pair,
                    input: Some(input.clone()),
                });
                job_index.push(idx);
            }
        }
        let results = threadpool::par_catch_map_mut(&mut jobs, |job| {
            let input = job.input.take().expect("input set at plan time");
            let start = Instant::now();
            let pushed = analyze(&mut job.pair.detector, input);
            let elapsed_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            (pushed, elapsed_us)
        });
        drop(jobs);

        // Phase 3 (serial): bookkeeping — breakers, verdicts, recovery.
        let mut analysis_results = job_index.into_iter().zip(results);
        let mut reports = Vec::with_capacity(self.pairs.len());
        for (idx, plan) in plans.into_iter().enumerate() {
            let (retries, backoff_us, result) = match plan {
                Plan::Skip { confidence } => {
                    let pair = &self.pairs[idx];
                    reports.push(PairReport {
                        pair: idx,
                        label: pair.label.clone(),
                        outcome: PairOutcome::Skipped { confidence },
                        health: pair.breaker.state(),
                        containment: pair.mitigation.state(),
                        retries: 0,
                        backoff_us: 0,
                    });
                    continue;
                }
                Plan::Analyze {
                    retries,
                    backoff_us,
                    ..
                } => {
                    let (job_idx, result) =
                        analysis_results.next().expect("one result per planned job");
                    debug_assert_eq!(job_idx, idx);
                    (retries, backoff_us, result)
                }
            };
            let outcome = self.settle_pair(idx, tick, deadline_us, result);
            self.drive_mitigation(idx, tick, enforcer);
            let pair = &self.pairs[idx];
            reports.push(PairReport {
                pair: idx,
                label: pair.label.clone(),
                outcome,
                health: pair.breaker.state(),
                containment: pair.mitigation.state(),
                retries,
                backoff_us,
            });
        }
        self.metrics.contained_pairs.set(
            self.pairs
                .iter()
                .filter(|p| p.mitigation.state().is_active())
                .count() as f64,
        );

        self.tick = tick + 1;

        // Phase 4: automatic checkpoint, if due. Every due tick attempts a
        // full durable checkpoint — while degraded that doubles as the
        // heal probe (success *is* the full re-persist) — and a storage
        // fault degrades durability to in-memory shadows instead of
        // wedging or silently no-opping.
        let mut checkpoint_generation = None;
        let mut checkpoint_error = None;
        if self.store.is_some()
            && self.config.checkpoint_every > 0
            && self.tick.is_multiple_of(self.config.checkpoint_every)
        {
            let (generation, error) = self.checkpoint_or_degrade();
            checkpoint_generation = generation;
            checkpoint_error = error;
        }

        let tick_elapsed_us = tick_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.metrics.ticks.inc();
        self.metrics.tick_latency_us.observe(tick_elapsed_us as f64);
        self.totals.tick_latency_us.observe(tick_elapsed_us as f64);
        if self.tracer.is_enabled() {
            tick_span.detail(format_args!("tick {tick}: {} pairs", reports.len()));
        }
        drop(tick_span);

        TickReport {
            tick,
            reports,
            checkpoint_generation,
            checkpoint_error,
        }
    }

    /// Converts one pair's raw analysis result into its outcome, updating
    /// breaker, verdict, and recovery state.
    fn settle_pair(
        &mut self,
        idx: usize,
        tick: u64,
        deadline_us: u64,
        result: TimedAnalysis,
    ) -> PairOutcome {
        let label = self.pairs[idx].label.clone();
        let breaker_before = self.pairs[idx].breaker.state();
        let verdict_before = self.pairs[idx].last_verdict;
        let outcome = match result {
            Err(panic) => {
                let recovery = self.rebuild_detector(idx);
                let pair = &mut self.pairs[idx];
                pair.panics += 1;
                pair.failures += 1;
                pair.quarantine_confidence = 0.0;
                pair.breaker.record_failure(tick);
                self.metrics.panics.with_label(&label).inc();
                self.metrics.failures.with_label(&label).inc();
                self.metrics.recoveries.with_label(&label).inc();
                self.totals.recoveries.inc();
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        "supervisor",
                        "panic-contained",
                        format_args!("{label}: {} ({recovery:?})", panic.message),
                    );
                }
                PairOutcome::Failed {
                    error: DetectorError::AnalysisPanicked {
                        context: label.clone(),
                        message: panic.message,
                    },
                    recovery,
                }
            }
            Ok((pushed, elapsed_us)) => {
                self.metrics.audit_latency_us.observe(elapsed_us as f64);
                self.metrics
                    .pair_audit_latency_us
                    .with_label(&label)
                    .observe(elapsed_us as f64);
                self.totals.audit_latency_us.observe(elapsed_us as f64);
                let pair = &mut self.pairs[idx];
                let deadline_missed = deadline_us > 0 && elapsed_us > deadline_us;
                match pushed {
                    Ok((mut status, observed)) => {
                        if pair.degraded && status.verdict == Verdict::Clean {
                            status.verdict = Verdict::Inconclusive;
                        }
                        pair.last_verdict = status.verdict;
                        pair.quarantine_confidence = status.confidence;
                        if deadline_missed {
                            pair.deadline_misses += 1;
                            pair.failures += 1;
                            pair.breaker.record_failure(tick);
                            self.metrics.deadline_misses.with_label(&label).inc();
                            self.metrics.failures.with_label(&label).inc();
                            self.metrics.degraded.with_label(&label).inc();
                            self.totals.degraded.inc();
                            if self.tracer.is_enabled() {
                                self.tracer.event(
                                    "supervisor",
                                    "deadline-miss",
                                    format_args!(
                                        "{label}: {elapsed_us} µs > {deadline_us} µs budget"
                                    ),
                                );
                            }
                            PairOutcome::Degraded {
                                status,
                                error: DetectorError::DeadlineExceeded {
                                    context: label.clone(),
                                    budget_us: deadline_us,
                                    elapsed_us,
                                },
                            }
                        } else if observed {
                            pair.breaker.record_success(tick);
                            self.metrics.analyzed.with_label(&label).inc();
                            self.totals.analyzed.inc();
                            PairOutcome::Analyzed(status)
                        } else {
                            // The window advanced with a gap: the analysis
                            // behaved, but the probe ultimately failed.
                            pair.failures += 1;
                            pair.breaker.record_failure(tick);
                            self.metrics.failures.with_label(&label).inc();
                            self.metrics.degraded.with_label(&label).inc();
                            self.totals.degraded.inc();
                            if self.tracer.is_enabled() {
                                self.tracer.event(
                                    "supervisor",
                                    "probe-gap",
                                    format_args!("{label}: probe missed after exhausting retries"),
                                );
                            }
                            PairOutcome::Degraded {
                                status,
                                error: DetectorError::BadHarvest {
                                    reason: "probe missed after exhausting retries".to_string(),
                                },
                            }
                        }
                    }
                    Err(error) => {
                        pair.failures += 1;
                        pair.breaker.record_failure(tick);
                        let mut status = push_gap(&mut pair.detector);
                        if pair.degraded && status.verdict == Verdict::Clean {
                            status.verdict = Verdict::Inconclusive;
                        }
                        pair.last_verdict = status.verdict;
                        pair.quarantine_confidence = status.confidence;
                        self.metrics.failures.with_label(&label).inc();
                        self.metrics.degraded.with_label(&label).inc();
                        self.totals.degraded.inc();
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "supervisor",
                                "analysis-error",
                                format_args!("{label}: {error}"),
                            );
                        }
                        PairOutcome::Degraded { status, error }
                    }
                }
            }
        };
        let pair = &self.pairs[idx];
        let breaker_after = pair.breaker.state();
        if discriminant(&breaker_after) != discriminant(&breaker_before) {
            self.metrics.breaker_transitions.with_label(&label).inc();
            self.totals.breaker_transitions.inc();
        }
        // A quarantined pair leaving quarantine needs its two supervision
        // axes reconciled: without this, a contained pair re-enters full
        // auditing with a decayed confidence and stale verdict streaks
        // (double decay / instant re-escalation; see
        // `policy::reconcile_quarantine_recovery`).
        if let Some(reconciliation) = reconcile_quarantine_recovery(
            breaker_before,
            breaker_after,
            self.pairs[idx].mitigation.is_contained(),
        ) {
            let pair = &mut self.pairs[idx];
            pair.mitigation.reconcile_recovery(reconciliation);
            if reconciliation.restore_confidence {
                // `quarantine_confidence` already tracks the freshly
                // reported status on the success path; clamp out any
                // residue of the quarantine decay for the degraded paths.
                pair.quarantine_confidence = pair.quarantine_confidence.clamp(0.0, 1.0);
            }
            if self.tracer.is_enabled() {
                self.tracer.event(
                    "policy",
                    "quarantine-recovered",
                    format_args!(
                        "{label}: breaker closed, streaks {}",
                        if reconciliation.reset_covert_streak {
                            "reset (contained)"
                        } else {
                            "kept"
                        }
                    ),
                );
            }
        }
        let pair = &self.pairs[idx];
        if pair.last_verdict != verdict_before {
            self.metrics.verdict_flips.with_label(&label).inc();
            self.totals.verdict_flips.inc();
        }
        self.metrics
            .confidence
            .with_label(&label)
            .set(pair.quarantine_confidence);
        self.metrics
            .covert
            .with_label(&label)
            .set(if pair.last_verdict.is_covert() {
                1.0
            } else {
                0.0
            });
        self.metrics
            .quarantined
            .with_label(&label)
            .set(if breaker_after == BreakerState::Closed {
                0.0
            } else {
                1.0
            });
        outcome
    }

    /// Drives one pair's containment state machine with its settled
    /// verdict, actuating through `enforcer` and mirroring the outcome
    /// into metrics and traces.
    fn drive_mitigation<E: MitigationEnforcer + ?Sized>(
        &mut self,
        idx: usize,
        tick: u64,
        enforcer: &mut E,
    ) {
        let covert = self.pairs[idx].last_verdict.is_covert();
        let seed = self.config.seed;
        let label = self.pairs[idx].label.clone();
        let report = self.pairs[idx]
            .mitigation
            .drive(covert, tick, seed, idx, enforcer);
        if report.applied > 0 {
            self.metrics
                .mitigations_applied
                .with_label(&label)
                .inc_by(report.applied as u64);
        }
        if report.apply_failures > 0 {
            self.metrics
                .mitigation_failures
                .with_label(&label)
                .inc_by(report.apply_failures as u64);
        }
        if report.step_downs > 0 {
            self.metrics
                .mitigation_stepdowns
                .with_label(&label)
                .inc_by(report.step_downs as u64);
        }
        if report.escalations > 0 {
            self.metrics
                .mitigation_escalations
                .with_label(&label)
                .inc_by(report.escalations as u64);
            if self.tracer.is_enabled() {
                let mut span = self.tracer.span("mitigation", "escalate");
                span.detail(format_args!(
                    "{label}: {} rung(s) at tick {tick} -> {}",
                    report.escalations, report.state
                ));
            }
        }
        self.metrics
            .containment_level
            .with_label(&label)
            .set(report.state.level().map_or(0.0, |l| f64::from(l.rank())));
        if self.tracer.is_enabled() {
            if report.convicted {
                self.tracer.event(
                    "mitigation",
                    "convicted",
                    format_args!("{label}: covert streak reached at tick {tick}"),
                );
            }
            if report.step_downs > 0 {
                self.tracer.event(
                    "mitigation",
                    "step-down",
                    format_args!("{label}: -> {} at tick {tick}", report.state),
                );
            }
            if report.stuck {
                self.tracer.event(
                    "mitigation",
                    "stuck",
                    format_args!("{label}: ladder exhausted, top rung not in force at tick {tick}"),
                );
            }
        }
    }

    /// Feeds a post-mitigation re-measurement into `pair`'s containment
    /// policy: `residual_fraction` is the channel's goodput as a fraction
    /// of its unmitigated baseline, `overhead_fraction` the benign
    /// co-runner slowdown (see [`ResidualProbe`](crate::ResidualProbe)).
    /// A residual under the configured cap lets the policy step the ladder
    /// down; one above it escalates.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range pair
    /// index or a non-finite fraction.
    pub fn report_residual(
        &mut self,
        pair: usize,
        residual_fraction: f64,
        overhead_fraction: f64,
    ) -> Result<(), DetectorError> {
        if !residual_fraction.is_finite() || !overhead_fraction.is_finite() {
            return Err(DetectorError::InvalidConfig {
                reason: "residual and overhead fractions must be finite".to_string(),
            });
        }
        let tick = self.tick;
        let pair = self
            .pairs
            .get_mut(pair)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("no supervised pair {pair}"),
            })?;
        pair.mitigation
            .record_residual(crate::mitigation::ResidualReading {
                residual_fraction: residual_fraction.clamp(0.0, 1.0),
                overhead_fraction: overhead_fraction.clamp(0.0, 1.0),
                tick,
            });
        if self.tracer.is_enabled() {
            self.tracer.event(
                "mitigation",
                "residual",
                format_args!(
                    "{}: residual {:.3} of baseline, overhead {:.3}",
                    pair.label, residual_fraction, overhead_fraction
                ),
            );
        }
        Ok(())
    }

    /// One pair's containment standing (None for an out-of-range index).
    pub fn containment(&self, pair: usize) -> Option<ContainmentState> {
        self.pairs.get(pair).map(|p| p.mitigation.state())
    }

    /// One pair's detection-to-containment latency in ticks, once the
    /// current episode's first rung has taken force.
    pub fn containment_latency_ticks(&self, pair: usize) -> Option<u64> {
        self.pairs
            .get(pair)
            .and_then(|p| p.mitigation.containment_latency_ticks())
    }

    /// Brings a panicked pair's detector back: from the store when
    /// possible, otherwise a fresh (empty-window) daemon. Never fails —
    /// a rebuild error degrades to the reset path.
    fn rebuild_detector(&mut self, idx: usize) -> Recovery {
        let kind = self.pairs[idx].kind;
        if let Some(store) = &self.store {
            if let Ok(Some(loaded)) = store.load_latest(&pair_entry_name(idx)) {
                let restored = match kind {
                    PairKind::Contention => OnlineContentionDetector::restore(
                        self.config.hunter,
                        loaded.payload.as_slice(),
                    )
                    .map(PairDetector::Contention),
                    PairKind::Oscillation => OnlineOscillationDetector::restore(
                        self.config.hunter,
                        loaded.payload.as_slice(),
                    )
                    .map(PairDetector::Oscillation),
                };
                if let Ok(detector) = restored {
                    self.pairs[idx].detector = detector;
                    self.pairs[idx].restored_from = Some(RestoredFrom {
                        generation: loaded.generation,
                        rolled_back: loaded.rolled_back,
                    });
                    return Recovery::RestoredFromStore {
                        generation: loaded.generation,
                    };
                }
            }
        }
        let fresh = self
            .fresh_detector(kind)
            .expect("config validated at construction");
        self.pairs[idx].detector = fresh;
        Recovery::Reset
    }

    /// The fleet's current standing, pair by pair.
    pub fn pair_statuses(&self) -> Vec<PairStatus> {
        self.pairs
            .iter()
            .enumerate()
            .map(|(index, pair)| PairStatus {
                index,
                label: pair.label.clone(),
                kind: pair.kind,
                health: pair.breaker.state(),
                failure_rate: pair.breaker.failure_rate(),
                verdict: pair.last_verdict,
                containment: pair.mitigation.state(),
                restored_from: pair.restored_from,
                degraded: pair.degraded,
                failures: pair.failures,
                panics: pair.panics,
                deadline_misses: pair.deadline_misses,
                retries: pair.retries,
            })
            .collect()
    }

    /// Whether `pair` runs in degraded mode (None for an out-of-range
    /// index).
    pub fn is_degraded(&self, pair: usize) -> Option<bool> {
        self.pairs.get(pair).map(|p| p.degraded)
    }

    /// Marks `pair` degraded (or lifts the mark): while degraded, the
    /// pair's Clean verdicts floor to [`Verdict::Inconclusive`] because
    /// its window provenance is untrusted. The supervision layers set this
    /// when a pair is imported without a recoverable checkpoint; lifting
    /// it is an operator decision.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index.
    pub fn set_degraded(&mut self, pair: usize, degraded: bool) -> Result<(), DetectorError> {
        let entry = self
            .pairs
            .get_mut(pair)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("no supervised pair {pair}"),
            })?;
        entry.degraded = degraded;
        if degraded && entry.last_verdict == Verdict::Clean {
            entry.last_verdict = Verdict::Inconclusive;
        }
        Ok(())
    }

    /// Durably checkpoints the whole fleet (every pair's window plus the
    /// manifest) to the attached store. Returns the manifest's new
    /// generation.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] when no store is attached
    /// and any store/serialization error. A failed checkpoint never
    /// corrupts previously stored generations (every write is atomic).
    pub fn checkpoint(&self) -> Result<u64, DetectorError> {
        let store = self.store.as_ref().ok_or(DetectorError::InvalidConfig {
            reason: "no checkpoint store attached".to_string(),
        })?;
        let entries = self.build_checkpoint_entries()?;
        let mut generation = 0;
        for (name, payload) in &entries {
            // The manifest is last in the entry list, so the returned
            // generation is the manifest's.
            generation = store.save(name, payload)?;
        }
        // Drop a Prometheus-text metrics dump next to the checkpoint so the
        // fleet's last known state is scrapeable post-mortem.
        store.write_sidecar("metrics.prom", self.registry.render_prometheus().as_bytes())?;
        self.metrics.checkpoints.inc();
        self.totals.checkpoints.inc();
        if self.tracer.is_enabled() {
            self.tracer.event(
                "supervisor",
                "checkpoint",
                format_args!("generation {generation} at tick {}", self.tick),
            );
        }
        Ok(generation)
    }

    /// Serializes everything one durable checkpoint writes — every pair's
    /// window, then the manifest (always last) — without touching storage.
    /// The shared substrate of [`Supervisor::checkpoint`] and the shadow
    /// checkpoints of durability-degraded mode.
    fn build_checkpoint_entries(&self) -> Result<Vec<(String, Vec<u8>)>, DetectorError> {
        let mut entries = Vec::with_capacity(self.pairs.len() + 1);
        for (idx, pair) in self.pairs.iter().enumerate() {
            let mut payload = Vec::new();
            match &pair.detector {
                PairDetector::Contention(d) => d.checkpoint(&mut payload)?,
                PairDetector::Oscillation(d) => d.checkpoint(&mut payload)?,
            }
            entries.push((pair_entry_name(idx), payload));
        }
        let mut manifest = String::new();
        manifest.push_str(MANIFEST_MAGIC);
        manifest.push('\n');
        manifest.push_str(&format!("tick,{}\n", self.tick));
        manifest.push_str(&format!("pairs,{}\n", self.pairs.len()));
        for (idx, pair) in self.pairs.iter().enumerate() {
            manifest.push_str(&format!(
                "pair,{idx},{},{},{},{},{},{},{},{}\n",
                pair.kind,
                pair.breaker.serialize(),
                pair.quarantine_confidence,
                pair.failures,
                pair.panics,
                pair.deadline_misses,
                pair.retries,
                pair.label
            ));
            // Containment state rides in its own tagged line (after its
            // pair line) so v1 manifests without it still parse.
            manifest.push_str(&format!("mit,{idx},{}\n", pair.mitigation.serialize()));
            // Degraded mode likewise: optional, absent in older manifests.
            if pair.degraded {
                manifest.push_str(&format!("deg,{idx}\n"));
            }
        }
        manifest.push_str("end\n");
        entries.push((MANIFEST_NAME.to_string(), manifest.into_bytes()));
        Ok(entries)
    }

    /// The Phase-4 checkpoint attempt with durability-degraded fallback:
    /// on success (re-)enters [`Durability::Durable`] (a success while
    /// degraded *is* the full re-persist — every pair plus the manifest
    /// was just rewritten); on a storage fault enters or stays in
    /// [`Durability::Degraded`] and takes an in-memory shadow checkpoint
    /// so the freshest fleet state still survives as long as the process
    /// does. Non-storage errors (serialization bugs) only count as
    /// checkpoint errors — they say nothing about the medium.
    fn checkpoint_or_degrade(&mut self) -> (Option<u64>, Option<String>) {
        match self.checkpoint() {
            Ok(generation) => {
                if let Durability::Degraded { since_tick } = self.durability {
                    self.durability = Durability::Durable;
                    self.shadow = None;
                    self.metrics.durability_degraded.set(0.0);
                    self.metrics.durability_heals.inc();
                    self.totals.durability_heals.inc();
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "supervisor",
                            "durability-healed",
                            format_args!(
                                "full re-persist at tick {} (degraded since tick {since_tick})",
                                self.tick
                            ),
                        );
                    }
                }
                (Some(generation), None)
            }
            Err(e) => {
                self.metrics.checkpoint_errors.inc();
                self.totals.checkpoint_errors.inc();
                if self.tracer.is_enabled() {
                    self.tracer.event("supervisor", "checkpoint-error", &e);
                }
                if matches!(e, DetectorError::StorageFault { .. }) {
                    if !self.durability.is_degraded() {
                        self.durability = Durability::Degraded {
                            since_tick: self.tick,
                        };
                        self.metrics.durability_degraded.set(1.0);
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "supervisor",
                                "durability-degraded",
                                format_args!("checkpoints shadow-only from tick {}", self.tick),
                            );
                        }
                    }
                    // The failed durable attempt may have persisted a prefix
                    // of the pairs; the shadow holds the complete set.
                    if let Ok(entries) = self.build_checkpoint_entries() {
                        self.shadow = Some(ShadowCheckpoint {
                            tick: self.tick,
                            entries,
                        });
                        self.metrics.shadow_checkpoints.inc();
                        self.totals.shadow_checkpoints.inc();
                    }
                }
                (None, Some(e.to_string()))
            }
        }
    }

    /// Whether checkpoints are currently landing durably or shadow-only.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The tick of the freshest in-memory shadow checkpoint, when storage
    /// is (or recently was) degraded.
    pub fn shadow_checkpoint_tick(&self) -> Option<u64> {
        self.shadow.as_ref().map(|s| s.tick)
    }

    /// The freshest shadow checkpoint's entries — exactly what a durable
    /// checkpoint would have written (`pair-NNNN` payloads then the
    /// manifest) — so an operator can spool fleet state to a healthy
    /// medium while the primary one browns out.
    pub fn shadow_checkpoint_entries(&self) -> Option<&[(String, Vec<u8>)]> {
        self.shadow.as_ref().map(|s| s.entries.as_slice())
    }

    /// Removes `pair` from this fleet and returns its portable snapshot
    /// (the drain/rebalance primitive: export, then excise). The removal
    /// is `swap_remove` — the *last* pair takes the removed pair's index,
    /// and the caller owns fixing any external index maps.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index
    /// and propagates window-serialization errors (in which case the pair
    /// is *not* removed).
    pub fn remove_pair(&mut self, pair: usize) -> Result<PairSnapshot, DetectorError> {
        let snapshot = self.export_pair(pair)?;
        self.pairs.swap_remove(pair);
        Ok(snapshot)
    }

    /// Exports one pair's portable state (see [`PairSnapshot`]) for
    /// migration to another fleet. The source pair is left untouched;
    /// removing it (usually by dropping the whole dead fleet) is the
    /// caller's concern.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an out-of-range index
    /// and propagates window-serialization errors.
    pub fn export_pair(&self, pair: usize) -> Result<PairSnapshot, DetectorError> {
        let p = self
            .pairs
            .get(pair)
            .ok_or_else(|| DetectorError::InvalidConfig {
                reason: format!("no supervised pair {pair}"),
            })?;
        let mut window = Vec::new();
        match &p.detector {
            PairDetector::Contention(d) => d.checkpoint(&mut window)?,
            PairDetector::Oscillation(d) => d.checkpoint(&mut window)?,
        }
        Ok(PairSnapshot {
            label: p.label.clone(),
            kind: p.kind,
            window: Some(window),
            breaker: p.breaker.serialize(),
            mitigation: p.mitigation.serialize(),
            quarantine_confidence: p.quarantine_confidence,
            degraded: p.degraded,
            provenance: p.restored_from,
            failures: p.failures,
            panics: p.panics,
            deadline_misses: p.deadline_misses,
            retries: p.retries,
        })
    }

    /// Imports a migrated pair into this fleet, appending it at the next
    /// index and seeding its per-pair instruments. A snapshot without a
    /// window (or marked degraded) comes in with a fresh empty window and
    /// runs degraded — its Clean verdicts floor to
    /// [`Verdict::Inconclusive`]. An imported active containment is
    /// re-asserted through this fleet's enforcer on the next tick.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::CheckpointMismatch`] when the snapshot's
    /// breaker/containment state cannot be decoded under this fleet's
    /// config, or its window fails validation (wrong kind or capacity) —
    /// callers that must not lose the pair retry with
    /// [`PairSnapshot::degrade`].
    pub fn import_pair(&mut self, snapshot: PairSnapshot) -> Result<usize, DetectorError> {
        let breaker = CircuitBreaker::deserialize(self.config.quarantine, &snapshot.breaker)
            .ok_or_else(|| DetectorError::CheckpointMismatch {
                reason: format!("pair {:?}: undecodable breaker state", snapshot.label),
            })?;
        let mitigation =
            MitigationPolicy::deserialize(self.config.mitigation, &snapshot.mitigation)
                .ok_or_else(|| DetectorError::CheckpointMismatch {
                    reason: format!("pair {:?}: undecodable containment state", snapshot.label),
                })?;
        let (detector, degraded) = match &snapshot.window {
            Some(payload) if !snapshot.degraded => {
                let detector = match snapshot.kind {
                    PairKind::Contention => PairDetector::Contention(
                        OnlineContentionDetector::restore(self.config.hunter, payload.as_slice())?,
                    ),
                    PairKind::Oscillation => PairDetector::Oscillation(
                        OnlineOscillationDetector::restore(self.config.hunter, payload.as_slice())?,
                    ),
                };
                let capacity = match &detector {
                    PairDetector::Contention(d) => d.capacity(),
                    PairDetector::Oscillation(d) => d.capacity(),
                };
                let expected = self.config.window_quanta.min(512);
                if capacity != expected {
                    return Err(DetectorError::CheckpointMismatch {
                        reason: format!(
                            "pair {:?}: window capacity {capacity} does not match the configured {expected}",
                            snapshot.label
                        ),
                    });
                }
                (detector, false)
            }
            _ => (self.fresh_detector(snapshot.kind)?, true),
        };
        self.pairs.push(Pair {
            label: snapshot.label,
            kind: snapshot.kind,
            detector,
            breaker,
            mitigation,
            quarantine_confidence: if degraded {
                0.0
            } else {
                snapshot.quarantine_confidence
            },
            // Until the adoptive fleet's first analysis, the pair's
            // standing is unknown here — reporting Clean would let a
            // migration silently acquit a convicted pair.
            last_verdict: Verdict::Inconclusive,
            restored_from: snapshot.provenance,
            degraded,
            failures: snapshot.failures,
            panics: snapshot.panics,
            deadline_misses: snapshot.deadline_misses,
            retries: snapshot.retries,
            backoff_waited_us: 0,
        });
        let idx = self.pairs.len() - 1;
        self.seed_pair_metrics(&self.pairs[idx]);
        if self.tracer.is_enabled() {
            self.tracer.event(
                "supervisor",
                "pair-imported",
                format_args!(
                    "{} as pair {idx}{}",
                    self.pairs[idx].label,
                    if degraded { " (degraded)" } else { "" }
                ),
            );
        }
        Ok(idx)
    }

    /// Reads everything recoverable about a (possibly dead) fleet out of
    /// its checkpoint store without constructing a `Supervisor`: the
    /// newest valid manifest generation, then every listed pair's newest
    /// valid window, rolling back over corrupt generations. Pairs whose
    /// windows are unrecoverable are returned without a window (forcing a
    /// degraded import), never dropped — the migration path's zero-lost-
    /// pairs guarantee starts here.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::CheckpointMismatch`] when the store has no
    /// manifest at all, manifest parse errors, and config-validation
    /// errors; per-pair window failures degrade instead of erroring.
    pub fn recover_pairs(
        config: &SupervisorConfig,
        store: &CheckpointStore,
    ) -> Result<RecoveredFleet, DetectorError> {
        config.mitigation.validate()?;
        let loaded =
            store
                .load_latest(MANIFEST_NAME)?
                .ok_or(DetectorError::CheckpointMismatch {
                    reason: "store has no supervisor manifest".to_string(),
                })?;
        let manifest_from = RestoredFrom {
            generation: loaded.generation,
            rolled_back: loaded.rolled_back,
        };
        let manifest = parse_manifest(&loaded.payload, config.quarantine, config.mitigation)?;
        let fallback_policy = MitigationPolicy::new(config.mitigation)?;
        let mut pairs = Vec::with_capacity(manifest.pairs.len());
        for (idx, entry) in manifest.pairs.into_iter().enumerate() {
            let (window, provenance) = match store.load_latest(&pair_entry_name(idx)) {
                Ok(Some(l)) => {
                    let provenance = RestoredFrom {
                        generation: l.generation,
                        rolled_back: l.rolled_back,
                    };
                    (Some(l.payload), Some(provenance))
                }
                Ok(None) | Err(_) => (None, None),
            };
            let degraded = entry.degraded || window.is_none();
            pairs.push(PairSnapshot {
                label: entry.label,
                kind: entry.kind,
                window,
                breaker: entry.breaker.serialize(),
                mitigation: entry
                    .mitigation
                    .as_ref()
                    .unwrap_or(&fallback_policy)
                    .serialize(),
                quarantine_confidence: entry.quarantine_confidence,
                degraded,
                provenance,
                failures: entry.failures,
                panics: entry.panics,
                deadline_misses: entry.deadline_misses,
                retries: entry.retries,
            });
        }
        Ok(RecoveredFleet {
            tick: manifest.tick,
            manifest: manifest_from,
            pairs,
        })
    }

    /// This fleet's private latency totals (audit, tick) for hierarchical
    /// rollups.
    pub(crate) fn totals_latency(&self) -> (&Histogram, &Histogram) {
        (&self.totals.audit_latency_us, &self.totals.tick_latency_us)
    }

    /// A point-in-time numeric digest of this fleet's health. Monotonic
    /// event totals survive checkpoint/restore (re-seeded from the
    /// manifest); latency distributions restart per process.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut failures = 0u64;
        let mut panics = 0u64;
        let mut deadline_misses = 0u64;
        let mut retries = 0u64;
        let mut quarantined_pairs = 0usize;
        let mut covert_pairs = 0usize;
        let mut contained_pairs = 0usize;
        let mut confidence_sum = 0.0f64;
        let mut mitigations_applied = 0u64;
        let mut mitigation_failures = 0u64;
        let mut mitigation_escalations = 0u64;
        let mut mitigation_stepdowns = 0u64;
        for pair in &self.pairs {
            failures += pair.failures;
            panics += pair.panics;
            deadline_misses += pair.deadline_misses;
            retries += pair.retries;
            if pair.breaker.state() != BreakerState::Closed {
                quarantined_pairs += 1;
            }
            if pair.last_verdict.is_covert() {
                covert_pairs += 1;
            }
            if pair.mitigation.state().is_active() {
                contained_pairs += 1;
            }
            mitigations_applied += pair.mitigation.applies();
            mitigation_failures += pair.mitigation.apply_failures();
            mitigation_escalations += pair.mitigation.escalations();
            mitigation_stepdowns += pair.mitigation.step_downs();
            confidence_sum += pair.quarantine_confidence;
        }
        MetricsSnapshot {
            ticks: self.tick,
            pairs: self.pairs.len(),
            quarantined_pairs,
            covert_pairs,
            contained_pairs,
            analyzed: self.totals.analyzed.get(),
            degraded: self.totals.degraded.get(),
            failures,
            panics,
            deadline_misses,
            retries,
            quarantine_skips: self.totals.quarantine_skips.get(),
            verdict_flips: self.totals.verdict_flips.get(),
            breaker_transitions: self.totals.breaker_transitions.get(),
            recoveries: self.totals.recoveries.get(),
            mitigations_applied,
            mitigation_failures,
            mitigation_escalations,
            mitigation_stepdowns,
            checkpoints: self.totals.checkpoints.get(),
            checkpoint_errors: self.totals.checkpoint_errors.get(),
            restore_rollbacks: self.totals.restore_rollbacks.get(),
            durability_degraded: self.durability.is_degraded(),
            shadow_checkpoints: self.totals.shadow_checkpoints.get(),
            durability_heals: self.totals.durability_heals.get(),
            mean_confidence: if self.pairs.is_empty() {
                0.0
            } else {
                confidence_sum / self.pairs.len() as f64
            },
            ingest: self.ingest_totals(),
            audit_latency: LatencySummary::from_histogram(&self.totals.audit_latency_us),
            tick_latency: LatencySummary::from_histogram(&self.totals.tick_latency_us),
        }
    }

    /// Sums every attached [`IngestStats`] handle into one digest.
    fn ingest_totals(&self) -> IngestSnapshot {
        let mut out = IngestSnapshot::default();
        for stats in &self.ingest_stats {
            out.events_offered += stats.events_offered.get();
            out.events_shed += stats.events_shed.get();
            out.events_repaired += stats.events_repaired.get();
            out.events_dropped += stats.events_dropped.get();
            out.saturated_quanta += stats.saturated_quanta.get();
            out.quanta += stats.quanta.get();
            out.partial_harvests += stats.partial_harvests.get();
            out.missed_harvests += stats.missed_harvests.get();
        }
        out
    }

    /// The whole fleet's standing for a monitoring page: tick counter,
    /// per-pair table, and the numeric digest.
    pub fn fleet_status(&self) -> FleetStatus {
        FleetStatus {
            tick: self.tick,
            pairs: self.pair_statuses(),
            durability: self.durability,
            metrics: self.metrics_snapshot(),
        }
    }

    /// Restores a whole fleet from `store`: loads the newest valid
    /// manifest generation, then every pair's newest valid window, rolling
    /// back over corrupt generations and reporting the provenance of
    /// everything that was loaded.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::CorruptCheckpoint`] when an entry exists
    /// but no generation validates, [`DetectorError::CheckpointMismatch`]
    /// when the stored state is incompatible with `config` (e.g. a window
    /// capacity that differs from `config.window_quanta`), and
    /// [`DetectorError::Trace`] on manifest parse failures. The recovery
    /// path never panics.
    pub fn restore(
        config: SupervisorConfig,
        store: CheckpointStore,
    ) -> Result<(Self, RestoreReport), DetectorError> {
        Self::restore_with_registry(config, store, default_registry())
    }

    /// Like [`Supervisor::restore`], but binds the restored fleet's
    /// instruments to `registry` instead of the process-wide default.
    /// Persisted monotonic counters (failures, panics, deadline misses,
    /// retries, the tick count) re-seed their instruments so scrapes stay
    /// monotonic across the crash.
    ///
    /// # Errors
    ///
    /// As for [`Supervisor::restore`].
    pub fn restore_with_registry(
        config: SupervisorConfig,
        store: CheckpointStore,
        registry: Registry,
    ) -> Result<(Self, RestoreReport), DetectorError> {
        let mut fleet = Supervisor::new(config)?.with_registry(registry);
        let loaded =
            store
                .load_latest(MANIFEST_NAME)?
                .ok_or(DetectorError::CheckpointMismatch {
                    reason: "store has no supervisor manifest".to_string(),
                })?;
        let manifest_from = RestoredFrom {
            generation: loaded.generation,
            rolled_back: loaded.rolled_back,
        };
        let manifest = parse_manifest(&loaded.payload, config.quarantine, config.mitigation)?;
        fleet.tick = manifest.tick;

        let mut pair_provenance = Vec::with_capacity(manifest.pairs.len());
        for (idx, entry) in manifest.pairs.into_iter().enumerate() {
            let pair_loaded = store.load_latest(&pair_entry_name(idx))?.ok_or_else(|| {
                DetectorError::CheckpointMismatch {
                    reason: format!("manifest lists pair {idx} but the store has no window for it"),
                }
            })?;
            let detector = match entry.kind {
                PairKind::Contention => {
                    PairDetector::Contention(OnlineContentionDetector::restore(
                        config.hunter,
                        pair_loaded.payload.as_slice(),
                    )?)
                }
                PairKind::Oscillation => {
                    PairDetector::Oscillation(OnlineOscillationDetector::restore(
                        config.hunter,
                        pair_loaded.payload.as_slice(),
                    )?)
                }
            };
            let capacity = match &detector {
                PairDetector::Contention(d) => d.capacity(),
                PairDetector::Oscillation(d) => d.capacity(),
            };
            let expected = config.window_quanta.min(512);
            if capacity != expected {
                return Err(DetectorError::CheckpointMismatch {
                    reason: format!(
                        "pair {idx} window capacity {capacity} does not match the configured {expected}"
                    ),
                });
            }
            let restored_from = RestoredFrom {
                generation: pair_loaded.generation,
                rolled_back: pair_loaded.rolled_back,
            };
            fleet.pairs.push(Pair {
                label: entry.label,
                kind: entry.kind,
                detector,
                breaker: entry.breaker,
                // Pre-mitigation (v1) manifests restore with an idle
                // policy; an active containment comes back flagged for
                // re-assertion through the enforcer.
                mitigation: entry.mitigation.unwrap_or(
                    MitigationPolicy::new(config.mitigation)
                        .expect("mitigation config validated at construction"),
                ),
                quarantine_confidence: entry.quarantine_confidence,
                // A degraded pair must not come back silently Clean.
                last_verdict: if entry.degraded {
                    Verdict::Inconclusive
                } else {
                    Verdict::Clean
                },
                restored_from: Some(restored_from),
                degraded: entry.degraded,
                failures: entry.failures,
                panics: entry.panics,
                deadline_misses: entry.deadline_misses,
                retries: entry.retries,
                backoff_waited_us: 0,
            });
            pair_provenance.push(restored_from);
        }
        fleet.store = Some(store);
        let report = RestoreReport {
            manifest: manifest_from,
            pairs: pair_provenance,
        };
        fleet.seed_restored_metrics(&report);
        Ok((fleet, report))
    }

    /// Re-seeds registered instruments from counters that survived in the
    /// manifest, so a restored fleet's scrape picks up where the crashed
    /// one left off. `Counter::seed` is a max-merge, so re-seeding into a
    /// registry that already saw this fleet never double-counts.
    fn seed_restored_metrics(&self, report: &RestoreReport) {
        self.metrics.ticks.seed(self.tick);
        let rolled_back = report.total_rolled_back() as u64;
        if rolled_back > 0 {
            self.metrics.restore_rollbacks.inc_by(rolled_back);
            self.totals.restore_rollbacks.inc_by(rolled_back);
        }
        for pair in &self.pairs {
            self.seed_pair_metrics(pair);
        }
        self.metrics.contained_pairs.set(
            self.pairs
                .iter()
                .filter(|p| p.mitigation.state().is_active())
                .count() as f64,
        );
        if self.tracer.is_enabled() {
            self.tracer.event(
                "supervisor",
                "restore",
                format_args!(
                    "{} pairs at tick {}, {rolled_back} generations rolled back",
                    self.pairs.len(),
                    self.tick
                ),
            );
        }
    }

    /// Seeds one pair's per-pair instruments from its persisted counters
    /// and current state — shared by whole-fleet restore and single-pair
    /// import. `Counter::seed` is a max-merge, so re-seeding never
    /// double-counts.
    fn seed_pair_metrics(&self, pair: &Pair) {
        self.metrics
            .failures
            .with_label(&pair.label)
            .seed(pair.failures);
        self.metrics
            .panics
            .with_label(&pair.label)
            .seed(pair.panics);
        self.metrics
            .deadline_misses
            .with_label(&pair.label)
            .seed(pair.deadline_misses);
        self.metrics
            .retries
            .with_label(&pair.label)
            .seed(pair.retries);
        self.metrics
            .confidence
            .with_label(&pair.label)
            .set(pair.quarantine_confidence);
        self.metrics.quarantined.with_label(&pair.label).set(
            if pair.breaker.state() == BreakerState::Closed {
                0.0
            } else {
                1.0
            },
        );
        self.metrics
            .mitigations_applied
            .with_label(&pair.label)
            .seed(pair.mitigation.applies());
        self.metrics
            .mitigation_failures
            .with_label(&pair.label)
            .seed(pair.mitigation.apply_failures());
        self.metrics
            .mitigation_escalations
            .with_label(&pair.label)
            .seed(pair.mitigation.escalations());
        self.metrics
            .mitigation_stepdowns
            .with_label(&pair.label)
            .seed(pair.mitigation.step_downs());
        self.metrics.containment_level.with_label(&pair.label).set(
            pair.mitigation
                .state()
                .level()
                .map_or(0.0, |l| f64::from(l.rank())),
        );
    }
}

fn pair_entry_name(idx: usize) -> String {
    format!("pair-{idx:04}")
}

/// Runs one input through a pair's detector. The bool reports whether the
/// quantum was actually observed (false = gap). May panic only for
/// [`ChaosOp::Panic`] — which the caller contains.
fn analyze(
    detector: &mut PairDetector,
    input: PairInput,
) -> Result<(OnlineStatus, bool), DetectorError> {
    match (detector, input) {
        (PairDetector::Contention(d), PairInput::Harvest(h)) => {
            let observed = !matches!(h, Harvest::Missed);
            Ok((d.push_quantum(h), observed))
        }
        (
            PairDetector::Oscillation(d),
            PairInput::Conflicts {
                records,
                lost_fraction,
            },
        ) => Ok((d.push_quantum_degraded(&records, lost_fraction), true)),
        (PairDetector::Contention(d), PairInput::Missed) => {
            Ok((d.push_quantum(Harvest::Missed), false))
        }
        (PairDetector::Oscillation(d), PairInput::Missed) => Ok((d.push_missed(), false)),
        (_, PairInput::Chaos(ChaosOp::Panic)) => {
            panic!("chaos: injected analysis panic")
        }
        (d, PairInput::Chaos(ChaosOp::StallUs(us))) => {
            std::thread::sleep(std::time::Duration::from_micros(us));
            Ok((push_gap(d), false))
        }
        (PairDetector::Contention(_), PairInput::Conflicts { .. }) => {
            Err(DetectorError::BadHarvest {
                reason: "conflict records delivered to a contention pair".to_string(),
            })
        }
        (PairDetector::Oscillation(_), PairInput::Harvest(_)) => Err(DetectorError::BadHarvest {
            reason: "density harvest delivered to an oscillation pair".to_string(),
        }),
    }
}

/// Advances a pair's window with a zero-observation gap.
fn push_gap(detector: &mut PairDetector) -> OnlineStatus {
    match detector {
        PairDetector::Contention(d) => d.push_quantum(Harvest::Missed),
        PairDetector::Oscillation(d) => d.push_missed(),
    }
}

struct ManifestPair {
    kind: PairKind,
    breaker: CircuitBreaker,
    mitigation: Option<MitigationPolicy>,
    quarantine_confidence: f64,
    degraded: bool,
    failures: u64,
    panics: u64,
    deadline_misses: u64,
    retries: u64,
    label: String,
}

struct Manifest {
    tick: u64,
    pairs: Vec<ManifestPair>,
}

fn manifest_error(line: usize, reason: impl Into<String>) -> DetectorError {
    DetectorError::Trace(crate::trace::TraceError::Parse {
        line,
        reason: reason.into(),
    })
}

fn parse_manifest(
    payload: &[u8],
    quarantine: QuarantineConfig,
    mitigation: MitigationConfig,
) -> Result<Manifest, DetectorError> {
    let mut tick: Option<u64> = None;
    let mut declared_pairs: Option<usize> = None;
    let mut pairs: Vec<ManifestPair> = Vec::new();
    let mut saw_magic = false;
    let mut saw_end = false;
    for (idx, line) in BufReader::new(payload).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| manifest_error(line_no, format!("unreadable line: {e}")))?;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        if !saw_magic {
            if text != MANIFEST_MAGIC {
                return Err(manifest_error(
                    line_no,
                    format!("expected {MANIFEST_MAGIC:?} magic, got {text:?}"),
                ));
            }
            saw_magic = true;
            continue;
        }
        if text == "end" {
            saw_end = true;
            break;
        }
        let (tag, rest) = text.split_once(',').unwrap_or((text, ""));
        match tag {
            "tick" => {
                tick = Some(
                    rest.trim()
                        .parse()
                        .map_err(|e| manifest_error(line_no, format!("bad tick {rest:?}: {e}")))?,
                );
            }
            "pairs" => {
                let n: usize = rest.trim().parse().map_err(|e| {
                    manifest_error(line_no, format!("bad pair count {rest:?}: {e}"))
                })?;
                if n > 65_536 {
                    return Err(manifest_error(
                        line_no,
                        format!("absurd pair count {n} (limit 65536)"),
                    ));
                }
                declared_pairs = Some(n);
            }
            "pair" => {
                // pair,<idx>,<kind>,<breaker>,<confidence>,
                //      <failures>,<panics>,<deadline-misses>,<retries>,<label…>
                let mut fields = rest.splitn(9, ',');
                let idx_field: usize = fields
                    .next()
                    .unwrap_or("")
                    .trim()
                    .parse()
                    .map_err(|e| manifest_error(line_no, format!("bad pair index: {e}")))?;
                if idx_field != pairs.len() {
                    return Err(manifest_error(
                        line_no,
                        format!(
                            "pair index {idx_field} out of order (expected {})",
                            pairs.len()
                        ),
                    ));
                }
                let kind = match fields.next().unwrap_or("").trim() {
                    "contention" => PairKind::Contention,
                    "oscillation" => PairKind::Oscillation,
                    other => {
                        return Err(manifest_error(
                            line_no,
                            format!("unknown pair kind {other:?}"),
                        ))
                    }
                };
                let breaker_field = fields.next().unwrap_or("");
                let breaker =
                    CircuitBreaker::deserialize(quarantine, breaker_field).ok_or_else(|| {
                        manifest_error(line_no, format!("bad breaker state {breaker_field:?}"))
                    })?;
                let confidence: f64 = fields
                    .next()
                    .unwrap_or("")
                    .trim()
                    .parse()
                    .map_err(|e| manifest_error(line_no, format!("bad confidence: {e}")))?;
                if !(0.0..=1.0).contains(&confidence) {
                    return Err(manifest_error(
                        line_no,
                        format!("confidence {confidence} out of [0, 1]"),
                    ));
                }
                let mut counter = |what: &str| -> Result<u64, DetectorError> {
                    fields
                        .next()
                        .unwrap_or("")
                        .trim()
                        .parse()
                        .map_err(|e| manifest_error(line_no, format!("bad {what} count: {e}")))
                };
                let failures = counter("failure")?;
                let panics = counter("panic")?;
                let deadline_misses = counter("deadline-miss")?;
                let retries = counter("retry")?;
                let label = fields.next().unwrap_or("").to_string();
                pairs.push(ManifestPair {
                    kind,
                    breaker,
                    mitigation: None,
                    quarantine_confidence: confidence,
                    degraded: false,
                    failures,
                    panics,
                    deadline_misses,
                    retries,
                    label,
                });
            }
            "mit" => {
                // mit,<idx>,<serialized policy> — optional, must follow
                // the pair line it annotates.
                let (idx_field, policy_field) = rest.split_once(',').ok_or_else(|| {
                    manifest_error(line_no, format!("malformed mitigation line {rest:?}"))
                })?;
                let mit_idx: usize = idx_field.trim().parse().map_err(|e| {
                    manifest_error(line_no, format!("bad mitigation pair index: {e}"))
                })?;
                if mit_idx + 1 != pairs.len() {
                    return Err(manifest_error(
                        line_no,
                        format!(
                            "mitigation line for pair {mit_idx} does not follow its pair entry"
                        ),
                    ));
                }
                let policy =
                    MitigationPolicy::deserialize(mitigation, policy_field).ok_or_else(|| {
                        manifest_error(line_no, format!("bad containment state {policy_field:?}"))
                    })?;
                let entry = pairs.last_mut().expect("index checked above");
                if entry.mitigation.is_some() {
                    return Err(manifest_error(
                        line_no,
                        format!("duplicate mitigation line for pair {mit_idx}"),
                    ));
                }
                entry.mitigation = Some(policy);
            }
            "deg" => {
                // deg,<idx> — optional degraded-mode marker, must follow
                // the pair entry it annotates.
                let deg_idx: usize = rest.trim().parse().map_err(|e| {
                    manifest_error(line_no, format!("bad degraded pair index: {e}"))
                })?;
                if deg_idx + 1 != pairs.len() {
                    return Err(manifest_error(
                        line_no,
                        format!("degraded line for pair {deg_idx} does not follow its pair entry"),
                    ));
                }
                pairs.last_mut().expect("index checked above").degraded = true;
            }
            other => {
                return Err(manifest_error(
                    line_no,
                    format!("unknown manifest tag {other:?}"),
                ));
            }
        }
    }
    if !saw_magic || !saw_end {
        return Err(manifest_error(
            0,
            "truncated manifest (missing magic or end)",
        ));
    }
    let tick = tick.ok_or_else(|| manifest_error(0, "manifest has no tick line"))?;
    if let Some(declared) = declared_pairs {
        if declared != pairs.len() {
            return Err(manifest_error(
                0,
                format!(
                    "manifest declares {declared} pairs but lists {}",
                    pairs.len()
                ),
            ));
        }
    }
    Ok(Manifest { tick, pairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{DensityHistogram, HISTOGRAM_BINS};
    use crate::mitigation::{ApplyError, MitigationLevel};

    fn covert_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[19] = 20;
        bins[20] = 150;
        bins[21] = 25;
        DensityHistogram::from_bins(bins, 100_000).unwrap()
    }

    fn quiet_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_495;
        bins[1] = 5;
        DensityHistogram::from_bins(bins, 100_000).unwrap()
    }

    fn test_config() -> SupervisorConfig {
        SupervisorConfig {
            window_quanta: 8,
            ..SupervisorConfig::default()
        }
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "cchunter-supervisor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 3).unwrap()
    }

    fn cleanup(store_dir: &std::path::Path) {
        let _ = std::fs::remove_dir_all(store_dir);
    }

    #[test]
    fn healthy_fleet_detects_and_reports() {
        let mut fleet = Supervisor::new(test_config()).unwrap();
        fleet.add_contention_pair("bus").unwrap();
        fleet.add_contention_pair("divider").unwrap();
        let mut source = |pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(if pair == 0 {
                covert_histogram()
            } else {
                quiet_histogram()
            })))
        };
        for _ in 0..6 {
            let report = fleet.tick(&mut source);
            assert_eq!(report.reports.len(), 2);
            for r in &report.reports {
                assert!(matches!(r.outcome, PairOutcome::Analyzed(_)), "{r:?}");
            }
        }
        let statuses = fleet.pair_statuses();
        assert!(statuses[0].verdict.is_covert(), "{statuses:?}");
        assert_eq!(statuses[1].verdict, Verdict::Clean);
        assert!(statuses.iter().all(|s| s.health == BreakerState::Closed));
    }

    #[test]
    fn panicking_pair_is_contained_and_does_not_poison_the_batch() {
        let mut fleet = Supervisor::new(test_config()).unwrap();
        fleet.add_contention_pair("healthy").unwrap();
        fleet.add_contention_pair("panicky").unwrap();
        let mut source = |pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(if pair == 1 {
                PairInput::Chaos(ChaosOp::Panic)
            } else {
                PairInput::Harvest(Harvest::Complete(covert_histogram()))
            })
        };
        let report = fleet.tick(&mut source);
        assert!(matches!(
            report.reports[0].outcome,
            PairOutcome::Analyzed(_)
        ));
        match &report.reports[1].outcome {
            PairOutcome::Failed { error, recovery } => {
                assert!(matches!(error, DetectorError::AnalysisPanicked { .. }));
                assert_eq!(*recovery, Recovery::Reset, "no store attached");
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(fleet.pair_statuses()[1].panics, 1);
        // The healthy pair keeps working on subsequent ticks.
        let report = fleet.tick(&mut source);
        assert!(matches!(
            report.reports[0].outcome,
            PairOutcome::Analyzed(_)
        ));
    }

    #[test]
    fn deadline_miss_is_typed_and_counted() {
        let config = SupervisorConfig {
            deadline_us: 500,
            ..test_config()
        };
        let mut fleet = Supervisor::new(config).unwrap();
        fleet.add_contention_pair("slow").unwrap();
        let mut source = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Chaos(ChaosOp::StallUs(5_000)))
        };
        let report = fleet.tick(&mut source);
        match &report.reports[0].outcome {
            PairOutcome::Degraded { error, .. } => {
                assert!(
                    matches!(error, DetectorError::DeadlineExceeded { .. }),
                    "{error}"
                );
            }
            other => panic!("expected deadline degradation, got {other:?}"),
        }
        assert_eq!(fleet.pair_statuses()[0].deadline_misses, 1);
    }

    #[test]
    fn transient_misses_retry_with_recorded_backoff() {
        let mut fleet = Supervisor::new(test_config()).unwrap();
        fleet.add_contention_pair("flaky").unwrap();
        // Fails twice per tick, then delivers.
        let mut source = |_pair: usize, _tick: u64, attempt: u32| {
            if attempt < 2 {
                Err(ProbeFault {
                    reason: "harvest deadline slipped".to_string(),
                })
            } else {
                Ok(PairInput::Harvest(Harvest::Complete(covert_histogram())))
            }
        };
        let report = fleet.tick(&mut source);
        assert!(matches!(
            report.reports[0].outcome,
            PairOutcome::Analyzed(_)
        ));
        assert_eq!(report.reports[0].retries, 2);
        assert!(report.reports[0].backoff_us > 0);
        // Deterministic: the same tick replayed yields the same schedule.
        let mut fleet2 = Supervisor::new(test_config()).unwrap();
        fleet2.add_contention_pair("flaky").unwrap();
        let report2 = fleet2.tick(&mut source);
        assert_eq!(report.reports[0].backoff_us, report2.reports[0].backoff_us);
    }

    #[test]
    fn fully_faulty_pair_is_quarantined_and_neighbors_unaffected() {
        let config = SupervisorConfig {
            quarantine: QuarantineConfig {
                failure_window: 4,
                trip_threshold: 0.75,
                min_observations: 4,
                probe_interval: 8,
                recovery_successes: 2,
                confidence_decay: 0.5,
            },
            ..test_config()
        };
        let faulty_idx = 1usize;
        let run = |with_faulty: bool| {
            let mut fleet = Supervisor::new(config).unwrap();
            fleet.add_contention_pair("good-0").unwrap();
            if with_faulty {
                fleet.add_contention_pair("broken").unwrap();
            }
            fleet.add_contention_pair("good-1").unwrap();
            let mut verdicts: Vec<Vec<Verdict>> = Vec::new();
            for _ in 0..12 {
                let report = fleet.tick(&mut |pair: usize, _tick: u64, _attempt: u32| {
                    if with_faulty && pair == faulty_idx {
                        Err(ProbeFault {
                            reason: "dead monitor".to_string(),
                        })
                    } else {
                        Ok(PairInput::Harvest(Harvest::Complete(covert_histogram())))
                    }
                });
                verdicts.push(
                    report
                        .reports
                        .iter()
                        .filter_map(|r| match &r.outcome {
                            PairOutcome::Analyzed(s) => Some((r.label.clone(), s.verdict)),
                            _ => None,
                        })
                        .filter(|(label, _)| label.starts_with("good"))
                        .map(|(_, v)| v)
                        .collect(),
                );
            }
            (fleet.pair_statuses(), verdicts)
        };
        let (with_statuses, with_verdicts) = run(true);
        let (without_statuses, without_verdicts) = run(false);

        // The 100%-faulty pair trips open within the 4-outcome window.
        assert!(
            with_statuses[faulty_idx].health != BreakerState::Closed,
            "faulty pair must be quarantined: {with_statuses:?}"
        );
        assert!(with_statuses[faulty_idx].failures >= 4);
        // And the healthy pairs' verdict sequences are identical with or
        // without the broken neighbor.
        assert_eq!(with_verdicts, without_verdicts);
        assert!(with_statuses[0].verdict.is_covert());
        assert!(with_statuses[2].verdict.is_covert());
        assert_eq!(without_statuses[0].verdict, with_statuses[0].verdict);
    }

    #[test]
    fn quarantined_pair_skips_decay_confidence_and_recovers() {
        let config = SupervisorConfig {
            quarantine: QuarantineConfig {
                failure_window: 4,
                trip_threshold: 0.5,
                min_observations: 2,
                probe_interval: 3,
                recovery_successes: 1,
                confidence_decay: 0.5,
            },
            ..test_config()
        };
        let mut fleet = Supervisor::new(config).unwrap();
        fleet.add_contention_pair("wobbly").unwrap();
        // Faulty for the first 4 ticks, healthy afterwards.
        let mut source = |_pair: usize, tick: u64, _attempt: u32| {
            if tick < 4 {
                Err(ProbeFault {
                    reason: "flapping".to_string(),
                })
            } else {
                Ok(PairInput::Harvest(Harvest::Complete(covert_histogram())))
            }
        };
        let mut saw_skip = false;
        let mut recovered = false;
        for _ in 0..12 {
            let report = fleet.tick(&mut source);
            match &report.reports[0].outcome {
                PairOutcome::Skipped { confidence } => {
                    saw_skip = true;
                    assert!(*confidence < 1.0);
                }
                PairOutcome::Analyzed(_) if saw_skip => {
                    recovered = true;
                }
                _ => {}
            }
        }
        assert!(saw_skip, "quarantine must skip ticks");
        assert!(recovered, "recovery probes must close the breaker");
        assert_eq!(fleet.pair_statuses()[0].health, BreakerState::Closed);
    }

    #[test]
    fn checkpoint_restore_roundtrips_fleet_state() {
        let store = temp_store("roundtrip");
        let dir = store.dir().to_path_buf();
        let config = test_config();
        let mut fleet = Supervisor::new(config).unwrap().with_store(store);
        fleet.add_contention_pair("bus: t <-> s").unwrap();
        fleet.add_oscillation_pair("l2: t <-> s").unwrap();
        let mut source = |pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(match pair {
                0 => PairInput::Harvest(Harvest::Complete(covert_histogram())),
                _ => PairInput::Missed,
            })
        };
        for _ in 0..5 {
            fleet.tick(&mut source);
        }
        fleet.checkpoint().unwrap();

        let (restored, report) =
            Supervisor::restore(config, CheckpointStore::open(&dir, 3).unwrap()).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.tick_count(), 5);
        assert_eq!(report.total_rolled_back(), 0);
        let statuses = restored.pair_statuses();
        assert_eq!(statuses[0].label, "bus: t <-> s");
        assert_eq!(statuses[0].kind, PairKind::Contention);
        assert_eq!(statuses[1].kind, PairKind::Oscillation);
        assert!(statuses.iter().all(|s| s.restored_from.is_some()));
        cleanup(&dir);
    }

    #[test]
    fn restore_without_manifest_is_typed() {
        let store = temp_store("empty");
        let dir = store.dir().to_path_buf();
        let err = Supervisor::restore(test_config(), store).unwrap_err();
        assert!(matches!(err, DetectorError::CheckpointMismatch { .. }));
        cleanup(&dir);
    }

    #[test]
    fn fleet_metrics_snapshot_counts_outcomes() {
        let registry = Registry::new();
        let tracer = Tracer::new(256);
        let mut fleet = Supervisor::new(test_config())
            .unwrap()
            .with_registry(registry.clone())
            .with_tracer(tracer.clone());
        fleet.add_contention_pair("bus").unwrap();
        fleet.add_contention_pair("chaotic").unwrap();
        let mut source = |pair: usize, tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(if pair == 1 && tick == 0 {
                PairInput::Chaos(ChaosOp::Panic)
            } else {
                PairInput::Harvest(Harvest::Complete(covert_histogram()))
            })
        };
        for _ in 0..6 {
            fleet.tick(&mut source);
        }
        let snap = fleet.metrics_snapshot();
        assert_eq!(snap.ticks, 6);
        assert_eq!(snap.pairs, 2);
        assert_eq!(snap.analyzed, 11, "{snap:?}");
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.failures, 1);
        assert!(snap.verdict_flips >= 1, "{snap:?}");
        assert_eq!(snap.covert_pairs, 2);
        assert_eq!(snap.audit_latency.count, 11);
        assert_eq!(snap.tick_latency.count, 6);
        let text = fleet.render_prometheus();
        assert!(text.contains("cchunter_supervisor_ticks_total 6"), "{text}");
        assert!(
            text.contains("cchunter_pair_panics_total{pair=\"chaotic\"} 1"),
            "{text}"
        );
        assert!(tracer.recorded() > 0, "tick spans must be traced");
        let status = fleet.fleet_status();
        assert_eq!(status.tick, 6);
        assert_eq!(status.pairs.len(), 2);
        assert_eq!(status.metrics, snap);
    }

    #[test]
    fn restore_seeds_persistent_counters_into_fresh_registry() {
        let store = temp_store("metrics-restore");
        let dir = store.dir().to_path_buf();
        let config = test_config();
        let mut fleet = Supervisor::new(config)
            .unwrap()
            .with_registry(Registry::new())
            .with_store(store);
        fleet.add_contention_pair("flaky").unwrap();
        let mut source = |_pair: usize, tick: u64, _attempt: u32| {
            if tick.is_multiple_of(2) {
                Err(ProbeFault {
                    reason: "gap".to_string(),
                })
            } else {
                Ok(PairInput::Harvest(Harvest::Complete(covert_histogram())))
            }
        };
        for _ in 0..6 {
            fleet.tick(&mut source);
        }
        fleet.checkpoint().unwrap();
        let before = fleet.metrics_snapshot();
        assert!(before.failures > 0 && before.retries > 0, "{before:?}");
        assert_eq!(before.checkpoints, 1);

        let registry = Registry::new();
        let (restored, _) = Supervisor::restore_with_registry(
            config,
            CheckpointStore::open(&dir, 3).unwrap(),
            registry.clone(),
        )
        .unwrap();
        let after = restored.metrics_snapshot();
        assert_eq!(after.failures, before.failures);
        assert_eq!(after.retries, before.retries);
        assert_eq!(after.ticks, before.ticks);
        // The registered instruments were re-seeded, so the scrape stays
        // monotonic across the crash.
        let text = registry.render_prometheus();
        assert!(
            text.contains(&format!(
                "cchunter_pair_failures_total{{pair=\"flaky\"}} {}",
                before.failures
            )),
            "{text}"
        );
        // metrics.prom was dumped beside the checkpoint and parses back.
        let dump = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        let scrape = crate::metrics::parse_prometheus(&dump);
        assert!(scrape.is_clean(), "{:?}", scrape.skipped);
        assert!(scrape
            .samples
            .iter()
            .any(|s| s.name == "cchunter_supervisor_ticks_total"));
        cleanup(&dir);
    }

    #[test]
    fn manifest_parser_rejects_garbage() {
        let q = QuarantineConfig::default();
        let m = MitigationConfig::default();
        for bad in [
            &b""[..],
            b"not-a-manifest\nend\n",
            b"cchunter-supervisor,v1\ntick,5\n", // no end
            b"cchunter-supervisor,v1\ntick,5\npairs,2\npair,0,contention,closed;0;0;,1,x\nend\n",
            b"cchunter-supervisor,v1\ntick,5\npair,0,weird,closed;0;0;,1,x\nend\n",
            b"cchunter-supervisor,v1\ntick,5\npair,0,contention,closed;0;0;,7,x\nend\n",
            // Mitigation line with no preceding pair entry.
            b"cchunter-supervisor,v1\ntick,5\nmit,0,inactive;-;0;0;0;0;0;0;0;0;-;-\nend\n",
            // Garbled containment state.
            b"cchunter-supervisor,v1\ntick,5\npair,0,contention,closed;0;0;,1,0,0,0,0,x\nmit,0,contained;warp\nend\n",
        ] {
            assert!(parse_manifest(bad, q, m).is_err(), "{bad:?}");
        }
        // A v1 manifest without mit lines still parses (idle policy).
        let ok =
            b"cchunter-supervisor,v1\ntick,5\npair,0,contention,closed;0;0;,1,0,0,0,0,x\nend\n";
        let manifest = parse_manifest(ok, q, m).unwrap();
        assert!(manifest.pairs[0].mitigation.is_none());
    }

    /// Records enforcement calls; refuses every level in `refuse`.
    #[derive(Default)]
    struct RecordingEnforcer {
        applied: Vec<(usize, MitigationLevel)>,
        released: Vec<(usize, MitigationLevel)>,
        refuse: Vec<MitigationLevel>,
    }

    impl MitigationEnforcer for RecordingEnforcer {
        fn apply(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
            if self.refuse.contains(&level) {
                return Err(ApplyError {
                    reason: format!("chaos: {level} refused"),
                });
            }
            self.applied.push((pair, level));
            Ok(())
        }

        fn release(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
            self.released.push((pair, level));
            Ok(())
        }
    }

    #[test]
    fn covert_pair_is_convicted_and_contained() {
        let mut fleet = Supervisor::new(test_config()).unwrap();
        fleet.add_contention_pair("bus: trojan <-> spy").unwrap();
        fleet.add_contention_pair("benign").unwrap();
        let mut enforcer = RecordingEnforcer::default();
        let mut source = |pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(if pair == 0 {
                covert_histogram()
            } else {
                quiet_histogram()
            })))
        };
        for _ in 0..12 {
            fleet.tick_with_enforcer(&mut source, &mut enforcer);
        }
        let statuses = fleet.pair_statuses();
        assert!(
            statuses[0].containment.is_active(),
            "covert pair contained: {:?}",
            statuses[0].containment
        );
        assert_eq!(
            statuses[1].containment,
            ContainmentState::Inactive,
            "benign pair untouched"
        );
        assert!(enforcer
            .applied
            .contains(&(0, MitigationLevel::FlushOnSwitch)));
        assert!(enforcer.applied.iter().all(|(pair, _)| *pair == 0));
        assert!(fleet.containment_latency_ticks(0).is_some());
        let snapshot = fleet.metrics_snapshot();
        assert_eq!(snapshot.contained_pairs, 1);
        assert!(snapshot.mitigations_applied >= 1);
        let prom = fleet.render_prometheus();
        assert!(
            prom.contains("cchunter_pair_containment_level"),
            "containment gauge exported"
        );
    }

    #[test]
    fn refused_rung_escalates_instead_of_silently_dropping() {
        let mut fleet = Supervisor::new(test_config()).unwrap();
        fleet.add_contention_pair("bus").unwrap();
        let mut enforcer = RecordingEnforcer {
            refuse: vec![MitigationLevel::FlushOnSwitch],
            ..RecordingEnforcer::default()
        };
        let mut source = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram())))
        };
        for _ in 0..12 {
            fleet.tick_with_enforcer(&mut source, &mut enforcer);
        }
        let containment = fleet.containment(0).unwrap();
        assert!(containment.is_active(), "{containment:?}");
        assert_ne!(
            containment.level(),
            Some(MitigationLevel::FlushOnSwitch),
            "refused first rung was escalated past: {containment:?}"
        );
        assert!(
            !enforcer
                .applied
                .iter()
                .any(|(_, l)| *l == MitigationLevel::FlushOnSwitch),
            "the refused rung never took force"
        );
        let snapshot = fleet.metrics_snapshot();
        assert!(snapshot.mitigation_failures >= 1);
        assert!(snapshot.mitigation_escalations >= 1);
    }

    #[test]
    fn low_residual_steps_containment_back_down() {
        let config = SupervisorConfig {
            mitigation: MitigationConfig {
                convict_streak: 2,
                step_down_streak: 2,
                ..MitigationConfig::default()
            },
            ..test_config()
        };
        let mut fleet = Supervisor::new(config).unwrap();
        fleet.add_contention_pair("bus").unwrap();
        let mut enforcer = RecordingEnforcer::default();
        let mut covert_source = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram())))
        };
        for _ in 0..10 {
            fleet.tick_with_enforcer(&mut covert_source, &mut enforcer);
        }
        assert!(fleet.containment(0).unwrap().is_active());
        // The channel goes quiet and the re-measured residual is ~zero:
        // the ladder walks back down to fully released.
        let mut quiet_source = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(quiet_histogram())))
        };
        for _ in 0..40 {
            fleet.report_residual(0, 0.0, 0.02).unwrap();
            fleet.tick_with_enforcer(&mut quiet_source, &mut enforcer);
            if fleet.containment(0).unwrap() == ContainmentState::Inactive {
                break;
            }
        }
        assert_eq!(fleet.containment(0).unwrap(), ContainmentState::Inactive);
        assert!(enforcer
            .released
            .contains(&(0, MitigationLevel::FlushOnSwitch)));
        assert!(fleet.metrics_snapshot().mitigation_stepdowns >= 1);
    }

    #[test]
    fn containment_survives_checkpoint_and_restore() {
        let store = temp_store("containment");
        let dir = store.dir().to_path_buf();
        let config = test_config();
        let mut fleet = Supervisor::new(config).unwrap().with_store(store);
        fleet.add_contention_pair("bus").unwrap();
        let mut enforcer = RecordingEnforcer::default();
        let mut source = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram())))
        };
        for _ in 0..12 {
            fleet.tick_with_enforcer(&mut source, &mut enforcer);
        }
        let containment = fleet.containment(0).unwrap();
        assert!(containment.is_active());
        let latency = fleet.containment_latency_ticks(0);
        fleet.checkpoint().unwrap();
        drop(fleet);

        // Kill-and-restore: the containment state comes back and the first
        // tick re-asserts it through the (fresh) enforcer, whose hardware
        // state did not survive the crash.
        let (mut restored, _report) =
            Supervisor::restore(config, CheckpointStore::open(&dir, 3).unwrap()).unwrap();
        assert_eq!(restored.containment(0).unwrap(), containment);
        assert_eq!(restored.containment_latency_ticks(0), latency);
        let mut fresh_enforcer = RecordingEnforcer::default();
        restored.tick_with_enforcer(&mut source, &mut fresh_enforcer);
        assert_eq!(
            fresh_enforcer.applied,
            vec![(0, containment.level().unwrap())],
            "restored containment re-asserted"
        );
        cleanup(&dir);
    }

    #[test]
    fn storage_brownout_degrades_durability_and_heals_with_full_repersist() {
        use crate::fault::{StorageFaultClass, StorageFaultConfig, StorageFaultInjector};

        let dir = std::env::temp_dir().join(format!(
            "cchunter-supervisor-durability-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let injector = StorageFaultInjector::new(StorageFaultConfig::none(), 7);
        let store =
            CheckpointStore::open_with_medium(&dir, 3, std::sync::Arc::new(injector.clone()))
                .unwrap();
        let config = SupervisorConfig {
            checkpoint_every: 1,
            ..test_config()
        };
        let mut fleet = Supervisor::new(config).unwrap().with_store(store);
        fleet.add_contention_pair("bus").unwrap();
        let mut source = |_pair: usize, _tick: u64, _attempt: u32| {
            Ok::<_, ProbeFault>(PairInput::Harvest(Harvest::Complete(covert_histogram())))
        };

        // Healthy medium: the due-tick checkpoint lands durably.
        let report = fleet.tick(&mut source);
        let first_generation = report.checkpoint_generation.expect("durable checkpoint");
        assert_eq!(fleet.durability(), Durability::Durable);

        // Brownout: every write fails with ENOSPC. The fleet keeps ticking,
        // degrades durability, and shadows the freshest state in memory.
        injector.set_config(StorageFaultConfig::none().with_rate(StorageFaultClass::NoSpace, 1.0));
        let report = fleet.tick(&mut source);
        assert!(report.checkpoint_generation.is_none());
        let error = report.checkpoint_error.expect("typed checkpoint error");
        assert!(error.contains("no-space"), "{error}");
        assert_eq!(
            fleet.durability(),
            Durability::Degraded { since_tick: 2 },
            "degraded from the first failing due tick"
        );
        assert_eq!(fleet.shadow_checkpoint_tick(), Some(2));
        let entries = fleet.shadow_checkpoint_entries().expect("shadow present");
        assert_eq!(
            entries.last().map(|(name, _)| name.as_str()),
            Some(MANIFEST_NAME),
            "shadow holds the full durable entry set, manifest last"
        );
        let status = fleet.fleet_status();
        assert!(status.durability.is_degraded());
        assert!(status.metrics.durability_degraded);
        assert_eq!(status.metrics.shadow_checkpoints, 1);

        // Still browning out: the shadow tracks the newest tick.
        let _ = fleet.tick(&mut source);
        assert_eq!(fleet.shadow_checkpoint_tick(), Some(3));

        // Heal: the next due tick's success IS the full re-persist.
        injector.set_config(StorageFaultConfig::none());
        let report = fleet.tick(&mut source);
        let healed_generation = report.checkpoint_generation.expect("durable again");
        assert_eq!(fleet.durability(), Durability::Durable);
        assert!(fleet.shadow_checkpoint_tick().is_none(), "shadow retired");
        let metrics = fleet.metrics_snapshot();
        assert!(!metrics.durability_degraded);
        assert_eq!(metrics.durability_heals, 1);
        assert_eq!(metrics.shadow_checkpoints, 2);
        assert_eq!(metrics.checkpoint_errors, 2);

        // The re-persisted generation restores the whole fleet.
        drop(fleet);
        let (restored, _report) =
            Supervisor::restore(config, CheckpointStore::open(&dir, 3).unwrap()).unwrap();
        assert_eq!(restored.pair_statuses().len(), 1);
        assert!(healed_generation > first_generation, "fresh generation");
        cleanup(&dir);
    }
}
