//! Event-density histograms over Δt windows (paper §IV-B, steps 1–2).
//!
//! Δt is "the product of the inverse of average event rate and α, an
//! empirical constant" — the observation window used to count event
//! occurrences. The histogram's x-axis is the number of events falling in a
//! Δt window, the y-axis is how many windows saw that many events; low
//! (non-burst) densities live on the left, bursts show up as a second
//! distribution in the right tail (Figure 5/6).

use crate::events::{EventTrain, TrainView};
use crate::DetectorError;

/// Number of histogram bins, matching the paper's 128-entry hardware
/// histogram buffers. Densities of `HISTOGRAM_BINS - 1` or more saturate
/// into the last bin.
pub const HISTOGRAM_BINS: usize = 128;

/// How Δt is chosen for a train.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaTPolicy {
    /// A fixed window length in cycles. The paper's evaluation uses
    /// 100,000 cycles (40 µs) for the memory bus and 500 cycles (200 ns)
    /// for the integer divider.
    Fixed(u64),
    /// Δt = α / (mean event rate), clamped to `[min, max]`. The α factor
    /// keeps Δt between the Poisson regime (too small) and the normal
    /// regime (too large).
    FromRate {
        /// The α tempering constant.
        alpha: f64,
        /// Lower clamp in cycles.
        min: u64,
        /// Upper clamp in cycles.
        max: u64,
    },
}

impl DeltaTPolicy {
    /// Resolves the policy to a concrete Δt for `train` observed over
    /// `[start, end)`.
    ///
    /// Returns `None` if the rate-based policy sees no events (Δt would be
    /// unbounded).
    pub fn resolve(&self, train: &EventTrain, start: u64, end: u64) -> Option<u64> {
        match *self {
            DeltaTPolicy::Fixed(dt) => {
                assert!(dt > 0, "Δt must be nonzero");
                Some(dt)
            }
            DeltaTPolicy::FromRate { alpha, min, max } => {
                assert!(alpha > 0.0 && min > 0 && max >= min, "invalid Δt policy");
                let rate = train.mean_rate(start, end);
                if rate <= 0.0 {
                    return None;
                }
                let dt = (alpha / rate).round() as u64;
                Some(dt.clamp(min, max))
            }
        }
    }
}

/// An event-density histogram: for each density `d` (events per Δt window),
/// the number of Δt windows that saw exactly `d` events (saturating at
/// [`HISTOGRAM_BINS`]` - 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityHistogram {
    bins: Vec<u64>,
    delta_t: u64,
    windows: u64,
}

impl DensityHistogram {
    /// Creates an empty histogram for windows of `delta_t` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `delta_t` is zero.
    pub fn empty(delta_t: u64) -> Self {
        assert!(delta_t > 0, "Δt must be nonzero");
        DensityHistogram {
            bins: vec![0; HISTOGRAM_BINS],
            delta_t,
            windows: 0,
        }
    }

    /// Builds the histogram of `train` over `[start, end)` using windows of
    /// `delta_t` cycles. Weighted entries are treated as runs of unit events
    /// on consecutive cycles beginning at the entry's timestamp (that is how
    /// divider-wait runs are reported), so a run spanning a window boundary
    /// contributes to both windows.
    ///
    /// Every window in the range is counted — windows with no events land in
    /// bin 0 (the paper's "non-contention" bin).
    pub fn from_train(train: &EventTrain, delta_t: u64, start: u64, end: u64) -> Self {
        Self::from_view(train.as_view(), delta_t, start, end)
    }

    /// Builds the histogram from a borrowed [`TrainView`] — the zero-copy
    /// twin of [`DensityHistogram::from_train`] used by the arena-backed
    /// ingest path.
    pub fn from_view(view: TrainView<'_>, delta_t: u64, start: u64, end: u64) -> Self {
        let mut h = Self::empty(delta_t);
        h.accumulate_view(view, start, end);
        h
    }

    /// Adds the windows of `[start, end)` from `train` into this histogram.
    pub fn accumulate(&mut self, train: &EventTrain, start: u64, end: u64) {
        self.accumulate_view(train.as_view(), start, end);
    }

    /// Adds the windows of `[start, end)` from a borrowed view into this
    /// histogram. Produces bit-identical bins to the owned-train path.
    pub fn accumulate_view(&mut self, view: TrainView<'_>, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let dt = self.delta_t;
        let total_windows = (end - start).div_ceil(dt);
        // Narrow to the in-range entries once (sorted times → binary
        // search) instead of filtering every entry in the hot loop.
        let view = view.window(start, end);

        // Unit-weight fast path: with no multi-cycle runs each event lands
        // wholly in window (t - start) / Δt, and sorted times mean equal
        // window indices are consecutive — run-length encode straight into
        // bins with no per-window scratch array at all.
        if view.weights().iter().all(|&w| w == 1) {
            let mut counted_windows: u64 = 0;
            let mut i = 0;
            let times = view.times();
            while i < times.len() {
                let w = (times[i] - start) / dt;
                let mut run = 1usize;
                while i + run < times.len() && (times[i + run] - start) / dt == w {
                    run += 1;
                }
                self.bins[run.min(HISTOGRAM_BINS - 1)] += 1;
                counted_windows += 1;
                i += run;
            }
            self.bins[0] += total_windows - counted_windows;
            self.windows += total_windows;
            return;
        }

        // Per-window counts. Runs from different contexts may overlap in
        // time, so counts are accumulated per window index before binning.
        // Dense counting for normal ranges; sparse for huge, mostly-empty
        // ranges (e.g. 0.1 bps channels observed over minutes).
        const DENSE_LIMIT: u64 = 1 << 23;
        let mut dense: Vec<u32> = Vec::new();
        let mut sparse: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let use_dense = total_windows <= DENSE_LIMIT;
        if use_dense {
            dense = vec![0u32; total_windows as usize];
        }
        let mut add = |window: u64, count: u64| {
            debug_assert!(window < total_windows);
            if use_dense {
                let slot = &mut dense[window as usize];
                *slot = slot.saturating_add(count.min(u32::MAX as u64) as u32);
            } else {
                *sparse.entry(window).or_insert(0) += count;
            }
        };
        for (time, weight) in view.iter() {
            if weight == 0 {
                continue;
            }
            // Spread the run of `weight` unit events over consecutive
            // cycles, splitting across window boundaries.
            let mut t = time;
            let mut remaining = weight as u64;
            while remaining > 0 && t < end {
                let w = (t - start) / dt;
                let window_end = start + (w + 1) * dt;
                let room = window_end.min(end) - t;
                let take = remaining.min(room);
                add(w, take);
                remaining -= take;
                t += take;
            }
        }
        let mut counted_windows: u64 = 0;
        if use_dense {
            for &count in &dense {
                if count > 0 {
                    let bin = (count as usize).min(HISTOGRAM_BINS - 1);
                    self.bins[bin] += 1;
                    counted_windows += 1;
                }
            }
        } else {
            for (_, &count) in sparse.iter() {
                if count > 0 {
                    let bin = (count as usize).min(HISTOGRAM_BINS - 1);
                    self.bins[bin] += 1;
                    counted_windows += 1;
                }
            }
        }
        // All untouched windows are empty → bin 0.
        self.bins[0] += total_windows - counted_windows;
        self.windows += total_windows;
    }

    /// The Δt this histogram was built with.
    pub fn delta_t(&self) -> u64 {
        self.delta_t
    }

    /// Frequency of windows with density `bin` (bin 127 holds ≥ 127).
    pub fn frequency(&self, bin: usize) -> u64 {
        self.bins[bin]
    }

    /// All 128 bin frequencies.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of Δt windows observed.
    pub fn total_windows(&self) -> u64 {
        self.windows
    }

    /// Number of windows with at least one event (everything right of
    /// bin 0). The paper's likelihood-ratio computation omits bin 0 "since
    /// it does not contribute to any contention".
    pub fn contended_windows(&self) -> u64 {
        self.bins[1..].iter().sum()
    }

    /// Mean density over non-empty windows, or 0.0 if all windows are empty.
    pub fn mean_nonzero_density(&self) -> f64 {
        let (sum, count) = self.bins[1..]
            .iter()
            .enumerate()
            .fold((0u64, 0u64), |(s, c), (i, &f)| {
                (s + (i as u64 + 1) * f, c + f)
            });
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Merges another histogram built with the same Δt into this one.
    ///
    /// # Panics
    ///
    /// Panics if the Δt values differ. Use [`DensityHistogram::try_merge`]
    /// when the other histogram comes from untrusted input.
    pub fn merge(&mut self, other: &DensityHistogram) {
        assert_eq!(self.delta_t, other.delta_t, "Δt mismatch in merge");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.windows += other.windows;
    }

    /// Merges another histogram into this one, returning
    /// [`DetectorError::BadHarvest`] (and leaving `self` unchanged) if the
    /// Δt values differ — the fallible twin of [`DensityHistogram::merge`]
    /// for histograms reconstructed from external data.
    pub fn try_merge(&mut self, other: &DensityHistogram) -> Result<(), DetectorError> {
        if self.delta_t != other.delta_t {
            return Err(DetectorError::BadHarvest {
                reason: format!(
                    "Δt mismatch in merge: {} vs {}",
                    self.delta_t, other.delta_t
                ),
            });
        }
        self.merge(other);
        Ok(())
    }

    /// Creates a histogram directly from raw bin frequencies (e.g. read out
    /// of the CC-auditor histogram buffer).
    ///
    /// This is the entry point for *external* data (hardware read-outs,
    /// trace files, checkpoints), so structural defects are reported as
    /// [`DetectorError::BadHarvest`] instead of panicking: a daemon fed a
    /// truncated buffer must degrade, not die.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::BadHarvest`] if `bins` is not exactly
    /// [`HISTOGRAM_BINS`] long or `delta_t` is zero.
    pub fn from_bins(bins: Vec<u64>, delta_t: u64) -> Result<Self, DetectorError> {
        if bins.len() != HISTOGRAM_BINS {
            return Err(DetectorError::BadHarvest {
                reason: format!("expected {HISTOGRAM_BINS} bins, got {}", bins.len()),
            });
        }
        if delta_t == 0 {
            return Err(DetectorError::BadHarvest {
                reason: "Δt must be nonzero".to_string(),
            });
        }
        let windows = bins.iter().sum();
        Ok(DensityHistogram {
            bins,
            delta_t,
            windows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_resolves() {
        let train = EventTrain::from_times(vec![0, 10]);
        assert_eq!(DeltaTPolicy::Fixed(500).resolve(&train, 0, 100), Some(500));
    }

    #[test]
    fn rate_policy_scales_inverse_to_rate() {
        // 10 events over 1000 cycles → rate 0.01; α = 5 → Δt = 500.
        let train = EventTrain::from_times((0..10).map(|i| i * 100).collect());
        let dt = DeltaTPolicy::FromRate {
            alpha: 5.0,
            min: 1,
            max: 1_000_000,
        }
        .resolve(&train, 0, 1000)
        .unwrap();
        assert_eq!(dt, 500);
    }

    #[test]
    fn rate_policy_clamps() {
        let train = EventTrain::from_times(vec![0]);
        let dt = DeltaTPolicy::FromRate {
            alpha: 1.0,
            min: 10,
            max: 20,
        }
        .resolve(&train, 0, 1_000_000)
        .unwrap();
        assert_eq!(dt, 20, "huge raw Δt clamps to max");
    }

    #[test]
    fn rate_policy_none_without_events() {
        let train = EventTrain::new();
        assert_eq!(
            DeltaTPolicy::FromRate {
                alpha: 1.0,
                min: 1,
                max: 10
            }
            .resolve(&train, 0, 100),
            None
        );
    }

    #[test]
    fn histogram_counts_windows() {
        // Windows of 100 over [0, 400): densities 2, 0, 1, 1.
        let train = EventTrain::from_times(vec![10, 20, 210, 350]);
        let h = DensityHistogram::from_train(&train, 100, 0, 400);
        assert_eq!(h.total_windows(), 4);
        assert_eq!(h.frequency(0), 1);
        assert_eq!(h.frequency(1), 2);
        assert_eq!(h.frequency(2), 1);
        assert_eq!(h.contended_windows(), 3);
    }

    #[test]
    fn histogram_saturates_at_last_bin() {
        let train = EventTrain::from_times(vec![5; 500]);
        let h = DensityHistogram::from_train(&train, 100, 0, 100);
        assert_eq!(h.frequency(HISTOGRAM_BINS - 1), 1);
    }

    #[test]
    fn weighted_runs_split_across_windows() {
        // A 10-cycle run starting at cycle 95 with Δt = 100: 5 events in
        // window 0, 5 in window 1.
        let mut train = EventTrain::new();
        train.push(95, 10);
        let h = DensityHistogram::from_train(&train, 100, 0, 200);
        assert_eq!(h.frequency(5), 2);
        assert_eq!(h.total_windows(), 2);
    }

    #[test]
    fn empty_windows_land_in_bin_zero() {
        let train = EventTrain::new();
        let h = DensityHistogram::from_train(&train, 100, 0, 1000);
        assert_eq!(h.frequency(0), 10);
        assert_eq!(h.contended_windows(), 0);
        assert_eq!(h.mean_nonzero_density(), 0.0);
    }

    #[test]
    fn partial_last_window_is_counted() {
        let train = EventTrain::from_times(vec![250]);
        let h = DensityHistogram::from_train(&train, 100, 0, 260);
        assert_eq!(h.total_windows(), 3);
        assert_eq!(h.frequency(1), 1);
    }

    #[test]
    fn merge_adds_bins() {
        let t1 = EventTrain::from_times(vec![10]);
        let t2 = EventTrain::from_times(vec![10, 20]);
        let mut a = DensityHistogram::from_train(&t1, 100, 0, 100);
        let b = DensityHistogram::from_train(&t2, 100, 0, 100);
        a.merge(&b);
        assert_eq!(a.total_windows(), 2);
        assert_eq!(a.frequency(1), 1);
        assert_eq!(a.frequency(2), 1);
    }

    #[test]
    fn try_merge_rejects_delta_t_mismatch() {
        let t = EventTrain::from_times(vec![10]);
        let mut a = DensityHistogram::from_train(&t, 100, 0, 100);
        let b = DensityHistogram::from_train(&t, 200, 0, 200);
        let before = a.clone();
        assert!(matches!(
            a.try_merge(&b),
            Err(DetectorError::BadHarvest { .. })
        ));
        assert_eq!(a.bins(), before.bins());
        let c = DensityHistogram::from_train(&t, 100, 0, 100);
        a.try_merge(&c).unwrap();
        assert_eq!(a.total_windows(), 2);
    }

    #[test]
    fn mean_nonzero_density() {
        let train = EventTrain::from_times(vec![0, 1, 2, 100]);
        let h = DensityHistogram::from_train(&train, 100, 0, 200);
        // Densities: 3 and 1 → mean 2.
        assert!((h.mean_nonzero_density() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_bins_roundtrip() {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 90;
        bins[20] = 10;
        let h = DensityHistogram::from_bins(bins, 100_000).unwrap();
        assert_eq!(h.total_windows(), 100);
        assert_eq!(h.frequency(20), 10);
        assert_eq!(h.delta_t(), 100_000);
    }

    #[test]
    fn from_bins_rejects_bad_shapes() {
        assert!(matches!(
            DensityHistogram::from_bins(vec![0; 12], 100),
            Err(DetectorError::BadHarvest { .. })
        ));
        assert!(matches!(
            DensityHistogram::from_bins(vec![0; HISTOGRAM_BINS], 0),
            Err(DetectorError::BadHarvest { .. })
        ));
    }

    #[test]
    fn events_outside_range_ignored() {
        let train = EventTrain::from_times(vec![5, 150, 450]);
        let h = DensityHistogram::from_train(&train, 100, 100, 400);
        assert_eq!(h.total_windows(), 3);
        assert_eq!(h.contended_windows(), 1);
    }
}
