//! Ring-buffered structured-event tracing for the audit stack.
//!
//! The numeric half of the observability layer ([`crate::metrics`]) tells
//! you *how much*; this module tells you *what happened, in order*. A
//! [`Tracer`] is a bounded ring of [`TraceEvent`]s — cheap enough to leave
//! compiled into the hot paths, disabled by default, and switchable at run
//! time. When disabled, recording an event is a single relaxed atomic load.
//!
//! Events carry a monotone sequence number, a wall-clock offset from the
//! tracer's epoch, and (when the caller is inside the simulator) the
//! simulated cycle, so an operator can line up a per-quantum audit
//! timeline against both clocks. Timed sections use RAII [`Span`] guards
//! that record their duration on drop.
//!
//! The process-wide [`global`] tracer is configured from the
//! `CCHUNTER_TRACE` environment variable at first use:
//!
//! * unset, empty, or `0` — disabled;
//! * `1` — enabled with the default ring capacity (4096 events);
//! * any other integer — enabled with that capacity.
//!
//! Components that need deterministic buffers in tests (or several
//! independent timelines) construct their own [`Tracer`] and inject it
//! (see [`Supervisor::with_tracer`](crate::supervisor::Supervisor::with_tracer)).

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity for [`Tracer::from_env`] when `CCHUNTER_TRACE=1`.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (counts every recorded event, including
    /// ones later evicted from the ring).
    pub seq: u64,
    /// Microseconds of wall clock since the tracer's epoch.
    pub wall_us: u64,
    /// Simulated cycle, when the event was recorded from inside (or about)
    /// the simulator.
    pub cycle: Option<u64>,
    /// Coarse subsystem: `"supervisor"`, `"online"`, `"pipeline"`,
    /// `"policy"`, `"sim"`, ….
    pub scope: &'static str,
    /// Event kind, e.g. `"tick"`, `"verdict-flip"`, `"breaker-open"`.
    pub name: String,
    /// Free-form detail (pair label, counts, states).
    pub detail: String,
    /// Duration in microseconds for span-style events; `None` for instants.
    pub dur_us: Option<u64>,
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    ring: Mutex<VecDeque<TraceEvent>>,
}

/// A cloneable handle to a shared bounded event ring.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Creates an **enabled** tracer with room for `capacity` events
    /// (oldest evicted first). A zero capacity is bumped to one.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(true),
                capacity,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                epoch: Instant::now(),
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
            }),
        }
    }

    /// Creates a **disabled** tracer with the default capacity; flip it on
    /// later with [`set_enabled`](Tracer::set_enabled).
    pub fn disabled() -> Self {
        let t = Tracer::new(DEFAULT_CAPACITY);
        t.set_enabled(false);
        t
    }

    /// Builds a tracer from a `CCHUNTER_TRACE`-style setting (see the
    /// module docs for the accepted values).
    pub fn from_env_value(value: Option<&str>) -> Self {
        match capacity_from_env_value(value) {
            Some(capacity) => Tracer::new(capacity),
            None => Tracer::disabled(),
        }
    }

    /// Builds a tracer from the `CCHUNTER_TRACE` environment variable.
    pub fn from_env() -> Self {
        Tracer::from_env_value(std::env::var("CCHUNTER_TRACE").ok().as_deref())
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording (existing events are kept).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Records an instantaneous event.
    pub fn event(&self, scope: &'static str, name: &str, detail: impl fmt::Display) {
        self.record(None, scope, name, detail, None);
    }

    /// Records an instantaneous event stamped with a simulated cycle.
    pub fn event_at(&self, cycle: u64, scope: &'static str, name: &str, detail: impl fmt::Display) {
        self.record(Some(cycle), scope, name, detail, None);
    }

    /// Opens a timed section; the event (with its duration) is recorded
    /// when the returned guard drops. When the tracer is disabled the
    /// guard is inert and costs nothing beyond construction.
    pub fn span(&self, scope: &'static str, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span {
                tracer: None,
                scope,
                name,
                detail: String::new(),
                cycle: None,
                start: None,
            };
        }
        Span {
            tracer: Some(self.clone()),
            scope,
            name,
            detail: String::new(),
            cycle: None,
            start: Some(Instant::now()),
        }
    }

    fn record(
        &self,
        cycle: Option<u64>,
        scope: &'static str,
        name: &str,
        detail: impl fmt::Display,
        dur_us: Option<u64>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let wall_us = self.inner.epoch.elapsed().as_micros() as u64;
        let event = TraceEvent {
            seq,
            wall_us,
            cycle,
            scope,
            name: name.to_string(),
            detail: detail.to_string(),
            dur_us,
        };
        let mut ring = self.inner.ring.lock().expect("tracer ring poisoned");
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .ring
            .lock()
            .expect("tracer ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().expect("tracer ring poisoned").len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Clears the ring (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner
            .ring
            .lock()
            .expect("tracer ring poisoned")
            .clear();
    }

    /// Renders the newest `limit` events as an aligned plain-text
    /// timeline, oldest of those first.
    pub fn render_timeline(&self, limit: usize) -> String {
        let events = self.events();
        let skip = events.len().saturating_sub(limit);
        let mut out = String::new();
        writeln!(
            out,
            "{:>6}  {:>10}  {:>10}  {:<10}  {:<18}  detail",
            "seq", "wall_us", "cycle", "scope", "event"
        )
        .expect("string write");
        for e in events.iter().skip(skip) {
            let cycle = e
                .cycle
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".to_string());
            let name = match e.dur_us {
                Some(d) => format!("{} [{d}us]", e.name),
                None => e.name.clone(),
            };
            writeln!(
                out,
                "{:>6}  {:>10}  {:>10}  {:<10}  {:<18}  {}",
                e.seq, e.wall_us, cycle, e.scope, name, e.detail
            )
            .expect("string write");
        }
        if skip > 0 || self.dropped() > 0 {
            writeln!(
                out,
                "({} shown, {} buffered, {} evicted from ring)",
                events.len() - skip,
                events.len(),
                self.dropped()
            )
            .expect("string write");
        }
        out
    }
}

/// Parses a `CCHUNTER_TRACE` setting into `Some(ring capacity)` when
/// tracing should be on, `None` when off. Exposed for tests so the env
/// parsing is checkable without mutating process environment.
pub fn capacity_from_env_value(value: Option<&str>) -> Option<usize> {
    let value = value?.trim();
    match value {
        "" | "0" => None,
        "1" => Some(DEFAULT_CAPACITY),
        other => match other.parse::<usize>() {
            Ok(n) if n > 1 => Some(n),
            _ => None,
        },
    }
}

/// An RAII guard for a timed section; records one event with `dur_us` on
/// drop. Obtained from [`Tracer::span`].
#[derive(Debug)]
pub struct Span {
    tracer: Option<Tracer>,
    scope: &'static str,
    name: &'static str,
    detail: String,
    cycle: Option<u64>,
    start: Option<Instant>,
}

impl Span {
    /// Replaces the span's detail text (shown on the recorded event).
    pub fn detail(&mut self, detail: impl fmt::Display) {
        if self.tracer.is_some() {
            self.detail = detail.to_string();
        }
    }

    /// Stamps the span with a simulated cycle.
    pub fn cycle(&mut self, cycle: u64) {
        self.cycle = Some(cycle);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(tracer), Some(start)) = (self.tracer.take(), self.start) {
            let dur_us = start.elapsed().as_micros() as u64;
            tracer.record(
                self.cycle,
                self.scope,
                self.name,
                std::mem::take(&mut self.detail),
                Some(dur_us),
            );
        }
    }
}

/// The process-wide tracer, configured from `CCHUNTER_TRACE` at first use.
/// Hot paths that have no injected tracer (pipeline batch audits, online
/// verdict flips, breaker transitions) record here.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_and_bounded() {
        let t = Tracer::new(3);
        for i in 0..5u32 {
            t.event("test", "tick", i);
        }
        let events = t.events();
        assert_eq!(events.len(), 3, "ring keeps the newest 3");
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(events[2].detail, "4");
        assert!(events.windows(2).all(|w| w[0].wall_us <= w[1].wall_us));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.event("test", "ignored", "");
        {
            let mut span = t.span("test", "ignored-span");
            span.detail("also ignored");
        }
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
        t.set_enabled(true);
        t.event("test", "kept", "");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn spans_record_duration_on_drop() {
        let t = Tracer::new(8);
        {
            let mut span = t.span("supervisor", "tick");
            span.detail("pairs=4");
            span.cycle(1234);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = t.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "tick");
        assert_eq!(e.detail, "pairs=4");
        assert_eq!(e.cycle, Some(1234));
        assert!(e.dur_us.expect("span has duration") >= 1_000);
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(capacity_from_env_value(None), None);
        assert_eq!(capacity_from_env_value(Some("")), None);
        assert_eq!(capacity_from_env_value(Some("0")), None);
        assert_eq!(capacity_from_env_value(Some("1")), Some(DEFAULT_CAPACITY));
        assert_eq!(capacity_from_env_value(Some("256")), Some(256));
        assert_eq!(capacity_from_env_value(Some(" 64 ")), Some(64));
        assert_eq!(capacity_from_env_value(Some("nope")), None);
    }

    #[test]
    fn timeline_renders_cycles_and_durations() {
        let t = Tracer::new(16);
        t.event_at(777, "sim", "quantum", "bus=3");
        {
            let _span = t.span("supervisor", "tick");
        }
        let text = t.render_timeline(10);
        assert!(text.contains("777"));
        assert!(text.contains("quantum"));
        assert!(text.contains("bus=3"));
        assert!(text.contains("tick ["), "span duration rendered: {text}");
    }
}
