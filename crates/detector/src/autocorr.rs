//! Oscillatory-pattern detection via autocorrelation (paper §IV-D).
//!
//! Cache covert channels modulate the *latency* of events rather than their
//! rate, producing an oscillating train of conflict misses between the
//! trojan and spy contexts. Oscillation is detected by computing the
//! autocorrelogram of the conflict-miss symbol series: a covert channel
//! shows strong periodic peaks (≈ 0.85–0.95) at lags near the number of
//! cache sets used for transmission, while benign workloads show no
//! sustained periodicity.

use crate::events::SymbolSeries;

/// Below this `n × lags` volume the naive O(n·lags) loop beats the FFT's
/// constant factor; above it [`Autocorrelogram::compute`] switches to the
/// Wiener–Khinchin path.
const NAIVE_CUTOFF: usize = 1 << 14;

/// Centers `samples` around their mean and returns `(centered, denominator)`
/// where the denominator is `Σᵢ (Xᵢ − X̄)²` — the shared first step of every
/// autocorrelation formula in this module. Returns `None` for series too
/// short (< 2) or with (numerically) zero variance, where every coefficient
/// is defined as 0.0.
fn centered_series(samples: &[f64]) -> Option<(Vec<f64>, f64)> {
    let n = samples.len();
    if n < 2 {
        return None;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = samples.iter().map(|x| x - mean).collect();
    let denom: f64 = centered.iter().map(|x| x * x).sum();
    if denom <= f64::EPSILON {
        return None;
    }
    Some((centered, denom))
}

/// The raw lag sum `Σᵢ centered[i]·centered[i+lag]`.
fn lag_sum(centered: &[f64], lag: usize) -> f64 {
    (0..centered.len() - lag)
        .map(|i| centered[i] * centered[i + lag])
        .sum()
}

/// The autocorrelation coefficient of `samples` at `lag`:
///
/// r_p = Σᵢ (Xᵢ − X̄)(Xᵢ₊ₚ − X̄) / Σᵢ (Xᵢ − X̄)²
///
/// Returns 0.0 when the series is shorter than `lag + 2` or has zero
/// variance.
///
/// ```
/// use cchunter_detector::autocorrelation;
/// let square: Vec<f64> = (0..64).map(|i| if (i / 8) % 2 == 0 { 1.0 } else { 0.0 }).collect();
/// assert!(autocorrelation(&square, 16) > 0.7);  // full period
/// assert!(autocorrelation(&square, 8) < -0.8);  // half period
/// ```
pub fn autocorrelation(samples: &[f64], lag: usize) -> f64 {
    if lag + 2 > samples.len() {
        return 0.0;
    }
    match centered_series(samples) {
        Some((centered, denom)) => lag_sum(&centered, lag) / denom,
        None => 0.0,
    }
}

/// Autocorrelation coefficients for every lag `0..=max_lag` of a series —
/// the paper's autocorrelogram (Figure 8b).
#[derive(Debug, Clone, PartialEq)]
pub struct Autocorrelogram {
    coefficients: Vec<f64>,
}

impl Autocorrelogram {
    /// Computes the autocorrelogram of `samples` up to `max_lag`.
    ///
    /// Lags beyond the series length yield 0.0 coefficients.
    ///
    /// Large inputs go through the Wiener–Khinchin FFT path (power spectrum
    /// → inverse FFT, O((n + lags)·log(n + lags))); tiny inputs use the
    /// direct O(n·lags) loop, which [`compute_naive`](Self::compute_naive)
    /// exposes as a reference implementation.
    pub fn compute(samples: &[f64], max_lag: usize) -> Self {
        Self::build(samples, max_lag, false)
    }

    /// The direct O(n·max_lag) reference implementation of
    /// [`compute`](Self::compute): every coefficient from its definition,
    /// no FFT. The two agree within floating-point round-off (≈ 1e-12
    /// relative); property tests enforce 1e-9.
    pub fn compute_naive(samples: &[f64], max_lag: usize) -> Self {
        Self::build(samples, max_lag, true)
    }

    fn build(samples: &[f64], max_lag: usize, force_naive: bool) -> Self {
        // The thread-local planner caches FFT twiddle tables and scratch
        // keyed by padded length, so repeated computes (an audit tick over
        // many pairs, or the online daemon's steady-state pushes) pay table
        // setup once. Semantics are unchanged: the planner picks the FFT or
        // direct path by the same NAIVE_CUTOFF volume rule.
        let coefficients = crate::batch::with_planner(|p| {
            p.correlogram_coefficients(samples, max_lag, NAIVE_CUTOFF, force_naive)
        });
        Autocorrelogram { coefficients }
    }

    /// Computes the autocorrelograms of many series in one pass over the
    /// shared thread-local plan cache — the batched entry point of the
    /// analysis engine. Equivalent to mapping [`compute`](Self::compute)
    /// over `series` (property-tested against
    /// [`compute_naive`](Self::compute_naive) to ≤1e-9); series that pad to
    /// the same transform length share one twiddle table and one set of
    /// scratch buffers.
    pub fn compute_batch<S: AsRef<[f64]>>(series: &[S], max_lag: usize) -> Vec<Self> {
        crate::batch::with_planner(|p| {
            series
                .iter()
                .map(|s| Autocorrelogram {
                    coefficients: p.correlogram_coefficients(
                        s.as_ref(),
                        max_lag,
                        NAIVE_CUTOFF,
                        false,
                    ),
                })
                .collect()
        })
    }

    /// Computes the autocorrelogram of a labeled symbol series.
    pub fn of_symbols(series: &SymbolSeries, max_lag: usize) -> Self {
        Self::compute(&series.as_f64(), max_lag)
    }

    /// The coefficient at `lag`.
    pub fn coefficient(&self, lag: usize) -> f64 {
        self.coefficients.get(lag).copied().unwrap_or(0.0)
    }

    /// All coefficients, index = lag.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The largest lag computed.
    pub fn max_lag(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }

    /// The `(lag, value)` of the highest coefficient among lags in
    /// `[min_lag, max_lag]`, or `None` if the range is empty.
    pub fn peak_in(&self, min_lag: usize, max_lag: usize) -> Option<(usize, f64)> {
        let hi = max_lag.min(self.max_lag());
        if min_lag > hi {
            return None;
        }
        // total_cmp: a degenerate series (NaN coefficients) must yield an
        // arbitrary-but-stable peak, never panic the daemon.
        (min_lag..=hi)
            .map(|lag| (lag, self.coefficients[lag]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The dominant periodic peak: the global maximum *after* the
    /// correlogram first decays below `dip_threshold`.
    ///
    /// Autocorrelation always starts at 1.0 and decays smoothly, so small
    /// lags trivially dominate a naive arg-max. A genuinely periodic series
    /// decays (or swings negative), then *recovers* at its period — the
    /// shape visible in the paper's Figure 8b. A series that never dips has
    /// no measurable period and yields `None`.
    pub fn dominant_peak(&self, min_lag: usize, dip_threshold: f64) -> Option<(usize, f64)> {
        let dip = (min_lag..=self.max_lag()).find(|&lag| self.coefficients[lag] < dip_threshold)?;
        self.peak_in(dip + 1, self.max_lag())
    }
}

/// Configuration for [`OscillationDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationConfig {
    /// Lags below this are ignored when searching for the decay dip and the
    /// dominant peak (adjacent events are trivially correlated).
    pub min_lag: usize,
    /// The correlogram must decay below this level before a recovery peak
    /// counts as periodic (see [`Autocorrelogram::dominant_peak`]).
    pub dip_threshold: f64,
    /// The peak autocorrelation required to call a series oscillatory.
    /// Covert cache channels exhibit ≈ 0.85–0.95; benign pairs stay well
    /// below.
    pub peak_threshold: f64,
    /// The coefficient required near the second harmonic (2 × peak lag,
    /// ± `harmonic_tolerance`) as a fraction of the peak, confirming
    /// *sustained* periodicity rather than a one-off bump.
    pub harmonic_fraction: f64,
    /// Relative half-width of the harmonic search window.
    pub harmonic_tolerance: f64,
    /// Minimum number of symbols needed for a meaningful verdict.
    pub min_samples: usize,
}

impl Default for OscillationConfig {
    fn default() -> Self {
        OscillationConfig {
            min_lag: 8,
            dip_threshold: 0.0,
            peak_threshold: 0.5,
            harmonic_fraction: 0.5,
            harmonic_tolerance: 0.15,
            min_samples: 64,
        }
    }
}

/// Outcome of oscillation analysis on one symbol series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationVerdict {
    /// Number of symbols analyzed.
    pub samples: usize,
    /// The dominant peak `(lag, coefficient)` found, if any.
    pub peak: Option<(usize, f64)>,
    /// Coefficient observed near the second harmonic of the peak lag.
    pub harmonic_value: f64,
    /// Whether the series shows significant sustained periodicity — the
    /// oscillatory-pattern signature of a cache covert timing channel.
    pub oscillatory: bool,
}

/// The oscillatory-pattern detector: autocorrelogram peak + harmonic
/// confirmation.
#[derive(Debug, Clone, Copy, Default)]
pub struct OscillationDetector {
    config: OscillationConfig,
}

impl OscillationDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: OscillationConfig) -> Self {
        OscillationDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &OscillationConfig {
        &self.config
    }

    /// Analyzes a symbol series, computing the autocorrelogram up to
    /// `max_lag` and judging periodicity.
    pub fn analyze(&self, series: &SymbolSeries, max_lag: usize) -> OscillationVerdict {
        let correlogram = Autocorrelogram::of_symbols(series, max_lag);
        self.analyze_correlogram(series.len(), &correlogram)
    }

    /// Judges an already-computed autocorrelogram.
    pub fn analyze_correlogram(
        &self,
        samples: usize,
        correlogram: &Autocorrelogram,
    ) -> OscillationVerdict {
        if samples < self.config.min_samples {
            return OscillationVerdict {
                samples,
                peak: None,
                harmonic_value: 0.0,
                oscillatory: false,
            };
        }
        let peak = correlogram.dominant_peak(self.config.min_lag, self.config.dip_threshold);
        let Some((peak_lag, peak_value)) = peak else {
            return OscillationVerdict {
                samples,
                peak: None,
                harmonic_value: 0.0,
                oscillatory: false,
            };
        };
        // Look for the second harmonic near 2 × peak_lag.
        let center = peak_lag * 2;
        let half_width = ((peak_lag as f64) * self.config.harmonic_tolerance).ceil() as usize;
        let lo = center.saturating_sub(half_width);
        let hi = center + half_width;
        let harmonic_value = if lo <= correlogram.max_lag() {
            correlogram.peak_in(lo, hi).map(|(_, v)| v).unwrap_or(0.0)
        } else {
            0.0
        };
        let strong_peak = peak_value >= self.config.peak_threshold;
        let harmonic_ok = if center > correlogram.max_lag() {
            // Cannot observe the second harmonic within the window: demand a
            // decisively strong primary peak instead.
            peak_value >= (self.config.peak_threshold + 1.0) / 2.0
        } else {
            harmonic_value >= self.config.harmonic_fraction * peak_value
        };
        OscillationVerdict {
            samples,
            peak: Some((peak_lag, peak_value)),
            harmonic_value,
            oscillatory: strong_peak && harmonic_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A square wave of `ones` ones then `zeros` zeros, repeated.
    fn square_wave(ones: usize, zeros: usize, repeats: usize) -> SymbolSeries {
        let mut s = Vec::new();
        for _ in 0..repeats {
            s.extend(std::iter::repeat_n(1u8, ones));
            s.extend(std::iter::repeat_n(0u8, zeros));
        }
        SymbolSeries::from_symbols(s)
    }

    #[test]
    fn r0_is_one() {
        let s: Vec<f64> = vec![1.0, 5.0, 2.0, 8.0];
        let c = Autocorrelogram::compute(&s, 2);
        assert!((c.coefficient(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_bounded_by_one() {
        let s: Vec<f64> = (0..200).map(|i| ((i * 7919) % 13) as f64).collect();
        let c = Autocorrelogram::compute(&s, 100);
        for lag in 0..=100 {
            assert!(c.coefficient(lag).abs() <= 1.0 + 1e-9, "lag {lag}");
        }
    }

    #[test]
    fn constant_series_has_zero_autocorrelation() {
        let s = vec![3.0; 100];
        assert_eq!(autocorrelation(&s, 1), 0.0);
        let c = Autocorrelogram::compute(&s, 10);
        assert_eq!(c.coefficient(5), 0.0);
    }

    #[test]
    fn short_series_yields_zero() {
        assert_eq!(autocorrelation(&[1.0], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), 0.0);
    }

    #[test]
    fn cache_channel_square_wave_peaks_at_full_period() {
        // 256 T→S followed by 256 S→T per bit: period 512 symbols —
        // the Figure 8 shape.
        let series = square_wave(256, 256, 8);
        let c = Autocorrelogram::of_symbols(&series, 1100);
        let (lag, value) = c.dominant_peak(8, 0.0).unwrap();
        assert!(
            (500..=524).contains(&lag),
            "peak near lag 512, got {lag} (r = {value})"
        );
        assert!(value > 0.8, "strong peak, got {value}");
        // Anti-correlation at the half period.
        assert!(c.coefficient(256) < -0.5);
    }

    #[test]
    fn oscillation_detector_flags_square_wave() {
        let series = square_wave(64, 64, 16);
        let v = OscillationDetector::default().analyze(&series, 512);
        assert!(v.oscillatory);
        let (lag, value) = v.peak.unwrap();
        assert!((120..=136).contains(&lag), "lag {lag}");
        assert!(value > 0.8);
        assert!(v.harmonic_value > 0.5);
    }

    #[test]
    fn random_series_is_not_oscillatory() {
        // Deterministic pseudo-random symbols.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let symbols: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect();
        let series = SymbolSeries::from_symbols(symbols);
        let v = OscillationDetector::default().analyze(&series, 1000);
        assert!(!v.oscillatory, "random noise must not trip: {v:?}");
        if let Some((_, value)) = v.peak {
            assert!(value < 0.3, "noise peak should be weak, got {value}");
        }
    }

    #[test]
    fn one_off_bump_is_rejected_by_harmonic_check() {
        // One single block pattern, then pure alternation: correlated once,
        // never again — the webserver false-alarm shape.
        let mut symbols = vec![0u8; 600];
        for i in 0..50 {
            symbols[i] = 1;
            symbols[200 + i] = 1;
        }
        let series = SymbolSeries::from_symbols(symbols);
        let v = OscillationDetector::default().analyze(&series, 560);
        // Peak near 200 exists but no harmonic at 400.
        if let Some((lag, value)) = v.peak {
            if (150..=250).contains(&lag) && value >= 0.5 {
                assert!(!v.oscillatory, "missing harmonic must block detection");
            }
        }
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let series = square_wave(4, 4, 4);
        let v = OscillationDetector::default().analyze(&series, 16);
        assert!(!v.oscillatory);
        assert!(v.peak.is_none());
    }

    #[test]
    fn peak_in_respects_bounds() {
        let series = square_wave(16, 16, 8);
        let c = Autocorrelogram::of_symbols(&series, 100);
        assert!(c.peak_in(200, 300).is_none() || c.max_lag() >= 200);
        let (lag, _) = c.peak_in(8, 100).unwrap();
        assert!(lag >= 8);
    }

    #[test]
    fn fft_path_matches_naive_reference() {
        // Large enough to cross NAIVE_CUTOFF, length not a power of two.
        let samples: Vec<f64> = (0..2_077)
            .map(|i| ((i * 31) % 17) as f64 + ((i / 100) % 2) as f64 * 3.0)
            .collect();
        let fast = Autocorrelogram::compute(&samples, 900);
        let naive = Autocorrelogram::compute_naive(&samples, 900);
        for lag in 0..=900 {
            assert!(
                (fast.coefficient(lag) - naive.coefficient(lag)).abs() < 1e-9,
                "lag {lag}: {} vs {}",
                fast.coefficient(lag),
                naive.coefficient(lag)
            );
        }
    }

    #[test]
    fn peak_in_survives_nan_coefficients() {
        // A degenerate correlogram must never panic the daemon.
        let c = Autocorrelogram {
            coefficients: vec![1.0, f64::NAN, 0.4, f64::NAN, 0.2],
        };
        let (lag, _) = c.peak_in(1, 4).expect("range is nonempty");
        assert!((1..=4).contains(&lag));
    }

    #[test]
    fn doc_formula_matches_direct_computation() {
        let s: Vec<f64> = vec![2.0, 4.0, 6.0, 8.0, 10.0, 1.0, 3.0, 5.0];
        let c = Autocorrelogram::compute(&s, 3);
        for lag in 0..=3 {
            assert!((c.coefficient(lag) - autocorrelation(&s, lag)).abs() < 1e-12);
        }
    }
}
