//! Event trains and symbol series — the detector's input representations.
//!
//! The paper analyzes two kinds of time series:
//!
//! * an **event train**: a uni-dimensional time series of event occurrences
//!   (Figure 4), here with an integer *weight* per entry so that run events
//!   such as "this division stalled for 17 cycles" can be represented
//!   compactly (one weighted entry instead of 17 unit entries);
//! * a **symbol series**: the *order* of labeled events with time abstracted
//!   away, used by the oscillation detector (each cache conflict miss is one
//!   symbol: its ordered replacer→victim pair identifier).

use crate::DetectorError;
use std::fmt;

/// A time-ordered train of (possibly weighted) events.
///
/// Timestamps are in cycles. Entries must be pushed in nondecreasing time
/// order; weights are the number of unit events the entry stands for.
///
/// ```
/// use cchunter_detector::EventTrain;
/// let mut train = EventTrain::new();
/// train.push(100, 1);
/// train.push(250, 3); // e.g. a 3-cycle contention run
/// assert_eq!(train.len(), 2);
/// assert_eq!(train.total_events(), 4);
/// assert_eq!(train.span(), Some((100, 250)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTrain {
    times: Vec<u64>,
    weights: Vec<u32>,
    total: u64,
}

impl EventTrain {
    /// Creates an empty train.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a train from unit events at the given timestamps.
    ///
    /// # Panics
    ///
    /// Panics if `times` is not sorted in nondecreasing order. Use
    /// [`EventTrain::try_from_times`] to get a typed error instead — the
    /// ingest sanitizer ([`crate::ingest::Sanitizer`]) builds trains through
    /// the fallible path so hostile input can never panic the daemon.
    pub fn from_times(times: Vec<u64>) -> Self {
        match Self::try_from_times(times) {
            Ok(train) => train,
            Err(e) => panic!("event times must be nondecreasing: {e}"),
        }
    }

    /// Creates a train from unit events at the given timestamps, returning
    /// [`DetectorError::HostileTrain`] if the timestamps are not sorted in
    /// nondecreasing order.
    pub fn try_from_times(times: Vec<u64>) -> Result<Self, DetectorError> {
        if let Some(i) = times.windows(2).position(|w| w[0] > w[1]) {
            return Err(DetectorError::HostileTrain {
                reason: format!(
                    "time travel at index {}: {} after {}",
                    i + 1,
                    times[i + 1],
                    times[i]
                ),
            });
        }
        let total = times.len() as u64;
        let weights = vec![1; times.len()];
        Ok(EventTrain {
            times,
            weights,
            total,
        })
    }

    /// Appends an event of `weight` unit occurrences at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last pushed event. Use
    /// [`EventTrain::try_push`] on untrusted input.
    pub fn push(&mut self, time: u64, weight: u32) {
        if let Err(e) = self.try_push(time, weight) {
            panic!("event times must be nondecreasing: {e}");
        }
    }

    /// Appends an event of `weight` unit occurrences at `time`, returning
    /// [`DetectorError::HostileTrain`] (and leaving the train unchanged) if
    /// `time` is earlier than the last pushed event.
    pub fn try_push(&mut self, time: u64, weight: u32) -> Result<(), DetectorError> {
        if let Some(&last) = self.times.last() {
            if time < last {
                return Err(DetectorError::HostileTrain {
                    reason: format!("time travel: {time} pushed after {last}"),
                });
            }
        }
        self.times.push(time);
        self.weights.push(weight);
        self.total += weight as u64;
        Ok(())
    }

    /// Number of entries (weighted events).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the train has no entries.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Total unit event count (sum of weights).
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// First and last timestamps, if nonempty.
    pub fn span(&self) -> Option<(u64, u64)> {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Iterates `(time, weight)` entries in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.times.iter().copied().zip(self.weights.iter().copied())
    }

    /// The raw timestamps.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// The raw per-entry weights (parallel to [`EventTrain::times`]).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// A zero-copy view of the whole train.
    pub fn as_view(&self) -> TrainView<'_> {
        TrainView {
            times: &self.times,
            weights: &self.weights,
            total: self.total,
        }
    }

    /// Mean unit-event rate over `[start, end)`, in events per cycle.
    ///
    /// Returns 0.0 for an empty window.
    pub fn mean_rate(&self, start: u64, end: u64) -> f64 {
        self.as_view().mean_rate(start, end)
    }

    /// Returns the sub-train with timestamps in `[start, end)`.
    pub fn window(&self, start: u64, end: u64) -> EventTrain {
        self.as_view().window(start, end).to_owned()
    }

    /// Splits the train into consecutive windows of `window_cycles` covering
    /// `[start, end)` (the last window may be partial).
    pub fn windows(&self, start: u64, end: u64, window_cycles: u64) -> Vec<EventTrain> {
        assert!(window_cycles > 0, "window length must be nonzero");
        let mut out = Vec::new();
        let mut lo = start;
        while lo < end {
            let hi = (lo + window_cycles).min(end);
            out.push(self.window(lo, hi));
            lo = hi;
        }
        out
    }
}

/// A borrowed, zero-copy slice of an event train: the times and weights of
/// a contiguous time-ordered run, whether they live in an [`EventTrain`] or
/// an [`EventTrainArena`] slab. Windowing a view is O(log n) and allocates
/// nothing, which is what lets the ingest → sanitize → window → analyze
/// chain run without copying events between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainView<'a> {
    times: &'a [u64],
    weights: &'a [u32],
    total: u64,
}

impl<'a> TrainView<'a> {
    /// Number of entries (weighted events).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Total unit event count (sum of weights).
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// First and last timestamps, if nonempty.
    pub fn span(&self) -> Option<(u64, u64)> {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Iterates `(time, weight)` entries in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + 'a {
        self.times.iter().copied().zip(self.weights.iter().copied())
    }

    /// The timestamps.
    pub fn times(&self) -> &'a [u64] {
        self.times
    }

    /// The per-entry weights (parallel to [`TrainView::times`]).
    pub fn weights(&self) -> &'a [u32] {
        self.weights
    }

    /// Mean unit-event rate over `[start, end)`, in events per cycle.
    ///
    /// Returns 0.0 for an empty window. Identical result to filtering and
    /// summing every entry (the times are sorted, so the half-open window
    /// is a contiguous run located by binary search).
    pub fn mean_rate(&self, start: u64, end: u64) -> f64 {
        if end <= start {
            return 0.0;
        }
        let w = self.window(start, end);
        w.total as f64 / (end - start) as f64
    }

    /// The sub-view with timestamps in `[start, end)` — zero-copy.
    pub fn window(&self, start: u64, end: u64) -> TrainView<'a> {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        let weights = &self.weights[lo..hi];
        TrainView {
            times: &self.times[lo..hi],
            weights,
            total: weights.iter().map(|&w| w as u64).sum(),
        }
    }

    /// Consecutive zero-copy windows of `window_cycles` covering
    /// `[start, end)` (the last window may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn windows(&self, start: u64, end: u64, window_cycles: u64) -> Vec<TrainView<'a>> {
        assert!(window_cycles > 0, "window length must be nonzero");
        let mut out = Vec::new();
        let mut lo = start;
        while lo < end {
            let hi = (lo + window_cycles).min(end);
            out.push(self.window(lo, hi));
            lo = hi;
        }
        out
    }

    /// Copies the view into an owned [`EventTrain`].
    pub fn to_owned(&self) -> EventTrain {
        EventTrain {
            times: self.times.to_vec(),
            weights: self.weights.to_vec(),
            total: self.total,
        }
    }
}

/// Arena-backed structure-of-arrays storage for many event trains: one
/// contiguous timestamp slab, one parallel weight slab, and per-train
/// ranges. An audit tick that rebuilds eight pairs' trains every quantum
/// reuses the same three allocations forever (`clear` keeps capacity), and
/// every analysis stage reads [`TrainView`]s borrowing straight from the
/// slabs.
///
/// ```
/// use cchunter_detector::events::EventTrainArena;
/// let mut arena = EventTrainArena::new();
/// let a = arena.begin_train();
/// arena.push(100, 1).unwrap();
/// arena.push(250, 3).unwrap();
/// let b = arena.begin_train();
/// arena.push(40, 1).unwrap(); // trains are independently ordered
/// assert_eq!(arena.trains(), 2);
/// assert_eq!(arena.view(a).total_events(), 4);
/// assert_eq!(arena.view(b).times(), &[40]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventTrainArena {
    times: Vec<u64>,
    weights: Vec<u32>,
    /// Per-train `(start, total_weight)`; a train's entries end where the
    /// next train's start (or the slab end) begins.
    ranges: Vec<(usize, u64)>,
}

impl EventTrainArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trains.
    pub fn trains(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the arena holds no trains.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total entries across all trains.
    pub fn entries(&self) -> usize {
        self.times.len()
    }

    /// Drops all trains, keeping the slab allocations for reuse.
    pub fn clear(&mut self) {
        self.times.clear();
        self.weights.clear();
        self.ranges.clear();
    }

    /// Opens a new (empty) train at the end of the slabs and returns its
    /// index. Subsequent [`EventTrainArena::push`] calls append to it.
    pub fn begin_train(&mut self) -> usize {
        self.ranges.push((self.times.len(), 0));
        self.ranges.len() - 1
    }

    /// Appends an event to the currently open train, enforcing the same
    /// nondecreasing-time contract as [`EventTrain::try_push`] (scoped to
    /// this train — different trains are independent series).
    ///
    /// Returns [`DetectorError::HostileTrain`] if no train is open or time
    /// runs backwards within the open train.
    pub fn push(&mut self, time: u64, weight: u32) -> Result<(), DetectorError> {
        let Some(&mut (start, ref mut total)) = self.ranges.last_mut() else {
            return Err(DetectorError::HostileTrain {
                reason: "push into an arena with no open train".to_string(),
            });
        };
        if let Some(&last) = self.times.get(start..).and_then(<[u64]>::last) {
            if time < last {
                return Err(DetectorError::HostileTrain {
                    reason: format!("time travel: {time} pushed after {last}"),
                });
            }
        }
        self.times.push(time);
        self.weights.push(weight);
        *total += weight as u64;
        Ok(())
    }

    /// Copies an owned train into the arena as a new train, returning its
    /// index.
    pub fn push_train(&mut self, train: &EventTrain) -> usize {
        let idx = self.begin_train();
        self.times.extend_from_slice(&train.times);
        self.weights.extend_from_slice(&train.weights);
        self.ranges[idx].1 = train.total;
        idx
    }

    /// A zero-copy view of train `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn view(&self, idx: usize) -> TrainView<'_> {
        let (start, total) = self.ranges[idx];
        let end = self
            .ranges
            .get(idx + 1)
            .map_or(self.times.len(), |&(next, _)| next);
        TrainView {
            times: &self.times[start..end],
            weights: &self.weights[start..end],
            total,
        }
    }

    /// Iterates zero-copy views of every train in insertion order.
    pub fn views(&self) -> impl Iterator<Item = TrainView<'_>> {
        (0..self.trains()).map(|i| self.view(i))
    }
}

impl FromIterator<u64> for EventTrain {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        EventTrain::from_times(iter.into_iter().collect())
    }
}

impl Extend<(u64, u32)> for EventTrain {
    fn extend<I: IntoIterator<Item = (u64, u32)>>(&mut self, iter: I) {
        for (t, w) in iter {
            self.push(t, w);
        }
    }
}

/// An ordered series of event labels with time abstracted away.
///
/// For the cache oscillation detector each symbol is the identifier of an
/// ordered (replacer → victim) context pair: "S→T" is one symbol value,
/// "T→S" another (paper §IV-D).
///
/// ```
/// use cchunter_detector::SymbolSeries;
/// let series: SymbolSeries = [1u8, 0, 1, 0].into_iter().collect();
/// assert_eq!(series.len(), 4);
/// assert_eq!(series.alphabet_size(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolSeries {
    symbols: Vec<u8>,
}

impl SymbolSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing symbol vector.
    pub fn from_symbols(symbols: Vec<u8>) -> Self {
        SymbolSeries { symbols }
    }

    /// Appends one symbol.
    pub fn push(&mut self, symbol: u8) {
        self.symbols.push(symbol);
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols in order.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Number of distinct symbol values present.
    pub fn alphabet_size(&self) -> usize {
        let mut seen = [false; 256];
        let mut count = 0;
        for &s in &self.symbols {
            if !seen[s as usize] {
                seen[s as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// The series as `f64` samples, for correlation analysis.
    pub fn as_f64(&self) -> Vec<f64> {
        self.symbols.iter().map(|&s| s as f64).collect()
    }

    /// Splits into consecutive chunks of at most `chunk` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = SymbolSeries> + '_ {
        assert!(chunk > 0, "chunk size must be nonzero");
        self.symbols
            .chunks(chunk)
            .map(|c| SymbolSeries::from_symbols(c.to_vec()))
    }
}

impl FromIterator<u8> for SymbolSeries {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        SymbolSeries {
            symbols: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for SymbolSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolSeries[{} symbols]", self.symbols.len())
    }
}

/// Identifier of an ordered (replacer → victim) hardware context pair.
///
/// Every ordered pair of distinct contexts gets a unique identifier, as the
/// paper requires ("every ordered pair of trojan/spy contexts have unique
/// identifiers").
///
/// ```
/// use cchunter_detector::events::pair_symbol;
/// let s_to_t = pair_symbol(1, 0, 8);
/// let t_to_s = pair_symbol(0, 1, 8);
/// assert_ne!(s_to_t, t_to_s);
/// ```
pub fn pair_symbol(replacer: u8, victim: u8, contexts: u8) -> u8 {
    replacer * contexts + victim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_order() {
        let mut t = EventTrain::new();
        t.push(5, 1);
        t.push(5, 2);
        t.push(9, 1);
        assert_eq!(t.total_events(), 4);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn push_rejects_time_travel() {
        let mut t = EventTrain::new();
        t.push(10, 1);
        t.push(9, 1);
    }

    #[test]
    fn try_push_reports_time_travel_without_mutating() {
        let mut t = EventTrain::new();
        t.push(10, 1);
        let err = t.try_push(9, 1).unwrap_err();
        assert!(matches!(err, DetectorError::HostileTrain { .. }), "{err}");
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_events(), 1);
        t.try_push(10, 2).unwrap();
        assert_eq!(t.total_events(), 3);
    }

    #[test]
    fn try_from_times_pinpoints_offender() {
        let err = EventTrain::try_from_times(vec![1, 5, 3, 9]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("index 2"), "{msg}");
        assert!(EventTrain::try_from_times(vec![1, 3, 3, 9]).is_ok());
    }

    #[test]
    fn window_selects_half_open_interval() {
        let t = EventTrain::from_times(vec![0, 10, 20, 30, 40]);
        let w = t.window(10, 30);
        assert_eq!(w.times(), &[10, 20]);
        assert_eq!(w.total_events(), 2);
    }

    #[test]
    fn windows_cover_range() {
        let t = EventTrain::from_times(vec![0, 10, 20, 30, 40]);
        let ws = t.windows(0, 50, 20);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].len(), 2);
        assert_eq!(ws[1].len(), 2);
        assert_eq!(ws[2].len(), 1);
    }

    #[test]
    fn mean_rate_counts_weights() {
        let mut t = EventTrain::new();
        t.push(0, 2);
        t.push(50, 2);
        assert!((t.mean_rate(0, 100) - 0.04).abs() < 1e-12);
        assert_eq!(t.mean_rate(100, 100), 0.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: EventTrain = vec![1u64, 2, 3].into_iter().collect();
        t.extend(vec![(4u64, 2u32)]);
        assert_eq!(t.total_events(), 5);
    }

    #[test]
    fn empty_train_edge_cases() {
        let t = EventTrain::new();
        assert!(t.is_empty());
        assert_eq!(t.span(), None);
        assert_eq!(t.mean_rate(0, 100), 0.0);
        assert!(t.window(0, 10).is_empty());
    }

    #[test]
    fn symbol_series_alphabet() {
        let s = SymbolSeries::from_symbols(vec![3, 3, 7, 3, 9]);
        assert_eq!(s.alphabet_size(), 3);
        assert_eq!(s.as_f64()[2], 7.0);
    }

    #[test]
    fn symbol_chunks_partition() {
        let s: SymbolSeries = (0..10u8).collect();
        let chunks: Vec<_> = s.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].len(), 2);
    }

    #[test]
    fn pair_symbols_are_unique_for_eight_contexts() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..8u8 {
            for v in 0..8u8 {
                assert!(seen.insert(pair_symbol(r, v, 8)));
            }
        }
        assert_eq!(seen.len(), 64);
    }
}
