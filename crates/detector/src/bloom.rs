//! A compact k-hash Bloom filter, used by the practical conflict-miss
//! tracker to remember prematurely replaced cache blocks (paper Figure 9:
//! "a compact three-hash bloom filter" per generation).

/// A fixed-size Bloom filter over `u64` keys with `k` derived hash
//  functions.
///
/// Membership queries can return false positives (bounded by the usual
/// Bloom arithmetic) but never false negatives, which is the property the
/// conflict-miss tracker relies on: a conflict miss can be over- but never
/// under-reported by the filter itself.
///
/// ```
/// use cchunter_detector::BloomFilter;
/// let mut f = BloomFilter::new(4096, 3);
/// f.insert(0xDEAD_BEEF);
/// assert!(f.contains(0xDEAD_BEEF));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` or `hashes` is zero.
    pub fn new(num_bits: usize, hashes: u32) -> Self {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        assert!(hashes > 0, "bloom filter needs at least one hash");
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(64)],
            num_bits,
            hashes,
            inserted: 0,
        }
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Keys inserted since the last [`clear`](BloomFilter::clear).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: u64) {
        let (mut bit, stride) = self.probe_start(key);
        for _ in 0..self.hashes {
            self.bits[bit / 64] |= 1u64 << (bit % 64);
            bit = (bit + stride) % self.num_bits;
        }
        self.inserted += 1;
    }

    /// Whether `key` may have been inserted (false positives possible).
    pub fn contains(&self, key: u64) -> bool {
        let (mut bit, stride) = self.probe_start(key);
        for _ in 0..self.hashes {
            if self.bits[bit / 64] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            bit = (bit + stride) % self.num_bits;
        }
        true
    }

    /// Flash-clears the filter (the hardware operation performed when a
    /// generation is discarded).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Fraction of bits set — a saturation measure.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }

    /// Double hashing (Kirsch–Mitzenmacher): the `k` probe positions
    /// `bit_i = (h1 + i·h2) mod m` all derive from exactly two hash
    /// evaluations — `h1 = splitmix64(key)` and `h2 = splitmix64(h1)` —
    /// instead of re-hashing the key once per probe. Returns the first
    /// probe position and the (nonzero) stride between consecutive probes.
    /// Deterministic across runs.
    fn probe_start(&self, key: u64) -> (usize, usize) {
        let h1 = splitmix64(key);
        let h2 = splitmix64(h1) | 1; // odd, so strides cover the field
        let start = (h1 % self.num_bits as u64) as usize;
        // Keep the reduced stride nonzero so the k probes never collapse
        // onto a single bit.
        let stride = ((h2 % self.num_bits as u64) as usize).max(1);
        (start, stride)
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(4096, 3);
        let keys: Vec<u64> = (0..256).map(|i| i * 64 + 0x10_0000).collect();
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            assert!(f.contains(k), "key {k:#x} lost");
        }
        assert_eq!(f.inserted(), 256);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 3);
        for k in 0..1000u64 {
            assert!(!f.contains(k * 997));
        }
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn clear_is_flash_clear() {
        let mut f = BloomFilter::new(256, 3);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.inserted(), 0);
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        // Paper sizing: one generation holds at most N/4 = 1024 replaced
        // blocks in an N = 4096-bit filter with 3 hashes. With replacement
        // traffic far below the cap in practice, spot-check FP rate under a
        // quarter load.
        let mut f = BloomFilter::new(4096, 3);
        for i in 0..256u64 {
            f.insert(i * 64);
        }
        let fps = (0..10_000u64)
            .map(|i| 0xABCD_0000 + i * 64)
            .filter(|&k| f.contains(k))
            .count();
        let rate = fps as f64 / 10_000.0;
        assert!(rate < 0.02, "false positive rate too high: {rate}");
    }

    #[test]
    fn fill_ratio_grows_monotonically() {
        let mut f = BloomFilter::new(512, 3);
        let mut last = 0.0;
        for i in 0..64u64 {
            f.insert(i.wrapping_mul(0x1234_5678_9ABC));
            let r = f.fill_ratio();
            assert!(r >= last);
            last = r;
        }
        assert!(last > 0.0 && last <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        let _ = BloomFilter::new(0, 3);
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let f = BloomFilter::new(1 << 16, 3);
        assert_ne!(f.probe_start(1), f.probe_start(2));
    }

    #[test]
    fn double_hashing_keeps_fp_rate_within_theory() {
        // Double hashing is asymptotically FP-equivalent to k independent
        // hashes (Kirsch & Mitzenmacher 2006). Guard the two-evaluation
        // probe derivation against regressions by checking the measured
        // rate stays within 2× of the theoretical (1 - e^{-kn/m})^k.
        let (m, k, n) = (4096usize, 3u32, 512u64);
        let mut f = BloomFilter::new(m, k);
        for i in 0..n {
            f.insert(splitmix64(i)); // spread keys over the full u64 space
        }
        let trials = 50_000u64;
        let fps = (0..trials)
            .map(|i| splitmix64(0x5EED_0000 + i))
            .filter(|&key| f.contains(key))
            .count();
        let measured = fps as f64 / trials as f64;
        let theory = (1.0 - (-(k as f64) * n as f64 / m as f64).exp()).powi(k as i32);
        assert!(
            measured < 2.0 * theory + 0.002,
            "measured FP rate {measured:.4} vs theoretical {theory:.4}"
        );
    }
}
