//! Online (streaming) detection — the long-running daemon view.
//!
//! The batch APIs in [`crate::pipeline`] analyze a completed observation
//! window; a deployed CC-Hunter daemon instead consumes the CC-auditor's
//! buffers quantum by quantum, keeps a sliding observation window (at most
//! 512 quanta, §IV-B), and raises an alarm the moment recurrence (or
//! sustained oscillation) is established.
//!
//! ## Degraded harvests
//!
//! A real deployment does not get a pristine histogram every quantum: the
//! daemon can be descheduled past a harvest deadline (quantum missed),
//! registers saturate, buffers are truncated by DMA races. The daemon
//! therefore consumes [`Harvest`] values rather than bare histograms, keeps
//! *gap-aware* windows (a missed quantum occupies a window slot with zero
//! observation weight instead of silently vanishing), and every status
//! carries a [`confidence`](OnlineStatus::confidence) — the observed
//! fraction of the window — that decays under loss instead of letting the
//! verdict flip to a spuriously confident `Clean`.
//!
//! ## Incremental windows
//!
//! Both daemons keep their observation window in a ring buffer
//! ([`crate::window::SlidingWindow`]) with running aggregates (observation
//! weight, observed / bursty / oscillatory counts), so `push_quantum` /
//! `push_slot` cost O(1) per quantum plus the analysis of the new slot
//! itself — nothing in the window is ever re-scanned. The contention
//! daemon's k-means clustering is memoized on the window's bursty-feature
//! sequence: a quantum sliding through the window is discretized exactly
//! once, and the clustering reruns only when a push or eviction changes the
//! sequence (the seeded k-means is deterministic, so reuse is exact). The
//! running weight sum is rebased — recomputed from the ring — every
//! `capacity` pushes, which keeps it amortized O(1) while preventing
//! floating-point round-off from accumulating without bound.
//!
//! ## Checkpoint / restore
//!
//! Both daemons serialize their sliding window to the plain-text checkpoint
//! format of [`crate::trace`] ([`OnlineContentionDetector::checkpoint`],
//! [`OnlineContentionDetector::restore`]), so a daemon restart resumes
//! mid-window and reproduces the verdict sequence of an uninterrupted run.

use crate::auditor::ConflictRecord;
use crate::autocorr::{OscillationDetector, OscillationVerdict};
use crate::burst::{BurstDetector, BurstVerdict};
use crate::cluster::{discretized_features, recurrence_from_features, RecurrenceVerdict};
use crate::density::DensityHistogram;
use crate::metrics::{default_registry, Counter};
use crate::pipeline::{symbol_series, CcHunterConfig, Verdict};
use crate::span;
use crate::trace::{read_checkpoint, write_checkpoint, Checkpoint, CheckpointSlot};
use crate::window::SlidingWindow;
use crate::DetectorError;
use std::io::{Read, Write};
use std::sync::OnceLock;

/// Process-wide count of quanta pushed into any online daemon.
fn online_pushes_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_online_pushes_total",
            "Quanta pushed into online daemons (all pairs, all fleets)",
        )
    })
}

/// Process-wide count of missed (zero-weight) quanta pushed.
fn online_missed_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_online_missed_total",
            "Missed quanta (gaps) pushed into online daemons",
        )
    })
}

/// Process-wide count of daemon verdict flips (clean ↔ covert).
fn online_verdict_flips_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_online_verdict_flips_total",
            "Online daemon verdict changes (clean <-> covert)",
        )
    })
}

/// Publishes a verdict change on the daemon push path: counted always,
/// traced when the global tracer is on. `kind` is the daemon kind label.
fn note_verdict_flip(kind: &'static str, from: Verdict, to: Verdict, confidence: f64) {
    online_verdict_flips_total().inc();
    let tracer = span::global();
    if tracer.is_enabled() {
        tracer.event(
            "online",
            "verdict-flip",
            format!("{kind}: {from} -> {to} (confidence {confidence:.3})"),
        );
    }
}

/// One OS quantum's worth of harvested observation, as delivered to the
/// daemon — possibly degraded.
#[derive(Debug, Clone, PartialEq)]
pub enum Harvest {
    /// The full quantum was observed.
    Complete(DensityHistogram),
    /// The quantum was observed, but a fraction of it was lost or distorted
    /// (register saturation, truncated read-out, dropped Δt windows).
    Partial {
        /// What was salvaged.
        histogram: DensityHistogram,
        /// Estimated fraction of the quantum's observation that was lost,
        /// in `[0, 1]`.
        lost_fraction: f64,
    },
    /// The quantum's harvest never arrived (daemon descheduled past the
    /// deadline, buffer overwritten before read-out).
    Missed,
}

impl Harvest {
    /// The harvest's observation weight: 1.0 for a complete quantum, the
    /// observed fraction for a partial one, 0.0 for a miss.
    pub fn observed_weight(&self) -> f64 {
        match self {
            Harvest::Complete(_) => 1.0,
            Harvest::Partial { lost_fraction, .. } => (1.0 - lost_fraction).clamp(0.0, 1.0),
            Harvest::Missed => 0.0,
        }
    }

    /// The salvaged histogram, if any part of the quantum was observed.
    pub fn histogram(&self) -> Option<&DensityHistogram> {
        match self {
            Harvest::Complete(h) | Harvest::Partial { histogram: h, .. } => Some(h),
            Harvest::Missed => None,
        }
    }
}

impl From<DensityHistogram> for Harvest {
    fn from(histogram: DensityHistogram) -> Self {
        Harvest::Complete(histogram)
    }
}

/// Status returned after each pushed quantum.
#[derive(Debug, Clone)]
pub struct OnlineStatus {
    /// The quantum's own burst verdict (contention path) — `None` on the
    /// oscillation path or when the quantum was missed.
    pub quantum_burst: Option<BurstVerdict>,
    /// The quantum's oscillation verdict (oscillation path) — `None` on
    /// the contention path or when the quantum was missed.
    pub quantum_oscillation: Option<OscillationVerdict>,
    /// Recurrence over the observed quanta of the current sliding window
    /// (contention path).
    pub recurrence: Option<RecurrenceVerdict>,
    /// Oscillatory quanta within the current sliding window.
    pub oscillatory_in_window: usize,
    /// Quanta currently in the sliding window, missed ones included.
    pub window_len: usize,
    /// Quanta in the window with any observation at all.
    pub observed_in_window: usize,
    /// Observed fraction of the window, in `[0, 1]`: the sum of per-quantum
    /// observation weights divided by `window_len`. 1.0 means the verdict
    /// rests on a fully observed window; anything lower means harvests were
    /// lost or degraded and the verdict — covert *or* clean — is
    /// correspondingly less trustworthy.
    pub confidence: f64,
    /// The daemon's current call.
    pub verdict: Verdict,
}

impl OnlineStatus {
    /// Whether the verdict rests on a degraded window (missed or partial
    /// harvests present).
    pub fn is_degraded(&self) -> bool {
        self.confidence < 1.0
    }
}

/// One sliding-window slot of the contention daemon.
#[derive(Debug, Clone)]
struct QuantumSlot {
    histogram: Option<DensityHistogram>,
    /// Discretized k-means features — present iff the quantum's burst
    /// verdict was significant. Computed once at push time so a quantum is
    /// never re-discretized while it slides through the window.
    features: Option<Vec<f64>>,
    weight: f64,
}

/// Cached clustering outcome over the window's current bursty-feature
/// sequence. `windows`/`bursty_windows` are patched in from the running
/// counters at read time; the expensive part (k-means) is only redone when a
/// push or eviction changes the bursty sequence itself.
#[derive(Debug, Clone, Copy)]
struct ClusterCache {
    largest_burst_cluster: usize,
    recurrent: bool,
}

/// Streaming detector for one *combinational* resource (bus, divider,
/// multiplier): feed one harvest per OS quantum.
///
/// ```
/// use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
/// use cchunter_detector::online::{Harvest, OnlineContentionDetector};
/// use cchunter_detector::pipeline::CcHunterConfig;
///
/// let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 512).unwrap();
/// let mut bins = vec![0u64; HISTOGRAM_BINS];
/// bins[0] = 2_400;
/// bins[20] = 100; // a covert-channel-shaped quantum
/// let covert = DensityHistogram::from_bins(bins, 100_000).unwrap();
/// let status = daemon.push_quantum(covert.clone());
/// assert!(!status.verdict.is_covert(), "one bursty quantum is not recurrent");
/// let status = daemon.push_quantum(covert);
/// assert!(status.verdict.is_covert(), "the pattern recurs");
/// assert_eq!(status.confidence, 1.0, "no harvests were lost");
/// // A missed harvest leaves a gap in the window instead of vanishing:
/// let status = daemon.push_quantum(Harvest::Missed);
/// assert!(status.confidence < 1.0);
/// ```
#[derive(Debug)]
pub struct OnlineContentionDetector {
    config: CcHunterConfig,
    detector: BurstDetector,
    window: SlidingWindow<QuantumSlot>,
    /// Running observation-weight sum over the window (running confidence
    /// numerator).
    weight_sum: f64,
    /// Running count of slots holding a histogram.
    observed: usize,
    /// Running count of slots with a significant burst verdict.
    bursty: usize,
    /// Pushes since `weight_sum` was last recomputed from the ring; the sum
    /// is rebased every `capacity` pushes (amortized O(1)) so add/subtract
    /// round-off can never accumulate.
    pushes_since_rebase: usize,
    /// Clustering cache, invalidated when the bursty sequence changes.
    cache: Option<ClusterCache>,
    /// The last verdict returned, so flips can be traced.
    last_verdict: Verdict,
}

impl OnlineContentionDetector {
    /// Creates a daemon keeping a sliding window of `window_quanta`
    /// (clamped to the paper's 512-quantum limit).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `window_quanta` is zero.
    pub fn new(config: CcHunterConfig, window_quanta: usize) -> Result<Self, DetectorError> {
        if window_quanta == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "window must hold at least one quantum".to_string(),
            });
        }
        Ok(OnlineContentionDetector {
            detector: BurstDetector::new(config.burst),
            config,
            window: SlidingWindow::new(window_quanta.min(512)),
            weight_sum: 0.0,
            observed: 0,
            bursty: 0,
            pushes_since_rebase: 0,
            cache: None,
            last_verdict: Verdict::Clean,
        })
    }

    /// Quanta currently retained (missed quanta included).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The sliding-window capacity in quanta.
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }

    /// Feeds one quantum's harvest (a bare [`DensityHistogram`] converts to
    /// [`Harvest::Complete`]); returns the daemon's up-to-date status.
    ///
    /// Never panics: a missed or partial harvest occupies a window slot
    /// with reduced observation weight, and the returned status's
    /// [`confidence`](OnlineStatus::confidence) reports how much of the
    /// window the verdict actually rests on.
    pub fn push_quantum(&mut self, harvest: impl Into<Harvest>) -> OnlineStatus {
        let harvest = harvest.into();
        online_pushes_total().inc();
        if matches!(harvest, Harvest::Missed) {
            online_missed_total().inc();
        }
        let weight = harvest.observed_weight();
        let (histogram, verdict) = match harvest {
            Harvest::Complete(h) | Harvest::Partial { histogram: h, .. } => {
                let v = self.detector.analyze(&h);
                (Some(h), Some(v))
            }
            Harvest::Missed => (None, None),
        };
        let features = match (&histogram, &verdict) {
            (Some(h), Some(v)) if v.significant => Some(discretized_features(h)),
            _ => None,
        };
        self.insert_slot(QuantumSlot {
            histogram,
            features,
            weight,
        });
        self.status(verdict)
    }

    /// Slides `slot` into the window, maintaining the running aggregates in
    /// O(1) and invalidating the clustering cache only when the bursty
    /// sequence actually changed.
    fn insert_slot(&mut self, slot: QuantumSlot) {
        self.weight_sum += slot.weight;
        if slot.histogram.is_some() {
            self.observed += 1;
        }
        if slot.features.is_some() {
            self.bursty += 1;
            self.cache = None;
        }
        if let Some(evicted) = self.window.push(slot) {
            self.weight_sum -= evicted.weight;
            if evicted.histogram.is_some() {
                self.observed -= 1;
            }
            if evicted.features.is_some() {
                self.bursty -= 1;
                self.cache = None;
            }
        }
        self.pushes_since_rebase += 1;
        if self.pushes_since_rebase >= self.window.capacity() {
            self.weight_sum = self.window.iter().map(|s| s.weight).sum();
            self.pushes_since_rebase = 0;
        }
    }

    /// Recurrence over the observed quanta of the current window. Cheap
    /// counters answer the common cases; k-means reruns only when the
    /// window's bursty-feature sequence changed since the last clustering.
    fn recurrence(&mut self) -> RecurrenceVerdict {
        // Recurrence is established over the *observed* quanta only — a
        // gap cannot make two recurring patterns dissimilar, it just
        // shrinks the evidence (which the confidence reports).
        if self.bursty < self.config.cluster.min_recurring {
            return RecurrenceVerdict {
                windows: self.observed,
                bursty_windows: self.bursty,
                largest_burst_cluster: self.bursty,
                recurrent: false,
            };
        }
        if let Some(cache) = self.cache {
            return RecurrenceVerdict {
                windows: self.observed,
                bursty_windows: self.bursty,
                largest_burst_cluster: cache.largest_burst_cluster,
                recurrent: cache.recurrent,
            };
        }
        let features: Vec<&[f64]> = self
            .window
            .iter()
            .filter_map(|s| s.features.as_deref())
            .collect();
        let verdict = recurrence_from_features(self.observed, &features, &self.config.cluster);
        self.cache = Some(ClusterCache {
            largest_burst_cluster: verdict.largest_burst_cluster,
            recurrent: verdict.recurrent,
        });
        verdict
    }

    /// Computes the daemon's status over the current window; `quantum` is
    /// the just-pushed quantum's own verdict, if it was observed.
    fn status(&mut self, quantum: Option<BurstVerdict>) -> OnlineStatus {
        let recurrence = self.recurrence();
        let window_len = self.window.len();
        let confidence = if window_len == 0 {
            0.0
        } else {
            // Clamped: the running sum can sit an ulp outside [0, len].
            (self.weight_sum / window_len as f64).clamp(0.0, 1.0)
        };
        // Covert evidence always stands; only an affirmative Clean demands
        // the confidence floor — a blinded monitor must not clear anything.
        let call = if recurrence.recurrent {
            Verdict::CovertTimingChannel
        } else if confidence < self.config.min_confidence {
            Verdict::Inconclusive
        } else {
            Verdict::Clean
        };
        if call != self.last_verdict {
            note_verdict_flip("contention", self.last_verdict, call, confidence);
            self.last_verdict = call;
        }
        OnlineStatus {
            quantum_burst: quantum,
            quantum_oscillation: None,
            oscillatory_in_window: 0,
            window_len,
            observed_in_window: self.observed,
            confidence,
            recurrence: Some(recurrence),
            verdict: call,
        }
    }

    /// Serializes the sliding window to `writer` in the plain-text
    /// checkpoint format of [`crate::trace`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `writer`.
    pub fn checkpoint<W: Write>(&self, writer: W) -> Result<(), DetectorError> {
        let slots = self
            .window
            .iter()
            .map(|s| CheckpointSlot {
                weight: s.weight,
                histogram: s.histogram.as_ref().map(|h| {
                    let sparse: Vec<(usize, u64)> = h
                        .bins()
                        .iter()
                        .enumerate()
                        .filter(|(_, &f)| f > 0)
                        .map(|(i, &f)| (i, f))
                        .collect();
                    (h.delta_t(), sparse)
                }),
                oscillatory: None,
            })
            .collect();
        let cp = Checkpoint {
            kind: "contention".to_string(),
            capacity: self.window.capacity(),
            slots,
        };
        write_checkpoint(&cp, writer)?;
        Ok(())
    }

    /// Restores a daemon from a checkpoint written by
    /// [`checkpoint`](Self::checkpoint). Per-quantum burst verdicts are
    /// recomputed from the serialized histograms (the analysis is
    /// deterministic), so a restored daemon produces the same verdict
    /// sequence as one that never restarted.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::Trace`] on malformed input and
    /// [`DetectorError::CheckpointMismatch`] if the parsed state is
    /// incompatible with this daemon: wrong checkpoint kind, a capacity of
    /// zero or beyond the paper's 512-quantum window limit, more slots than
    /// the declared capacity, oscillation slots in a contention window, or
    /// histogram bin indices outside
    /// [`HISTOGRAM_BINS`](crate::density::HISTOGRAM_BINS). Incompatible
    /// state is never silently adopted (or clamped) — a daemon restored
    /// from a checkpoint either matches it exactly or refuses it.
    pub fn restore<R: Read>(config: CcHunterConfig, reader: R) -> Result<Self, DetectorError> {
        let cp = read_checkpoint(reader)?;
        if cp.kind != "contention" {
            return Err(DetectorError::CheckpointMismatch {
                reason: format!("expected a contention checkpoint, got kind {:?}", cp.kind),
            });
        }
        validate_window_shape(cp.capacity, cp.slots.len())?;
        let mut daemon = Self::new(config, cp.capacity)?;
        for (idx, slot) in cp.slots.into_iter().enumerate() {
            if slot.oscillatory.is_some() {
                return Err(DetectorError::CheckpointMismatch {
                    reason: format!(
                        "slot {idx} carries an oscillation outcome in a contention window"
                    ),
                });
            }
            let histogram = slot
                .histogram
                .map(|(delta_t, sparse)| {
                    let mut bins = vec![0u64; crate::density::HISTOGRAM_BINS];
                    for (i, f) in sparse {
                        let b = bins.get_mut(i).ok_or(DetectorError::CheckpointMismatch {
                            reason: format!(
                                "slot {idx} bin index {i} outside the {}-bin histogram",
                                crate::density::HISTOGRAM_BINS
                            ),
                        })?;
                        *b = f;
                    }
                    DensityHistogram::from_bins(bins, delta_t)
                })
                .transpose()?;
            let verdict = histogram.as_ref().map(|h| daemon.detector.analyze(h));
            let features = match (&histogram, &verdict) {
                (Some(h), Some(v)) if v.significant => Some(discretized_features(h)),
                _ => None,
            };
            daemon.insert_slot(QuantumSlot {
                histogram,
                features,
                weight: slot.weight,
            });
        }
        Ok(daemon)
    }
}

/// One sliding-window slot of the oscillation daemon.
#[derive(Debug, Clone, Copy)]
struct OscSlot {
    /// The quantum's oscillation outcome — `None` when it was missed.
    oscillatory: Option<bool>,
    weight: f64,
}

/// Streaming detector for a *memory* resource (shared cache): feed the
/// conflict records drained each OS quantum.
#[derive(Debug)]
pub struct OnlineOscillationDetector {
    config: CcHunterConfig,
    detector: OscillationDetector,
    window: SlidingWindow<OscSlot>,
    /// Running observation-weight sum over the window.
    weight_sum: f64,
    /// Running count of observed (non-missed) slots.
    observed: usize,
    /// Running count of oscillatory slots.
    oscillatory: usize,
    /// Pushes since the last exact recomputation of `weight_sum` (see
    /// [`OnlineContentionDetector`]).
    pushes_since_rebase: usize,
    /// The last verdict returned, so flips can be traced.
    last_verdict: Verdict,
}

impl OnlineOscillationDetector {
    /// Creates a daemon keeping a sliding window of `window_quanta`
    /// (clamped to 512).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `window_quanta` is zero.
    pub fn new(config: CcHunterConfig, window_quanta: usize) -> Result<Self, DetectorError> {
        if window_quanta == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "window must hold at least one quantum".to_string(),
            });
        }
        Ok(OnlineOscillationDetector {
            detector: OscillationDetector::new(config.oscillation),
            config,
            window: SlidingWindow::new(window_quanta.min(512)),
            weight_sum: 0.0,
            observed: 0,
            oscillatory: 0,
            pushes_since_rebase: 0,
            last_verdict: Verdict::Clean,
        })
    }

    /// Quanta currently retained (missed quanta included).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Maximum quanta the sliding window retains.
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }

    /// Feeds one quantum's drained conflict records.
    pub fn push_quantum(&mut self, records: &[ConflictRecord]) -> OnlineStatus {
        self.push_quantum_degraded(records, 0.0)
    }

    /// Feeds one quantum's conflict records, a `lost_fraction` of which is
    /// known to have been lost or corrupted (vector-register overruns,
    /// Bloom-filter aliasing bursts): the quantum still contributes its
    /// verdict, but with reduced observation weight.
    pub fn push_quantum_degraded(
        &mut self,
        records: &[ConflictRecord],
        lost_fraction: f64,
    ) -> OnlineStatus {
        online_pushes_total().inc();
        let series = symbol_series(records, 0, u64::MAX);
        let verdict = self.detector.analyze(&series, self.config.max_lag);
        self.push_slot(OscSlot {
            oscillatory: Some(verdict.oscillatory),
            weight: (1.0 - lost_fraction).clamp(0.0, 1.0),
        });
        self.status(Some(verdict))
    }

    /// Records a quantum whose conflict drain never arrived: the window
    /// keeps its place as a gap with zero observation weight.
    pub fn push_missed(&mut self) -> OnlineStatus {
        online_pushes_total().inc();
        online_missed_total().inc();
        self.push_slot(OscSlot {
            oscillatory: None,
            weight: 0.0,
        });
        self.status(None)
    }

    /// Slides `slot` into the window, maintaining the running counters in
    /// O(1) — `status` never re-walks the window.
    fn push_slot(&mut self, slot: OscSlot) {
        self.weight_sum += slot.weight;
        if slot.oscillatory.is_some() {
            self.observed += 1;
        }
        if slot.oscillatory == Some(true) {
            self.oscillatory += 1;
        }
        if let Some(evicted) = self.window.push(slot) {
            self.weight_sum -= evicted.weight;
            if evicted.oscillatory.is_some() {
                self.observed -= 1;
            }
            if evicted.oscillatory == Some(true) {
                self.oscillatory -= 1;
            }
        }
        self.pushes_since_rebase += 1;
        if self.pushes_since_rebase >= self.window.capacity() {
            self.weight_sum = self.window.iter().map(|s| s.weight).sum();
            self.pushes_since_rebase = 0;
        }
    }

    fn status(&mut self, quantum: Option<OscillationVerdict>) -> OnlineStatus {
        let window_len = self.window.len();
        let confidence = if window_len == 0 {
            0.0
        } else {
            // Clamped: the running sum can sit an ulp outside [0, len].
            (self.weight_sum / window_len as f64).clamp(0.0, 1.0)
        };
        // Same rule as the contention daemon: covert evidence stands, Clean
        // requires the confidence floor, anything else is Inconclusive.
        let call = if self.oscillatory >= self.config.min_oscillatory_windows {
            Verdict::CovertTimingChannel
        } else if confidence < self.config.min_confidence {
            Verdict::Inconclusive
        } else {
            Verdict::Clean
        };
        if call != self.last_verdict {
            note_verdict_flip("oscillation", self.last_verdict, call, confidence);
            self.last_verdict = call;
        }
        OnlineStatus {
            quantum_burst: None,
            quantum_oscillation: quantum,
            oscillatory_in_window: self.oscillatory,
            window_len,
            observed_in_window: self.observed,
            confidence,
            recurrence: None,
            verdict: call,
        }
    }

    /// Serializes the sliding window to `writer` in the plain-text
    /// checkpoint format of [`crate::trace`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `writer`.
    pub fn checkpoint<W: Write>(&self, writer: W) -> Result<(), DetectorError> {
        let slots = self
            .window
            .iter()
            .map(|s| CheckpointSlot {
                weight: s.weight,
                histogram: None,
                oscillatory: s.oscillatory,
            })
            .collect();
        let cp = Checkpoint {
            kind: "oscillation".to_string(),
            capacity: self.window.capacity(),
            slots,
        };
        write_checkpoint(&cp, writer)?;
        Ok(())
    }

    /// Restores a daemon from a checkpoint written by
    /// [`checkpoint`](Self::checkpoint).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::Trace`] on malformed input and
    /// [`DetectorError::CheckpointMismatch`] if the parsed state is
    /// incompatible with this daemon: wrong checkpoint kind, a capacity of
    /// zero or beyond the 512-quantum limit, more slots than the declared
    /// capacity, or histogram slots in an oscillation window. Incompatible
    /// state is never silently adopted.
    pub fn restore<R: Read>(config: CcHunterConfig, reader: R) -> Result<Self, DetectorError> {
        let cp = read_checkpoint(reader)?;
        if cp.kind != "oscillation" {
            return Err(DetectorError::CheckpointMismatch {
                reason: format!("expected an oscillation checkpoint, got kind {:?}", cp.kind),
            });
        }
        validate_window_shape(cp.capacity, cp.slots.len())?;
        let mut daemon = Self::new(config, cp.capacity)?;
        for (idx, slot) in cp.slots.into_iter().enumerate() {
            if slot.histogram.is_some() {
                return Err(DetectorError::CheckpointMismatch {
                    reason: format!("slot {idx} carries a histogram in an oscillation window"),
                });
            }
            daemon.push_slot(OscSlot {
                oscillatory: slot.oscillatory,
                weight: slot.weight,
            });
        }
        Ok(daemon)
    }
}

/// Shared restore-time validation: a checkpoint's window must have a
/// plausible capacity (nonzero, within the paper's 512-quantum limit) and
/// no more slots than that capacity. Anything else is refused with a typed
/// [`DetectorError::CheckpointMismatch`] rather than clamped or truncated.
fn validate_window_shape(capacity: usize, slots: usize) -> Result<(), DetectorError> {
    if capacity == 0 {
        return Err(DetectorError::CheckpointMismatch {
            reason: "checkpoint declares a zero-capacity window".to_string(),
        });
    }
    if capacity > 512 {
        return Err(DetectorError::CheckpointMismatch {
            reason: format!("checkpoint capacity {capacity} exceeds the 512-quantum window limit"),
        });
    }
    if slots > capacity {
        return Err(DetectorError::CheckpointMismatch {
            reason: format!("checkpoint holds {slots} slots but declares capacity {capacity}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::HISTOGRAM_BINS;

    fn covert_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[19] = 20;
        bins[20] = 150;
        bins[21] = 25;
        DensityHistogram::from_bins(bins, 100_000).unwrap()
    }

    fn quiet_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_495;
        bins[1] = 5;
        DensityHistogram::from_bins(bins, 100_000).unwrap()
    }

    #[test]
    fn alarm_fires_once_pattern_recurs() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 64).unwrap();
        let first = daemon.push_quantum(covert_histogram());
        assert!(!first.verdict.is_covert());
        let second = daemon.push_quantum(covert_histogram());
        assert!(second.verdict.is_covert());
        assert!(second.recurrence.as_ref().unwrap().recurrent);
        assert_eq!(second.confidence, 1.0);
        assert!(!second.is_degraded());
    }

    #[test]
    fn quiet_stream_never_alarms() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 64).unwrap();
        for _ in 0..100 {
            let status = daemon.push_quantum(quiet_histogram());
            assert!(!status.verdict.is_covert());
        }
        assert_eq!(daemon.window_len(), 64, "window is bounded");
    }

    #[test]
    fn alarm_clears_after_channel_stops() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 8).unwrap();
        for _ in 0..4 {
            daemon.push_quantum(covert_histogram());
        }
        assert!(daemon.push_quantum(covert_histogram()).verdict.is_covert());
        // The channel stops; once its quanta age out of the window the
        // daemon stands down.
        let mut last = Verdict::CovertTimingChannel;
        for _ in 0..8 {
            last = daemon.push_quantum(quiet_histogram()).verdict;
        }
        assert!(!last.is_covert());
    }

    #[test]
    fn missed_quanta_decay_confidence_not_verdict() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 8).unwrap();
        daemon.push_quantum(covert_histogram());
        daemon.push_quantum(covert_histogram());
        let status = daemon.push_quantum(Harvest::Missed);
        // The recurring pattern is still in the window; the gap only dents
        // the confidence.
        assert!(status.verdict.is_covert());
        assert!((status.confidence - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(status.observed_in_window, 2);
        assert_eq!(status.window_len, 3);
        assert!(status.quantum_burst.is_none());
        assert!(status.is_degraded());
    }

    #[test]
    fn partial_harvests_weight_the_confidence() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 8).unwrap();
        daemon.push_quantum(covert_histogram());
        let status = daemon.push_quantum(Harvest::Partial {
            histogram: covert_histogram(),
            lost_fraction: 0.5,
        });
        assert!(status.verdict.is_covert(), "the salvaged half still recurs");
        assert!((status.confidence - 0.75).abs() < 1e-12);
        assert_eq!(status.observed_in_window, 2);
    }

    #[test]
    fn all_missed_window_is_zero_confidence_clean() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 4).unwrap();
        for _ in 0..4 {
            let status = daemon.push_quantum(Harvest::Missed);
            assert!(!status.verdict.is_covert());
            assert_eq!(status.confidence, 0.0, "a blind window has no confidence");
        }
    }

    #[test]
    fn contention_checkpoint_roundtrips_and_resumes() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 8).unwrap();
        daemon.push_quantum(covert_histogram());
        daemon.push_quantum(Harvest::Missed);
        daemon.push_quantum(Harvest::Partial {
            histogram: covert_histogram(),
            lost_fraction: 0.25,
        });
        let mut buf = Vec::new();
        daemon.checkpoint(&mut buf).unwrap();
        let mut restored =
            OnlineContentionDetector::restore(CcHunterConfig::default(), buf.as_slice()).unwrap();
        assert_eq!(restored.window_len(), 3);
        // Both daemons must report identical statuses from here on.
        for harvest in [
            Harvest::Complete(covert_histogram()),
            Harvest::Missed,
            Harvest::Complete(quiet_histogram()),
        ] {
            let a = daemon.push_quantum(harvest.clone());
            let b = restored.push_quantum(harvest);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.window_len, b.window_len);
        }
    }

    #[test]
    fn restore_rejects_wrong_kind() {
        let daemon = OnlineOscillationDetector::new(CcHunterConfig::default(), 4).unwrap();
        let mut buf = Vec::new();
        daemon.checkpoint(&mut buf).unwrap();
        let err = OnlineContentionDetector::restore(CcHunterConfig::default(), buf.as_slice())
            .unwrap_err();
        assert!(matches!(err, DetectorError::CheckpointMismatch { .. }));
    }

    #[test]
    fn restore_rejects_incompatible_state() {
        let config = CcHunterConfig::default;
        // Capacity beyond the 512-quantum limit is refused, not clamped.
        let text = "cchunter-checkpoint,v1\nkind,contention\ncapacity,4096\nend\n";
        let err = OnlineContentionDetector::restore(config(), text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, DetectorError::CheckpointMismatch { .. }),
            "{err}"
        );
        // Zero capacity.
        let text = "cchunter-checkpoint,v1\nkind,oscillation\ncapacity,0\nend\n";
        let err = OnlineOscillationDetector::restore(config(), text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, DetectorError::CheckpointMismatch { .. }),
            "{err}"
        );
        // More slots than capacity.
        let text =
            "cchunter-checkpoint,v1\nkind,contention\ncapacity,1\nslot,1,missed\nslot,1,missed\nend\n";
        let err = OnlineContentionDetector::restore(config(), text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, DetectorError::CheckpointMismatch { .. }),
            "{err}"
        );
        // A histogram bin index outside the 128-bin buffer.
        let text =
            "cchunter-checkpoint,v1\nkind,contention\ncapacity,4\nslot,1,hist,100000,500:10\nend\n";
        let err = OnlineContentionDetector::restore(config(), text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, DetectorError::CheckpointMismatch { .. }),
            "{err}"
        );
        // Cross-kind slots: an oscillation outcome inside a contention
        // window (and vice versa) is incompatible state, not a parse error.
        let text = "cchunter-checkpoint,v1\nkind,contention\ncapacity,4\nslot,1,osc,1\nend\n";
        let err = OnlineContentionDetector::restore(config(), text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, DetectorError::CheckpointMismatch { .. }),
            "{err}"
        );
        let text =
            "cchunter-checkpoint,v1\nkind,oscillation\ncapacity,4\nslot,1,hist,100000,0:5\nend\n";
        let err = OnlineOscillationDetector::restore(config(), text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, DetectorError::CheckpointMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn degraded_midwindow_checkpoint_resumes_identically() {
        // push_missed → checkpoint → restore → continued pushes must
        // reproduce the exact OnlineStatus sequence of an uninterrupted
        // run, for both daemon kinds.
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 6).unwrap();
        daemon.push_quantum(covert_histogram());
        daemon.push_quantum(Harvest::Missed);
        daemon.push_quantum(Harvest::Partial {
            histogram: covert_histogram(),
            lost_fraction: 0.4,
        });
        daemon.push_quantum(Harvest::Missed);
        let mut buf = Vec::new();
        daemon.checkpoint(&mut buf).unwrap();
        let mut restored =
            OnlineContentionDetector::restore(CcHunterConfig::default(), buf.as_slice()).unwrap();
        for harvest in [
            Harvest::Missed,
            Harvest::Complete(covert_histogram()),
            Harvest::Partial {
                histogram: quiet_histogram(),
                lost_fraction: 0.9,
            },
            Harvest::Complete(quiet_histogram()),
            Harvest::Missed,
        ] {
            let a = daemon.push_quantum(harvest.clone());
            let b = restored.push_quantum(harvest);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.window_len, b.window_len);
            assert_eq!(a.observed_in_window, b.observed_in_window);
        }
    }

    #[test]
    fn oscillation_daemon_needs_sustained_windows() {
        let config = CcHunterConfig::default();
        let mut daemon = OnlineOscillationDetector::new(config, 16).unwrap();
        // A square-wave quantum: 8 bits × (64 T→S + 64 S→T).
        let mut records = Vec::new();
        let mut cycle = 0;
        for _ in 0..8 {
            for _ in 0..64 {
                records.push(ConflictRecord {
                    cycle,
                    replacer: 0,
                    victim: 1,
                });
                cycle += 100;
            }
            for _ in 0..64 {
                records.push(ConflictRecord {
                    cycle,
                    replacer: 1,
                    victim: 0,
                });
                cycle += 100;
            }
        }
        let first = daemon.push_quantum(&records);
        assert!(first.quantum_oscillation.unwrap().oscillatory);
        assert!(!first.verdict.is_covert(), "one window is not sustained");
        let second = daemon.push_quantum(&records);
        assert!(second.verdict.is_covert());
        assert_eq!(second.confidence, 1.0);

        // Checkpoint/restore resumes the oscillation window too.
        let mut buf = Vec::new();
        daemon.checkpoint(&mut buf).unwrap();
        let mut restored =
            OnlineOscillationDetector::restore(CcHunterConfig::default(), buf.as_slice()).unwrap();
        let a = daemon.push_missed();
        let b = restored.push_missed();
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.confidence, b.confidence);
        assert!(a.confidence < 1.0);
    }

    #[test]
    fn zero_window_rejected() {
        let err = OnlineContentionDetector::new(CcHunterConfig::default(), 0).unwrap_err();
        assert!(matches!(err, DetectorError::InvalidConfig { .. }));
        let err = OnlineOscillationDetector::new(CcHunterConfig::default(), 0).unwrap_err();
        assert!(matches!(err, DetectorError::InvalidConfig { .. }));
    }
}
