//! Online (streaming) detection — the long-running daemon view.
//!
//! The batch APIs in [`crate::pipeline`] analyze a completed observation
//! window; a deployed CC-Hunter daemon instead consumes the CC-auditor's
//! buffers quantum by quantum, keeps a sliding observation window (at most
//! 512 quanta, §IV-B), and raises an alarm the moment recurrence (or
//! sustained oscillation) is established.

use crate::auditor::ConflictRecord;
use crate::autocorr::{OscillationDetector, OscillationVerdict};
use crate::burst::{BurstDetector, BurstVerdict};
use crate::cluster::{analyze_recurrence, RecurrenceVerdict};
use crate::density::DensityHistogram;
use crate::pipeline::{symbol_series, CcHunterConfig, Verdict};
use std::collections::VecDeque;

/// Status returned after each pushed quantum.
#[derive(Debug, Clone)]
pub struct OnlineStatus {
    /// The quantum's own burst verdict (contention path) — `None` on the
    /// oscillation path.
    pub quantum_burst: Option<BurstVerdict>,
    /// The quantum's oscillation verdict (oscillation path) — `None` on
    /// the contention path.
    pub quantum_oscillation: Option<OscillationVerdict>,
    /// Recurrence over the current sliding window (contention path).
    pub recurrence: Option<RecurrenceVerdict>,
    /// Oscillatory quanta within the current sliding window.
    pub oscillatory_in_window: usize,
    /// Quanta currently in the sliding window.
    pub window_len: usize,
    /// The daemon's current call.
    pub verdict: Verdict,
}

/// Streaming detector for one *combinational* resource (bus, divider,
/// multiplier): feed one harvested histogram per OS quantum.
///
/// ```
/// use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
/// use cchunter_detector::online::OnlineContentionDetector;
/// use cchunter_detector::pipeline::CcHunterConfig;
///
/// let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 512);
/// let mut bins = vec![0u64; HISTOGRAM_BINS];
/// bins[0] = 2_400;
/// bins[20] = 100; // a covert-channel-shaped quantum
/// let covert = DensityHistogram::from_bins(bins, 100_000);
/// let status = daemon.push_quantum(covert.clone());
/// assert!(!status.verdict.is_covert(), "one bursty quantum is not recurrent");
/// let status = daemon.push_quantum(covert);
/// assert!(status.verdict.is_covert(), "the pattern recurs");
/// ```
#[derive(Debug)]
pub struct OnlineContentionDetector {
    config: CcHunterConfig,
    detector: BurstDetector,
    window: VecDeque<(DensityHistogram, BurstVerdict)>,
    capacity: usize,
}

impl OnlineContentionDetector {
    /// Creates a daemon keeping a sliding window of `window_quanta`
    /// (clamped to the paper's 512-quantum limit).
    ///
    /// # Panics
    ///
    /// Panics if `window_quanta` is zero.
    pub fn new(config: CcHunterConfig, window_quanta: usize) -> Self {
        assert!(window_quanta > 0, "window must hold at least one quantum");
        OnlineContentionDetector {
            detector: BurstDetector::new(config.burst),
            config,
            window: VecDeque::new(),
            capacity: window_quanta.min(512),
        }
    }

    /// Quanta currently retained.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Feeds one quantum's harvested histogram; returns the daemon's
    /// up-to-date status.
    pub fn push_quantum(&mut self, histogram: DensityHistogram) -> OnlineStatus {
        let verdict = self.detector.analyze(&histogram);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((histogram, verdict));
        let histograms: Vec<DensityHistogram> =
            self.window.iter().map(|(h, _)| h.clone()).collect();
        let verdicts: Vec<BurstVerdict> = self.window.iter().map(|(_, v)| *v).collect();
        let recurrence = analyze_recurrence(&histograms, &verdicts, &self.config.cluster);
        let call = if recurrence.recurrent {
            Verdict::CovertTimingChannel
        } else {
            Verdict::Clean
        };
        OnlineStatus {
            quantum_burst: Some(verdict),
            quantum_oscillation: None,
            oscillatory_in_window: 0,
            window_len: self.window.len(),
            recurrence: Some(recurrence),
            verdict: call,
        }
    }
}

/// Streaming detector for a *memory* resource (shared cache): feed the
/// conflict records drained each OS quantum.
#[derive(Debug)]
pub struct OnlineOscillationDetector {
    config: CcHunterConfig,
    detector: OscillationDetector,
    /// Per-quantum oscillation outcomes in the sliding window.
    window: VecDeque<bool>,
    capacity: usize,
}

impl OnlineOscillationDetector {
    /// Creates a daemon keeping a sliding window of `window_quanta`
    /// (clamped to 512).
    ///
    /// # Panics
    ///
    /// Panics if `window_quanta` is zero.
    pub fn new(config: CcHunterConfig, window_quanta: usize) -> Self {
        assert!(window_quanta > 0, "window must hold at least one quantum");
        OnlineOscillationDetector {
            detector: OscillationDetector::new(config.oscillation),
            config,
            window: VecDeque::new(),
            capacity: window_quanta.min(512),
        }
    }

    /// Feeds one quantum's drained conflict records.
    pub fn push_quantum(&mut self, records: &[ConflictRecord]) -> OnlineStatus {
        let series = symbol_series(records, 0, u64::MAX);
        let verdict = self.detector.analyze(&series, self.config.max_lag);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(verdict.oscillatory);
        let oscillatory = self.window.iter().filter(|&&o| o).count();
        let call = if oscillatory >= self.config.min_oscillatory_windows {
            Verdict::CovertTimingChannel
        } else {
            Verdict::Clean
        };
        OnlineStatus {
            quantum_burst: None,
            quantum_oscillation: Some(verdict),
            oscillatory_in_window: oscillatory,
            window_len: self.window.len(),
            recurrence: None,
            verdict: call,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::HISTOGRAM_BINS;

    fn covert_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[19] = 20;
        bins[20] = 150;
        bins[21] = 25;
        DensityHistogram::from_bins(bins, 100_000)
    }

    fn quiet_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_495;
        bins[1] = 5;
        DensityHistogram::from_bins(bins, 100_000)
    }

    #[test]
    fn alarm_fires_once_pattern_recurs() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 64);
        let first = daemon.push_quantum(covert_histogram());
        assert!(!first.verdict.is_covert());
        let second = daemon.push_quantum(covert_histogram());
        assert!(second.verdict.is_covert());
        assert!(second.recurrence.unwrap().recurrent);
    }

    #[test]
    fn quiet_stream_never_alarms() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 64);
        for _ in 0..100 {
            let status = daemon.push_quantum(quiet_histogram());
            assert!(!status.verdict.is_covert());
        }
        assert_eq!(daemon.window_len(), 64, "window is bounded");
    }

    #[test]
    fn alarm_clears_after_channel_stops() {
        let mut daemon = OnlineContentionDetector::new(CcHunterConfig::default(), 8);
        for _ in 0..4 {
            daemon.push_quantum(covert_histogram());
        }
        assert!(daemon.push_quantum(covert_histogram()).verdict.is_covert());
        // The channel stops; once its quanta age out of the window the
        // daemon stands down.
        let mut last = Verdict::CovertTimingChannel;
        for _ in 0..8 {
            last = daemon.push_quantum(quiet_histogram()).verdict;
        }
        assert!(!last.is_covert());
    }

    #[test]
    fn oscillation_daemon_needs_sustained_windows() {
        let config = CcHunterConfig::default();
        let mut daemon = OnlineOscillationDetector::new(config, 16);
        // A square-wave quantum: 8 bits × (64 T→S + 64 S→T).
        let mut records = Vec::new();
        let mut cycle = 0;
        for _ in 0..8 {
            for _ in 0..64 {
                records.push(ConflictRecord {
                    cycle,
                    replacer: 0,
                    victim: 1,
                });
                cycle += 100;
            }
            for _ in 0..64 {
                records.push(ConflictRecord {
                    cycle,
                    replacer: 1,
                    victim: 0,
                });
                cycle += 100;
            }
        }
        let first = daemon.push_quantum(&records);
        assert!(first.quantum_oscillation.unwrap().oscillatory);
        assert!(!first.verdict.is_covert(), "one window is not sustained");
        let second = daemon.push_quantum(&records);
        assert!(second.verdict.is_covert());
    }

    #[test]
    #[should_panic(expected = "at least one quantum")]
    fn zero_window_rejected() {
        let _ = OnlineContentionDetector::new(CcHunterConfig::default(), 0);
    }
}
