//! The CC-auditor hardware datapath model (paper §V-A).
//!
//! The CC-auditor accumulates event signals wired from the hardware units
//! under audit:
//!
//! * two 32-bit count-down registers initialized to Δt,
//! * two 16-bit accumulators counting event occurrences within Δt,
//! * two 128-entry histogram buffers recording the event-density histogram,
//! * two alternating 128-byte vector registers recording the replacer and
//!   victim context IDs of every conflict miss (for cache audits), drained
//!   by the software daemon in the background.
//!
//! Programming the auditor is a *privileged* operation — the special
//! instruction is available to the system administrator only, and the OS
//! performs authorization checks before granting access (§V-B). At most two
//! hardware units can be audited simultaneously; the deliberate limit keeps
//! the hardware cost negligible (Table I).
//!
//! One deliberate deviation: the paper specifies 16-bit histogram buffer
//! entries, but its own divider-channel figures report bin frequencies near
//! 500,000 per 0.1 s quantum (500,000 Δt windows of 500 cycles each), which
//! a 16-bit entry cannot hold between per-quantum harvests. We default the
//! entry width to 32 bits and expose the width so the strict 16-bit
//! behaviour (with saturation) can be modeled too.

use crate::density::{DensityHistogram, HISTOGRAM_BINS};
use crate::online::Harvest;
use std::fmt;

/// A shared hardware unit the CC-auditor can monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareUnit {
    /// The shared memory bus (indicator event: bus locks).
    MemoryBus,
    /// The integer divider bank of one core (indicator event: cross-context
    /// wait cycles).
    IntegerDivider {
        /// Core whose divider bank is audited.
        core: u8,
    },
    /// The integer multiplier bank of one core (indicator event:
    /// cross-context wait cycles, as for the divider).
    IntegerMultiplier {
        /// Core whose multiplier bank is audited.
        core: u8,
    },
    /// The shared cache of one core (indicator event: conflict misses with
    /// replacer/victim context IDs).
    SharedCache {
        /// Core whose cache is audited.
        core: u8,
    },
}

impl HardwareUnit {
    /// Whether this unit uses the oscillation (vector-register) datapath
    /// rather than the contention (histogram) datapath.
    pub fn is_memory_structure(&self) -> bool {
        matches!(self, HardwareUnit::SharedCache { .. })
    }
}

impl fmt::Display for HardwareUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareUnit::MemoryBus => write!(f, "memory-bus"),
            HardwareUnit::IntegerDivider { core } => write!(f, "integer-divider(core{core})"),
            HardwareUnit::IntegerMultiplier { core } => {
                write!(f, "integer-multiplier(core{core})")
            }
            HardwareUnit::SharedCache { core } => write!(f, "shared-cache(core{core})"),
        }
    }
}

/// Privilege level presented when programming the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Privilege {
    /// System administrator via the OS's authorized API.
    Supervisor,
    /// Unprivileged user code — rejected, preventing attackers from
    /// exploiting the system activity information (§V-B).
    User,
}

/// Errors returned by the auditor programming interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditorError {
    /// The caller is not privileged to program the auditor.
    NotPrivileged,
    /// Both audit slots are in use.
    SlotsExhausted,
    /// The slot id does not name a programmed slot.
    BadSlot,
    /// The operation does not match the slot's datapath (e.g. feeding
    /// conflict records to a contention slot).
    WrongDatapath,
    /// The unit is already under audit.
    AlreadyAudited,
}

impl fmt::Display for AuditorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            AuditorError::NotPrivileged => "auditor programming requires supervisor privilege",
            AuditorError::SlotsExhausted => "both audit slots are in use",
            AuditorError::BadSlot => "no such audit slot",
            AuditorError::WrongDatapath => "operation does not match the slot's datapath",
            AuditorError::AlreadyAudited => "unit is already under audit",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for AuditorError {}

/// Handle to a programmed audit slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(usize);

/// A conflict-miss record drained from the vector registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictRecord {
    /// Cycle of the conflict miss.
    pub cycle: u64,
    /// Context that requested the cache block (3-bit ID).
    pub replacer: u8,
    /// Owner context of the evicted block (3-bit ID).
    pub victim: u8,
}

/// Hardware sizing of the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditorConfig {
    /// Simultaneous audit slots (2 in the paper).
    pub max_slots: usize,
    /// Histogram buffer entry width in bits (see module docs).
    pub histogram_entry_bits: u32,
    /// Accumulator width in bits (16 in the paper).
    pub accumulator_bits: u32,
    /// Capacity of one conflict vector register in entries (128 bytes, one
    /// byte per replacer/victim pair).
    pub vector_entries: usize,
}

impl Default for AuditorConfig {
    fn default() -> Self {
        AuditorConfig {
            max_slots: 2,
            histogram_entry_bits: 32,
            accumulator_bits: 16,
            vector_entries: 128,
        }
    }
}

impl AuditorConfig {
    /// The paper's strict sizing: 16-bit histogram entries that saturate.
    pub fn paper_strict() -> Self {
        AuditorConfig {
            histogram_entry_bits: 16,
            ..AuditorConfig::default()
        }
    }
}

#[derive(Debug)]
enum SlotState {
    Contention {
        delta_t: u64,
        /// Absolute index of the window currently accumulating.
        current_window: u64,
        /// Origin cycle of window 0 (continuous across harvests).
        origin: u64,
        accumulator: u64,
        bins: Vec<u64>,
        last_signal: u64,
        /// Δt windows whose observation was lost or distorted by register
        /// saturation since the last harvest (histogram entries clamped at
        /// the entry cap, or the 16-bit accumulator topping out mid-window).
        degraded_windows: u64,
    },
    Oscillation {
        /// The active vector register being filled.
        active: Vec<ConflictRecord>,
        /// Records already handed to the software daemon's buffer.
        software_log: Vec<ConflictRecord>,
        /// Full-register swaps performed.
        swaps: u64,
    },
}

#[derive(Debug)]
struct Slot {
    unit: HardwareUnit,
    state: SlotState,
}

/// The CC-auditor: event-signal accumulation hardware plus its privileged
/// programming interface.
///
/// ```
/// use cchunter_detector::auditor::{AuditorConfig, CcAuditor, HardwareUnit, Privilege};
/// let mut auditor = CcAuditor::new(AuditorConfig::default());
/// let slot = auditor
///     .program(HardwareUnit::MemoryBus, 100_000, Privilege::Supervisor)
///     .unwrap();
/// auditor.signal(slot, 5_000, 1).unwrap();
/// auditor.signal(slot, 6_000, 1).unwrap();
/// let histogram = auditor.harvest_histogram(slot, 1_000_000).unwrap();
/// assert_eq!(histogram.frequency(2), 1); // one window saw two locks
/// ```
#[derive(Debug)]
pub struct CcAuditor {
    config: AuditorConfig,
    slots: Vec<Slot>,
}

impl CcAuditor {
    /// Creates an auditor with the given hardware sizing.
    pub fn new(config: AuditorConfig) -> Self {
        CcAuditor {
            config,
            slots: Vec::new(),
        }
    }

    /// The hardware sizing.
    pub fn config(&self) -> &AuditorConfig {
        &self.config
    }

    /// Units currently under audit.
    pub fn audited_units(&self) -> Vec<HardwareUnit> {
        self.slots.iter().map(|s| s.unit).collect()
    }

    /// Programs a hardware unit for auditing (the privileged special
    /// instruction). For combinational units `delta_t` is the Δt window in
    /// cycles; for memory structures it is ignored.
    ///
    /// # Errors
    ///
    /// * [`AuditorError::NotPrivileged`] unless called with
    ///   [`Privilege::Supervisor`].
    /// * [`AuditorError::SlotsExhausted`] when both slots are taken.
    /// * [`AuditorError::AlreadyAudited`] if the unit already has a slot.
    pub fn program(
        &mut self,
        unit: HardwareUnit,
        delta_t: u64,
        privilege: Privilege,
    ) -> Result<SlotId, AuditorError> {
        if privilege != Privilege::Supervisor {
            return Err(AuditorError::NotPrivileged);
        }
        if self.slots.len() >= self.config.max_slots {
            return Err(AuditorError::SlotsExhausted);
        }
        if self.slots.iter().any(|s| s.unit == unit) {
            return Err(AuditorError::AlreadyAudited);
        }
        let state = if unit.is_memory_structure() {
            SlotState::Oscillation {
                active: Vec::with_capacity(self.config.vector_entries),
                software_log: Vec::new(),
                swaps: 0,
            }
        } else {
            assert!(delta_t > 0, "Δt must be nonzero for contention audits");
            SlotState::Contention {
                delta_t,
                current_window: 0,
                origin: 0,
                accumulator: 0,
                bins: vec![0; HISTOGRAM_BINS],
                last_signal: 0,
                degraded_windows: 0,
            }
        };
        self.slots.push(Slot { unit, state });
        Ok(SlotId(self.slots.len() - 1))
    }

    /// Unprograms a slot, clearing the unit's monitor bit. Slot ids of
    /// other units remain valid.
    pub fn unprogram(&mut self, slot: SlotId, privilege: Privilege) -> Result<(), AuditorError> {
        if privilege != Privilege::Supervisor {
            return Err(AuditorError::NotPrivileged);
        }
        if slot.0 >= self.slots.len() {
            return Err(AuditorError::BadSlot);
        }
        self.slots.remove(slot.0);
        Ok(())
    }

    /// Delivers an event signal from the unit under audit: a run of
    /// `weight` unit events on consecutive cycles starting at `cycle`
    /// (weight 1 for discrete events like bus locks; the stall length for
    /// divider-wait runs).
    ///
    /// Signals must arrive in nondecreasing cycle order.
    ///
    /// # Errors
    ///
    /// [`AuditorError::BadSlot`] or [`AuditorError::WrongDatapath`].
    pub fn signal(&mut self, slot: SlotId, cycle: u64, weight: u32) -> Result<(), AuditorError> {
        let entry_cap = entry_cap(self.config.histogram_entry_bits);
        let acc_cap = entry_cap_u64(self.config.accumulator_bits);
        let slot = self.slots.get_mut(slot.0).ok_or(AuditorError::BadSlot)?;
        let SlotState::Contention {
            delta_t,
            current_window,
            origin,
            accumulator,
            bins,
            last_signal,
            degraded_windows,
            ..
        } = &mut slot.state
        else {
            return Err(AuditorError::WrongDatapath);
        };
        debug_assert!(cycle >= *last_signal, "signals must be time ordered");
        *last_signal = cycle;
        let dt = *delta_t;
        let mut t = cycle;
        let mut remaining = weight.max(1) as u64;
        if weight == 0 {
            return Ok(());
        }
        while remaining > 0 {
            let w = (t - *origin) / dt;
            if w > *current_window {
                // Count-down register expired: fold the accumulator into
                // the histogram and account the empty windows in between.
                let bin = if *accumulator > 0 {
                    (*accumulator as usize).min(HISTOGRAM_BINS - 1)
                } else {
                    0
                };
                bump_bin(bins, bin, 1, entry_cap, degraded_windows);
                let empties = w - *current_window - 1;
                if empties > 0 {
                    bump_bin(bins, 0, empties, entry_cap, degraded_windows);
                }
                *current_window = w;
                *accumulator = 0;
            }
            let window_end = *origin + (w + 1) * dt;
            let take = remaining.min(window_end - t);
            let next = *accumulator + take;
            if next > acc_cap && *accumulator < acc_cap {
                // The 16-bit accumulator tops out mid-window: the window's
                // density is under-reported. One distorted window.
                *degraded_windows += 1;
            }
            *accumulator = next.min(acc_cap);
            remaining -= take;
            t += take;
        }
        Ok(())
    }

    /// Records a conflict miss into a cache slot's vector registers.
    ///
    /// # Errors
    ///
    /// [`AuditorError::BadSlot`] or [`AuditorError::WrongDatapath`].
    pub fn record_conflict(
        &mut self,
        slot: SlotId,
        cycle: u64,
        replacer: u8,
        victim: u8,
    ) -> Result<(), AuditorError> {
        let capacity = self.config.vector_entries;
        let slot = self.slots.get_mut(slot.0).ok_or(AuditorError::BadSlot)?;
        let SlotState::Oscillation {
            active,
            software_log,
            swaps,
        } = &mut slot.state
        else {
            return Err(AuditorError::WrongDatapath);
        };
        active.push(ConflictRecord {
            cycle,
            replacer,
            victim,
        });
        if active.len() >= capacity {
            // The register is full: swap to the alternate register while
            // the software module records the contents in the background.
            software_log.append(active);
            *swaps += 1;
        }
        Ok(())
    }

    /// Harvests a contention slot's histogram buffer (the daemon's
    /// per-quantum read-out): windows are finalized through `until`, the
    /// buffer is returned as a [`DensityHistogram`] and cleared.
    ///
    /// # Errors
    ///
    /// [`AuditorError::BadSlot`] or [`AuditorError::WrongDatapath`].
    pub fn harvest_histogram(
        &mut self,
        slot: SlotId,
        until: u64,
    ) -> Result<DensityHistogram, AuditorError> {
        self.finalize_and_take(slot, until).map(|(h, _)| h)
    }

    /// Harvests a contention slot as a [`Harvest`]: like
    /// [`harvest_histogram`](Self::harvest_histogram), but the read-out
    /// also reports how much of the quantum's observation was degraded by
    /// register saturation, so the daemon can weight the quantum instead of
    /// trusting a silently clamped histogram.
    ///
    /// A quantum with no saturation harvests as [`Harvest::Complete`]; one
    /// with clamped histogram entries or a topped-out accumulator harvests
    /// as [`Harvest::Partial`] with `lost_fraction` equal to the degraded
    /// share of its Δt windows (a conservative proxy — a distorted window
    /// still carries *some* signal).
    ///
    /// # Errors
    ///
    /// [`AuditorError::BadSlot`] or [`AuditorError::WrongDatapath`].
    pub fn harvest(&mut self, slot: SlotId, until: u64) -> Result<Harvest, AuditorError> {
        let (histogram, degraded) = self.finalize_and_take(slot, until)?;
        if degraded == 0 {
            return Ok(Harvest::Complete(histogram));
        }
        let total = histogram.total_windows().max(1);
        Ok(Harvest::Partial {
            lost_fraction: (degraded as f64 / total as f64).min(1.0),
            histogram,
        })
    }

    /// Finalizes windows through `until`, returning the cleared histogram
    /// buffer and the degraded-window count since the previous harvest.
    fn finalize_and_take(
        &mut self,
        slot: SlotId,
        until: u64,
    ) -> Result<(DensityHistogram, u64), AuditorError> {
        let entry_cap = entry_cap(self.config.histogram_entry_bits);
        let slot = self.slots.get_mut(slot.0).ok_or(AuditorError::BadSlot)?;
        let SlotState::Contention {
            delta_t,
            current_window,
            origin,
            accumulator,
            bins,
            degraded_windows,
            ..
        } = &mut slot.state
        else {
            return Err(AuditorError::WrongDatapath);
        };
        let dt = *delta_t;
        // Finalize every window that ends at or before `until`.
        let complete_through = (until.saturating_sub(*origin)) / dt; // windows [0, complete_through) done
        if complete_through > *current_window {
            let bin = if *accumulator > 0 {
                (*accumulator as usize).min(HISTOGRAM_BINS - 1)
            } else {
                0
            };
            bump_bin(bins, bin, 1, entry_cap, degraded_windows);
            let empties = complete_through - *current_window - 1;
            if empties > 0 {
                bump_bin(bins, 0, empties, entry_cap, degraded_windows);
            }
            *current_window = complete_through;
            *accumulator = 0;
        }
        let harvested = std::mem::replace(bins, vec![0; HISTOGRAM_BINS]);
        let degraded = std::mem::take(degraded_windows);
        // Invariant: the buffer is allocated as exactly HISTOGRAM_BINS
        // entries at program() time and dt was validated nonzero there.
        let histogram = DensityHistogram::from_bins(harvested, dt)
            .expect("auditor buffer is always 128 bins with Δt > 0");
        Ok((histogram, degraded))
    }

    /// Drains every recorded conflict (both the software log and the
    /// partially filled active register) from a cache slot.
    ///
    /// # Errors
    ///
    /// [`AuditorError::BadSlot`] or [`AuditorError::WrongDatapath`].
    pub fn drain_conflicts(&mut self, slot: SlotId) -> Result<Vec<ConflictRecord>, AuditorError> {
        let slot = self.slots.get_mut(slot.0).ok_or(AuditorError::BadSlot)?;
        let SlotState::Oscillation {
            active,
            software_log,
            ..
        } = &mut slot.state
        else {
            return Err(AuditorError::WrongDatapath);
        };
        let mut out = std::mem::take(software_log);
        out.append(active);
        Ok(out)
    }

    /// Number of vector-register swaps performed by a cache slot (each swap
    /// hands 128 records to the software daemon without stalling the
    /// processor).
    pub fn vector_swaps(&self, slot: SlotId) -> Result<u64, AuditorError> {
        let slot = self.slots.get(slot.0).ok_or(AuditorError::BadSlot)?;
        match &slot.state {
            SlotState::Oscillation { swaps, .. } => Ok(*swaps),
            _ => Err(AuditorError::WrongDatapath),
        }
    }
}

fn entry_cap(bits: u32) -> u64 {
    entry_cap_u64(bits)
}

/// Adds `by` window observations to `bins[bin]`, clamping at `cap` and
/// accounting every clamped-away observation as a degraded window.
fn bump_bin(bins: &mut [u64], bin: usize, by: u64, cap: u64, degraded: &mut u64) {
    let next = bins[bin].saturating_add(by);
    if next > cap {
        *degraded += next - cap;
        bins[bin] = cap;
    } else {
        bins[bin] = next;
    }
}

fn entry_cap_u64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> CcAuditor {
        CcAuditor::new(AuditorConfig::default())
    }

    #[test]
    fn programming_requires_privilege() {
        let mut a = auditor();
        let err = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::User)
            .unwrap_err();
        assert_eq!(err, AuditorError::NotPrivileged);
    }

    #[test]
    fn at_most_two_slots() {
        let mut a = auditor();
        a.program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        a.program(
            HardwareUnit::IntegerDivider { core: 0 },
            500,
            Privilege::Supervisor,
        )
        .unwrap();
        let err = a
            .program(
                HardwareUnit::SharedCache { core: 0 },
                0,
                Privilege::Supervisor,
            )
            .unwrap_err();
        assert_eq!(err, AuditorError::SlotsExhausted);
        assert_eq!(a.audited_units().len(), 2);
    }

    #[test]
    fn duplicate_unit_rejected() {
        let mut a = auditor();
        a.program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        let err = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap_err();
        assert_eq!(err, AuditorError::AlreadyAudited);
    }

    #[test]
    fn histogram_accumulates_densities() {
        let mut a = auditor();
        let slot = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        // Window 0: 3 events; window 1: none; window 2: 1 event.
        a.signal(slot, 10, 1).unwrap();
        a.signal(slot, 20, 1).unwrap();
        a.signal(slot, 30, 1).unwrap();
        a.signal(slot, 250, 1).unwrap();
        let h = a.harvest_histogram(slot, 400).unwrap();
        assert_eq!(h.frequency(3), 1);
        assert_eq!(h.frequency(1), 1);
        assert_eq!(h.frequency(0), 2);
        assert_eq!(h.total_windows(), 4);
    }

    #[test]
    fn weighted_runs_spread_like_wait_cycles() {
        let mut a = auditor();
        let slot = a
            .program(
                HardwareUnit::IntegerDivider { core: 0 },
                100,
                Privilege::Supervisor,
            )
            .unwrap();
        // 150-cycle stall starting at 50: 50 wait-cycles in window 0,
        // 100 in window 1.
        a.signal(slot, 50, 150).unwrap();
        let h = a.harvest_histogram(slot, 200).unwrap();
        assert_eq!(h.frequency(50), 1);
        assert_eq!(h.frequency(100), 1);
    }

    #[test]
    fn harvest_resets_but_windows_stay_aligned() {
        let mut a = auditor();
        let slot = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        a.signal(slot, 10, 1).unwrap();
        let h1 = a.harvest_histogram(slot, 100).unwrap();
        assert_eq!(h1.total_windows(), 1);
        // Next quantum's events land in fresh buffer, window grid intact.
        a.signal(slot, 110, 1).unwrap();
        a.signal(slot, 130, 1).unwrap();
        let h2 = a.harvest_histogram(slot, 200).unwrap();
        assert_eq!(h2.frequency(2), 1);
        assert_eq!(h2.total_windows(), 1);
    }

    #[test]
    fn strict_16bit_entries_saturate() {
        let mut a = CcAuditor::new(AuditorConfig::paper_strict());
        let slot = a
            .program(HardwareUnit::MemoryBus, 10, Privilege::Supervisor)
            .unwrap();
        // 70000 empty windows overflow a 16-bit bin-0 entry.
        a.signal(slot, 10 * 70_000, 1).unwrap();
        let h = a.harvest_histogram(slot, 10 * 70_001).unwrap();
        assert_eq!(h.frequency(0), u16::MAX as u64, "bin 0 saturates at 2^16-1");
    }

    #[test]
    fn contention_slot_rejects_conflict_records() {
        let mut a = auditor();
        let slot = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        assert_eq!(
            a.record_conflict(slot, 0, 1, 0).unwrap_err(),
            AuditorError::WrongDatapath
        );
    }

    #[test]
    fn vector_registers_swap_at_capacity() {
        let mut a = auditor();
        let slot = a
            .program(
                HardwareUnit::SharedCache { core: 0 },
                0,
                Privilege::Supervisor,
            )
            .unwrap();
        for i in 0..300u64 {
            a.record_conflict(slot, i, (i % 2) as u8, ((i + 1) % 2) as u8)
                .unwrap();
        }
        assert_eq!(a.vector_swaps(slot).unwrap(), 2, "two full 128-entry swaps");
        let records = a.drain_conflicts(slot).unwrap();
        assert_eq!(records.len(), 300);
        assert_eq!(records[0].cycle, 0);
        assert_eq!(records[299].cycle, 299);
        // Drained: a second drain is empty.
        assert!(a.drain_conflicts(slot).unwrap().is_empty());
    }

    #[test]
    fn unprogram_frees_slot() {
        let mut a = auditor();
        let slot = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        assert_eq!(
            a.unprogram(slot, Privilege::User).unwrap_err(),
            AuditorError::NotPrivileged
        );
        a.unprogram(slot, Privilege::Supervisor).unwrap();
        assert!(a.audited_units().is_empty());
        a.program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
    }

    #[test]
    fn clean_quantum_harvests_complete() {
        let mut a = auditor();
        let slot = a
            .program(HardwareUnit::MemoryBus, 100, Privilege::Supervisor)
            .unwrap();
        a.signal(slot, 10, 1).unwrap();
        a.signal(slot, 250, 1).unwrap();
        match a.harvest(slot, 400).unwrap() {
            Harvest::Complete(h) => assert_eq!(h.total_windows(), 4),
            other => panic!("unexpected harvest {other:?}"),
        }
    }

    #[test]
    fn saturated_quantum_harvests_partial() {
        let mut a = CcAuditor::new(AuditorConfig::paper_strict());
        let slot = a
            .program(HardwareUnit::MemoryBus, 10, Privilege::Supervisor)
            .unwrap();
        // 70,000 empty windows overflow the 16-bit bin-0 entry; the daemon
        // must learn the harvest is degraded rather than silently get a
        // clamped histogram.
        a.signal(slot, 10 * 70_000, 1).unwrap();
        match a.harvest(slot, 10 * 70_001).unwrap() {
            Harvest::Partial { lost_fraction, .. } => {
                assert!(lost_fraction > 0.0 && lost_fraction <= 1.0);
            }
            other => panic!("expected a partial harvest, got {other:?}"),
        }
        // The degradation counter resets with the harvest.
        a.signal(slot, 10 * 70_002, 1).unwrap();
        assert!(matches!(
            a.harvest(slot, 10 * 70_003).unwrap(),
            Harvest::Complete(_)
        ));
    }

    #[test]
    fn accumulator_saturation_marks_harvest_partial() {
        let mut a = auditor();
        let slot = a
            .program(HardwareUnit::MemoryBus, 100_000, Privilege::Supervisor)
            .unwrap();
        // One window with a 70,000-cycle run tops out the 16-bit
        // accumulator at 65,535.
        a.signal(slot, 0, 70_000).unwrap();
        match a.harvest(slot, 100_000).unwrap() {
            Harvest::Partial { lost_fraction, .. } => {
                assert_eq!(lost_fraction, 1.0, "the single window was distorted");
            }
            other => panic!("expected a partial harvest, got {other:?}"),
        }
    }

    #[test]
    fn error_display_messages() {
        assert!(AuditorError::SlotsExhausted.to_string().contains("slots"));
        assert!(AuditorError::NotPrivileged
            .to_string()
            .contains("privilege"));
    }
}
