//! Recurrence analysis via pattern clustering (paper §IV-B, step 5).
//!
//! Once a quantum's histogram shows a significant burst distribution, the
//! remaining question is whether the *pattern* recurs across the observation
//! window (up to 512 OS time quanta — 51.2 s — to avoid diluting histogram
//! significance). The paper's pattern-clustering algorithm (1) discretizes
//! the event-density histograms into strings and (2) aggregates similar
//! strings with k-means; recurring burst patterns show up as a populous
//! cluster of bursty histograms, regardless of burst intervals — so
//! low-bandwidth or irregular channels are still caught.

use crate::burst::BurstVerdict;
use crate::density::DensityHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of discretization levels per histogram bin (log-scaled).
pub const DISCRETIZATION_LEVELS: u8 = 16;

/// Discretizes a density histogram into a 128-symbol string: each bin's
/// frequency is quantized to a log₂ level in `0..DISCRETIZATION_LEVELS`.
///
/// ```
/// use cchunter_detector::density::DensityHistogram;
/// use cchunter_detector::cluster::discretize;
/// let mut bins = vec![0u64; 128];
/// bins[0] = 1000;
/// bins[20] = 7;
/// let s = discretize(&DensityHistogram::from_bins(bins, 100).unwrap());
/// assert_eq!(s.len(), 128);
/// assert!(s[0] > s[20]);
/// assert_eq!(s[1], 0);
/// ```
pub fn discretize(histogram: &DensityHistogram) -> Vec<u8> {
    histogram
        .bins()
        .iter()
        .map(|&f| {
            if f == 0 {
                0
            } else {
                let level = 64 - f.leading_zeros() as u8; // floor(log2(f)) + 1
                level.min(DISCRETIZATION_LEVELS - 1)
            }
        })
        .collect()
}

/// Configuration of the recurrence analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of k-means clusters.
    pub k: usize,
    /// Maximum k-means iterations.
    pub max_iterations: usize,
    /// Seed for deterministic k-means++ initialization.
    pub seed: u64,
    /// Minimum number of bursty histograms that must land in one cluster
    /// for the pattern to count as *recurrent*.
    pub min_recurring: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k: 3,
            max_iterations: 50,
            seed: 0xCC15_BEEF,
            min_recurring: 2,
        }
    }
}

/// Result of k-means clustering over discretized histogram strings.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternClusters {
    /// Cluster index assigned to each input, in input order.
    pub assignments: Vec<usize>,
    /// Cluster centroids in feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Number of members per cluster.
    pub sizes: Vec<usize>,
}

impl PatternClusters {
    /// Index and size of the most populous cluster, or `None` when empty.
    pub fn largest(&self) -> Option<(usize, usize)> {
        self.sizes
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, size)| size)
    }
}

/// Below this many feature vectors the assignment step stays serial — the
/// fan-out cost of [`threadpool::par_map`] only pays off on wide windows.
const PAR_ASSIGN_MIN: usize = 64;

/// Index of the centroid nearest to `point` (first wins on exact ties —
/// the tie-break every caller, serial or parallel, must share for
/// assignments to be reproducible).
fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_dist = sq_dist(point, &centroids[0]);
    for (j, centroid) in centroids.iter().enumerate().skip(1) {
        let dist = sq_dist(point, centroid);
        if dist.total_cmp(&best_dist) == std::cmp::Ordering::Less {
            best = j;
            best_dist = dist;
        }
    }
    best
}

/// Deterministic k-means (k-means++ seeding) over feature vectors.
///
/// The assignment step fans out across the process thread pool for large
/// inputs; because each point's nearest centroid is computed independently
/// (same arithmetic, same tie-break) and results land at their input index,
/// the output is bit-identical to serial execution for any thread count.
/// The centroid-update accumulation stays serial to keep floating-point
/// summation order fixed.
///
/// # Panics
///
/// Panics if `k` is zero or feature vectors have inconsistent lengths.
pub fn kmeans<F: AsRef<[f64]> + Sync>(
    features: &[F],
    k: usize,
    seed: u64,
    max_iterations: usize,
) -> PatternClusters {
    assert!(k > 0, "k must be nonzero");
    if features.is_empty() {
        return PatternClusters {
            assignments: Vec::new(),
            centroids: Vec::new(),
            sizes: Vec::new(),
        };
    }
    let dim = features[0].as_ref().len();
    assert!(
        features.iter().all(|f| f.as_ref().len() == dim),
        "inconsistent feature dimensions"
    );
    let k = k.min(features.len());
    let mut rng = SmallRng::seed_from_u64(seed);

    // k-means++ initialization.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(features[rng.gen_range(0..features.len())].as_ref().to_vec());
    while centroids.len() < k {
        let dists: Vec<f64> = features
            .iter()
            .map(|f| {
                centroids
                    .iter()
                    .map(|c| sq_dist(f.as_ref(), c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= f64::EPSILON {
            // All points identical to existing centroids.
            centroids.push(features[rng.gen_range(0..features.len())].as_ref().to_vec());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = features.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            if target < *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(features[chosen].as_ref().to_vec());
    }

    let mut assignments = vec![0usize; features.len()];
    for _ in 0..max_iterations {
        // Assign: independent per point, so safe to parallelize.
        let nearest: Vec<usize> = if features.len() >= PAR_ASSIGN_MIN {
            let centroids = &centroids;
            threadpool::par_map(features, |f| nearest_centroid(f.as_ref(), centroids))
        } else {
            features
                .iter()
                .map(|f| nearest_centroid(f.as_ref(), &centroids))
                .collect()
        };
        let mut changed = false;
        for (a, n) in assignments.iter_mut().zip(&nearest) {
            if *a != *n {
                *a = *n;
                changed = true;
            }
        }
        // Update: serial, preserving a fixed summation order.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (f, &a) in features.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(f.as_ref()) {
                *s += x;
            }
        }
        for (j, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                centroids[j] = sum.iter().map(|s| s / count as f64).collect();
            } else {
                // Re-seed an empty cluster at the point farthest from its
                // centroid.
                let far = features
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a.as_ref(), &centroids[assignments[0]])
                            .total_cmp(&sq_dist(b.as_ref(), &centroids[assignments[0]]))
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty features");
                centroids[j] = features[far].as_ref().to_vec();
            }
        }
        if !changed {
            break;
        }
    }

    let mut sizes = vec![0usize; k];
    for &a in &assignments {
        sizes[a] += 1;
    }
    PatternClusters {
        assignments,
        centroids,
        sizes,
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Outcome of recurrence analysis over an observation window of quanta.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurrenceVerdict {
    /// Quanta analyzed.
    pub windows: usize,
    /// Quanta whose histograms carried a significant burst distribution.
    pub bursty_windows: usize,
    /// Size of the largest cluster of bursty histograms.
    pub largest_burst_cluster: usize,
    /// Whether the burst pattern recurs — the recurrent-burst signature of
    /// a contention-based covert timing channel.
    pub recurrent: bool,
}

/// Clusters the bursty histograms of an observation window and decides
/// recurrence.
///
/// `histograms` and `verdicts` are parallel per-quantum slices. Only quanta
/// with `significant` burst verdicts participate in clustering; the pattern
/// is recurrent when at least [`ClusterConfig::min_recurring`] of them share
/// a cluster (i.e. keep producing *similar* burst histograms).
pub fn analyze_recurrence(
    histograms: &[DensityHistogram],
    verdicts: &[BurstVerdict],
    config: &ClusterConfig,
) -> RecurrenceVerdict {
    assert_eq!(
        histograms.len(),
        verdicts.len(),
        "histograms and verdicts must be parallel"
    );
    let features: Vec<Vec<f64>> = histograms
        .iter()
        .zip(verdicts)
        .filter(|(_, v)| v.significant)
        .map(|(h, _)| discretized_features(h))
        .collect();
    recurrence_from_features(histograms.len(), &features, config)
}

/// A histogram's discretized string as a k-means feature vector — the form
/// the incremental online daemon caches per window slot so a quantum is
/// discretized exactly once.
pub fn discretized_features(histogram: &DensityHistogram) -> Vec<f64> {
    discretize(histogram).into_iter().map(f64::from).collect()
}

/// Decides recurrence from the already-discretized feature vectors of the
/// bursty quanta (in window order). `windows` is the total number of
/// observed quanta, bursty or not.
///
/// This is the clustering core shared by [`analyze_recurrence`] and the
/// incremental [`crate::online::OnlineContentionDetector`]: given the same
/// bursty feature sequence it returns the same verdict, which is what lets
/// the daemon skip re-clustering when a pushed or evicted quantum leaves
/// that sequence unchanged.
pub fn recurrence_from_features<F: AsRef<[f64]> + Sync>(
    windows: usize,
    bursty_features: &[F],
    config: &ClusterConfig,
) -> RecurrenceVerdict {
    let bursty_windows = bursty_features.len();
    if bursty_windows < config.min_recurring {
        return RecurrenceVerdict {
            windows,
            bursty_windows,
            largest_burst_cluster: bursty_windows,
            recurrent: false,
        };
    }
    let clusters = kmeans(
        bursty_features,
        config.k,
        config.seed,
        config.max_iterations,
    );
    let largest = clusters.largest().map(|(_, s)| s).unwrap_or(0);
    RecurrenceVerdict {
        windows,
        bursty_windows,
        largest_burst_cluster: largest,
        recurrent: largest >= config.min_recurring,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstDetector;
    use crate::density::HISTOGRAM_BINS;

    fn histogram(pairs: &[(usize, u64)]) -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        for &(bin, f) in pairs {
            bins[bin] = f;
        }
        DensityHistogram::from_bins(bins, 100_000).expect("test bins are 128 long")
    }

    fn covert_histogram(peak: usize) -> DensityHistogram {
        histogram(&[(0, 2400), (1, 8), (peak, 180), (peak + 1, 20)])
    }

    fn benign_histogram(scale: u64) -> DensityHistogram {
        histogram(&[(0, 2400), (1, 50 * scale), (2, 10 * scale), (3, scale)])
    }

    #[test]
    fn discretize_is_monotone_in_frequency() {
        let h = histogram(&[(0, 1), (1, 2), (2, 4), (3, 1000), (4, 0)]);
        let s = discretize(&h);
        assert!(s[0] < s[1] || s[0] == 1); // log levels: 1, 2, 3
        assert!(s[2] < s[3]);
        assert_eq!(s[4], 0);
        assert!(*s.iter().max().unwrap() < DISCRETIZATION_LEVELS);
    }

    #[test]
    fn kmeans_separates_two_obvious_groups() {
        let mut features = Vec::new();
        for i in 0..5 {
            features.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            features.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        let clusters = kmeans(&features, 2, 42, 50);
        // Points alternate groups; assignments must alternate too.
        let a0 = clusters.assignments[0];
        let a1 = clusters.assignments[1];
        assert_ne!(a0, a1);
        for i in (0..10).step_by(2) {
            assert_eq!(clusters.assignments[i], a0);
            assert_eq!(clusters.assignments[i + 1], a1);
        }
        assert_eq!(clusters.sizes, vec![5, 5]);
    }

    #[test]
    fn kmeans_is_deterministic() {
        let features: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&features, 3, 7, 50);
        let b = kmeans(&features, 3, 7, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn kmeans_handles_k_larger_than_n() {
        let features = vec![vec![1.0], vec![2.0]];
        let clusters = kmeans(&features, 10, 1, 10);
        assert_eq!(clusters.centroids.len(), 2);
    }

    #[test]
    fn kmeans_empty_input() {
        let clusters = kmeans::<Vec<f64>>(&[], 3, 1, 10);
        assert!(clusters.assignments.is_empty());
        assert!(clusters.largest().is_none());
    }

    #[test]
    fn covert_channel_pattern_recurs() {
        let detector = BurstDetector::default();
        // 16 quanta, all carrying the same burst signature around bin 20.
        let histograms: Vec<DensityHistogram> = (0..16).map(|_| covert_histogram(20)).collect();
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        assert!(verdicts.iter().all(|v| v.significant));
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert!(r.recurrent);
        assert_eq!(r.bursty_windows, 16);
        assert!(r.largest_burst_cluster >= 14);
    }

    #[test]
    fn benign_window_is_not_recurrent() {
        let detector = BurstDetector::default();
        let histograms: Vec<DensityHistogram> =
            (1..17).map(|i| benign_histogram(i % 3 + 1)).collect();
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert!(!r.recurrent, "{r:?}");
    }

    #[test]
    fn single_burst_is_not_recurrent() {
        let detector = BurstDetector::default();
        let mut histograms: Vec<DensityHistogram> = (0..7).map(|_| benign_histogram(1)).collect();
        histograms.push(covert_histogram(40));
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert_eq!(r.bursty_windows, 1);
        assert!(!r.recurrent, "one-shot bursts must not count as recurrent");
    }

    #[test]
    fn irregular_burst_intervals_still_recur() {
        // Bursty quanta scattered irregularly through a mostly quiet window
        // (the low-bandwidth channel shape).
        let detector = BurstDetector::default();
        let mut histograms = Vec::new();
        for i in 0..32 {
            if [3, 7, 8, 19, 30].contains(&i) {
                histograms.push(covert_histogram(20));
            } else {
                histograms.push(histogram(&[(0, 2500)]));
            }
        }
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert!(r.recurrent);
        assert_eq!(r.bursty_windows, 5);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_inputs_panic() {
        let histograms = vec![histogram(&[(0, 10)])];
        analyze_recurrence(&histograms, &[], &ClusterConfig::default());
    }
}
