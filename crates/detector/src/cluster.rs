//! Recurrence analysis via pattern clustering (paper §IV-B, step 5).
//!
//! Once a quantum's histogram shows a significant burst distribution, the
//! remaining question is whether the *pattern* recurs across the observation
//! window (up to 512 OS time quanta — 51.2 s — to avoid diluting histogram
//! significance). The paper's pattern-clustering algorithm (1) discretizes
//! the event-density histograms into strings and (2) aggregates similar
//! strings with k-means; recurring burst patterns show up as a populous
//! cluster of bursty histograms, regardless of burst intervals — so
//! low-bandwidth or irregular channels are still caught.

use crate::batch::{sq_dist, sq_dist_bounded, sq_dists_fused, MAX_FUSED_K};
use crate::burst::BurstVerdict;
use crate::density::DensityHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of discretization levels per histogram bin (log-scaled).
pub const DISCRETIZATION_LEVELS: u8 = 16;

/// Discretizes a density histogram into a 128-symbol string: each bin's
/// frequency is quantized to a log₂ level in `0..DISCRETIZATION_LEVELS`.
///
/// ```
/// use cchunter_detector::density::DensityHistogram;
/// use cchunter_detector::cluster::discretize;
/// let mut bins = vec![0u64; 128];
/// bins[0] = 1000;
/// bins[20] = 7;
/// let s = discretize(&DensityHistogram::from_bins(bins, 100).unwrap());
/// assert_eq!(s.len(), 128);
/// assert!(s[0] > s[20]);
/// assert_eq!(s[1], 0);
/// ```
pub fn discretize(histogram: &DensityHistogram) -> Vec<u8> {
    histogram
        .bins()
        .iter()
        .map(|&f| {
            if f == 0 {
                0
            } else {
                let level = 64 - f.leading_zeros() as u8; // floor(log2(f)) + 1
                level.min(DISCRETIZATION_LEVELS - 1)
            }
        })
        .collect()
}

/// Configuration of the recurrence analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of k-means clusters.
    pub k: usize,
    /// Maximum k-means iterations.
    pub max_iterations: usize,
    /// Seed for deterministic k-means++ initialization.
    pub seed: u64,
    /// Minimum number of bursty histograms that must land in one cluster
    /// for the pattern to count as *recurrent*.
    pub min_recurring: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k: 3,
            max_iterations: 50,
            seed: 0xCC15_BEEF,
            min_recurring: 2,
        }
    }
}

/// Result of k-means clustering over discretized histogram strings.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternClusters {
    /// Cluster index assigned to each input, in input order.
    pub assignments: Vec<usize>,
    /// Cluster centroids in feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Number of members per cluster.
    pub sizes: Vec<usize>,
}

impl PatternClusters {
    /// Index and size of the most populous cluster, or `None` when empty.
    pub fn largest(&self) -> Option<(usize, usize)> {
        self.sizes
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, size)| size)
    }
}

/// Below this many feature vectors the assignment step stays serial — the
/// fan-out cost of [`threadpool::par_map`] only pays off on wide windows.
const PAR_ASSIGN_MIN: usize = 64;

/// Index of the centroid nearest to `point` (first wins on exact ties —
/// the tie-break every caller, serial or parallel, must share for
/// assignments to be reproducible).
///
/// Distances use the lane-accumulated [`sq_dist`] kernel with early
/// abandonment: once a candidate's partial sum exceeds the best distance it
/// can never win (partial sums of squares are nondecreasing, and selection
/// requires strictly-less under `total_cmp`), so cutting it short changes
/// neither the winner nor the first-wins tie-break.
///
/// For k up to [`MAX_FUSED_K`] the distances come from the fused
/// single-pass kernel [`sq_dists_fused`], whose per-centroid sums are
/// bit-identical to `sq_dist` calls; the argmin over full distances also
/// matches the early-abandoning loop it replaces, because an abandoned
/// candidate's partial sum already exceeded the running best and its full
/// distance can only be larger — strictly-less selection rejects it either
/// way.
fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    if centroids.len() <= MAX_FUSED_K {
        let mut dists = [f64::INFINITY; MAX_FUSED_K];
        sq_dists_fused(point, centroids, &mut dists);
        let mut best_dist = dists[0];
        for (j, dist) in dists.iter().enumerate().take(centroids.len()).skip(1) {
            if dist.total_cmp(&best_dist) == std::cmp::Ordering::Less {
                best = j;
                best_dist = *dist;
            }
        }
        return best;
    }
    let mut best_dist = sq_dist(point, &centroids[0]);
    for (j, centroid) in centroids.iter().enumerate().skip(1) {
        let dist = sq_dist_bounded(point, centroid, best_dist);
        if dist.total_cmp(&best_dist) == std::cmp::Ordering::Less {
            best = j;
            best_dist = dist;
        }
    }
    best
}

/// Deterministic k-means (k-means++ seeding) over feature vectors.
///
/// The assignment step fans out across the process thread pool for large
/// inputs; because each point's nearest centroid is computed independently
/// (same arithmetic, same tie-break) and results land at their input index,
/// the output is bit-identical to serial execution for any thread count.
/// The centroid-update accumulation stays serial to keep floating-point
/// summation order fixed.
///
/// # Panics
///
/// Panics if `k` is zero or feature vectors have inconsistent lengths.
pub fn kmeans<F: AsRef<[f64]> + Sync>(
    features: &[F],
    k: usize,
    seed: u64,
    max_iterations: usize,
) -> PatternClusters {
    assert!(k > 0, "k must be nonzero");
    if features.is_empty() {
        return PatternClusters {
            assignments: Vec::new(),
            centroids: Vec::new(),
            sizes: Vec::new(),
        };
    }
    let dim = features[0].as_ref().len();
    assert!(
        features.iter().all(|f| f.as_ref().len() == dim),
        "inconsistent feature dimensions"
    );
    let k = k.min(features.len());
    let mut rng = SmallRng::seed_from_u64(seed);

    // k-means++ initialization. `dists[i]` holds min over current centroids
    // of sq_dist(features[i], centroid), maintained incrementally: each new
    // centroid folds in with the same `f64::min` the full recomputation
    // would use, so the values (and the seeded sampling driven by them) are
    // identical to the O(n·k²) rebuild-every-round form this replaces.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut dists = vec![f64::INFINITY; features.len()];
    let mut init_nearest = vec![0usize; features.len()];
    // Each fold uses the early-abandoning kernel with the point's current
    // min as the cutoff: an abandoned distance is some partial sum already
    // above `*d`, so the strict-less test keeps `*d` — exactly what the
    // full distance would have produced (it can only be larger still).
    // Alongside the min, track *which* centroid holds it, applying the same
    // ascending-index, strict-less, first-wins-on-ties rule as
    // `nearest_centroid`: once all k centroids are folded, `init_nearest`
    // IS the first iteration's assignment vector, for free.
    let fold_in = |dists: &mut Vec<f64>, nearest: &mut Vec<usize>, j: usize, centroid: &[f64]| {
        for ((d, n), f) in dists.iter_mut().zip(nearest.iter_mut()).zip(features) {
            let cand = sq_dist_bounded(f.as_ref(), centroid, *d);
            if cand.total_cmp(d) == std::cmp::Ordering::Less {
                *d = cand;
                *n = j;
            }
        }
    };
    centroids.push(features[rng.gen_range(0..features.len())].as_ref().to_vec());
    fold_in(&mut dists, &mut init_nearest, 0, &centroids[0]);
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        if total <= f64::EPSILON {
            // All points identical to existing centroids.
            centroids.push(features[rng.gen_range(0..features.len())].as_ref().to_vec());
            let j = centroids.len() - 1;
            fold_in(&mut dists, &mut init_nearest, j, &centroids[j]);
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = features.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            if target < *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(features[chosen].as_ref().to_vec());
        let j = centroids.len() - 1;
        fold_in(&mut dists, &mut init_nearest, j, &centroids[j]);
    }

    let mut assignments = vec![0usize; features.len()];
    let mut updated_once = false;
    // The init fold already computed every point's nearest init centroid;
    // hand it to the first loop iteration so the first (and often only
    // non-converged) assignment pass costs nothing.
    let mut precomputed = Some(init_nearest);
    // Scratch reused across iterations: one flat k×dim accumulator slab and
    // the per-cluster member counts. Zeroing a flat slab each round is a
    // memset; the summation order inside it is identical to the per-cluster
    // `Vec<Vec<f64>>` form this replaces.
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for _ in 0..max_iterations {
        // Assign: independent per point, so safe to parallelize.
        let mut changed = false;
        if let Some(nearest) = precomputed.take() {
            for (a, n) in assignments.iter_mut().zip(&nearest) {
                if *a != *n {
                    *a = *n;
                    changed = true;
                }
            }
        } else if features.len() >= PAR_ASSIGN_MIN {
            let centroids = &centroids;
            let nearest: Vec<usize> =
                threadpool::par_map(features, |f| nearest_centroid(f.as_ref(), centroids));
            for (a, n) in assignments.iter_mut().zip(&nearest) {
                if *a != *n {
                    *a = *n;
                    changed = true;
                }
            }
        } else {
            for (a, f) in assignments.iter_mut().zip(features) {
                let n = nearest_centroid(f.as_ref(), &centroids);
                if *a != n {
                    *a = n;
                    changed = true;
                }
            }
        }
        // Converged with the centroids already derived from these exact
        // assignments: re-running the update would recompute the identical
        // means (same members, same summation order), so skip it. The guard
        // excludes the first iteration, whose "unchanged" compares against
        // the all-zeros initial vector rather than a real prior update.
        if !changed && updated_once {
            break;
        }
        // Update: serial, preserving a fixed summation order.
        sums.iter_mut().for_each(|s| *s = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for (f, &a) in features.iter().zip(&assignments) {
            counts[a] += 1;
            crate::batch::add_assign(&mut sums[a * dim..(a + 1) * dim], f.as_ref());
        }
        for (j, (sum, &count)) in sums.chunks_exact(dim.max(1)).zip(&counts).enumerate() {
            if count > 0 {
                for (c, s) in centroids[j].iter_mut().zip(sum) {
                    *c = s / count as f64;
                }
            } else {
                // Re-seed an empty cluster at the point farthest from its
                // centroid.
                let far = features
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a.as_ref(), &centroids[assignments[0]])
                            .total_cmp(&sq_dist(b.as_ref(), &centroids[assignments[0]]))
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty features");
                centroids[j] = features[far].as_ref().to_vec();
            }
        }
        if !changed {
            break;
        }
        updated_once = true;
    }

    let mut sizes = vec![0usize; k];
    for &a in &assignments {
        sizes[a] += 1;
    }
    PatternClusters {
        assignments,
        centroids,
        sizes,
    }
}

/// Outcome of recurrence analysis over an observation window of quanta.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurrenceVerdict {
    /// Quanta analyzed.
    pub windows: usize,
    /// Quanta whose histograms carried a significant burst distribution.
    pub bursty_windows: usize,
    /// Size of the largest cluster of bursty histograms.
    pub largest_burst_cluster: usize,
    /// Whether the burst pattern recurs — the recurrent-burst signature of
    /// a contention-based covert timing channel.
    pub recurrent: bool,
}

/// Clusters the bursty histograms of an observation window and decides
/// recurrence.
///
/// `histograms` and `verdicts` are parallel per-quantum slices. Only quanta
/// with `significant` burst verdicts participate in clustering; the pattern
/// is recurrent when at least [`ClusterConfig::min_recurring`] of them share
/// a cluster (i.e. keep producing *similar* burst histograms).
pub fn analyze_recurrence<H: std::borrow::Borrow<DensityHistogram>>(
    histograms: &[H],
    verdicts: &[BurstVerdict],
    config: &ClusterConfig,
) -> RecurrenceVerdict {
    assert_eq!(
        histograms.len(),
        verdicts.len(),
        "histograms and verdicts must be parallel"
    );
    // One flat feature slab for the whole window: the bursty quanta's
    // discretized strings land back-to-back and k-means sees borrowed
    // row slices, so the hot audit path allocates twice (slab + row table)
    // instead of once per bursty quantum.
    let mut slab: Vec<f64> = Vec::new();
    for (h, _) in histograms
        .iter()
        .zip(verdicts)
        .filter(|(_, v)| v.significant)
    {
        discretized_features_into(h.borrow(), &mut slab);
    }
    let rows: Vec<&[f64]> = slab.chunks_exact(crate::density::HISTOGRAM_BINS).collect();
    recurrence_from_features(histograms.len(), &rows, config)
}

/// A histogram's discretized string as a k-means feature vector — the form
/// the incremental online daemon caches per window slot so a quantum is
/// discretized exactly once.
pub fn discretized_features(histogram: &DensityHistogram) -> Vec<f64> {
    let mut features = Vec::with_capacity(crate::density::HISTOGRAM_BINS);
    discretized_features_into(histogram, &mut features);
    features
}

/// Appends a histogram's discretized feature vector onto `out` — the
/// allocation-free form the batched audit path uses to fill one flat
/// feature slab for a whole window instead of one `Vec` per quantum.
/// Identical values to `discretize(h)` mapped through `f64::from`, computed
/// in a single pass without the intermediate `u8` string.
pub fn discretized_features_into(histogram: &DensityHistogram, out: &mut Vec<f64>) {
    // Bit width → level, precomputed: `LEVEL_OF_WIDTH[w] = min(w, L-1) as
    // f64`, with width 0 (an empty bin) mapping to level 0.0 exactly as the
    // branchy `if f == 0` form did. The table turns the per-bin
    // convert+clamp into a single branchless load, which matters on the
    // batch audit path where every quantum's 128 bins pass through here.
    const LEVEL_OF_WIDTH: [f64; 65] = {
        let mut t = [0.0f64; 65];
        let mut w = 1;
        while w < 65 {
            t[w] = if w < (DISCRETIZATION_LEVELS - 1) as usize {
                w as f64
            } else {
                (DISCRETIZATION_LEVELS - 1) as f64
            };
            w += 1;
        }
        t
    };
    out.extend(
        histogram
            .bins()
            .iter()
            .map(|&f| LEVEL_OF_WIDTH[(u64::BITS - f.leading_zeros()) as usize]),
    );
}

/// Decides recurrence from the already-discretized feature vectors of the
/// bursty quanta (in window order). `windows` is the total number of
/// observed quanta, bursty or not.
///
/// This is the clustering core shared by [`analyze_recurrence`] and the
/// incremental [`crate::online::OnlineContentionDetector`]: given the same
/// bursty feature sequence it returns the same verdict, which is what lets
/// the daemon skip re-clustering when a pushed or evicted quantum leaves
/// that sequence unchanged.
pub fn recurrence_from_features<F: AsRef<[f64]> + Sync>(
    windows: usize,
    bursty_features: &[F],
    config: &ClusterConfig,
) -> RecurrenceVerdict {
    let bursty_windows = bursty_features.len();
    if bursty_windows < config.min_recurring {
        return RecurrenceVerdict {
            windows,
            bursty_windows,
            largest_burst_cluster: bursty_windows,
            recurrent: false,
        };
    }
    let clusters = kmeans(
        bursty_features,
        config.k,
        config.seed,
        config.max_iterations,
    );
    let largest = clusters.largest().map(|(_, s)| s).unwrap_or(0);
    RecurrenceVerdict {
        windows,
        bursty_windows,
        largest_burst_cluster: largest,
        recurrent: largest >= config.min_recurring,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstDetector;
    use crate::density::HISTOGRAM_BINS;

    fn histogram(pairs: &[(usize, u64)]) -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        for &(bin, f) in pairs {
            bins[bin] = f;
        }
        DensityHistogram::from_bins(bins, 100_000).expect("test bins are 128 long")
    }

    fn covert_histogram(peak: usize) -> DensityHistogram {
        histogram(&[(0, 2400), (1, 8), (peak, 180), (peak + 1, 20)])
    }

    fn benign_histogram(scale: u64) -> DensityHistogram {
        histogram(&[(0, 2400), (1, 50 * scale), (2, 10 * scale), (3, scale)])
    }

    #[test]
    fn discretize_is_monotone_in_frequency() {
        let h = histogram(&[(0, 1), (1, 2), (2, 4), (3, 1000), (4, 0)]);
        let s = discretize(&h);
        assert!(s[0] < s[1] || s[0] == 1); // log levels: 1, 2, 3
        assert!(s[2] < s[3]);
        assert_eq!(s[4], 0);
        assert!(*s.iter().max().unwrap() < DISCRETIZATION_LEVELS);
    }

    #[test]
    fn kmeans_separates_two_obvious_groups() {
        let mut features = Vec::new();
        for i in 0..5 {
            features.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            features.push(vec![10.0 + i as f64 * 0.01, 10.0]);
        }
        let clusters = kmeans(&features, 2, 42, 50);
        // Points alternate groups; assignments must alternate too.
        let a0 = clusters.assignments[0];
        let a1 = clusters.assignments[1];
        assert_ne!(a0, a1);
        for i in (0..10).step_by(2) {
            assert_eq!(clusters.assignments[i], a0);
            assert_eq!(clusters.assignments[i + 1], a1);
        }
        assert_eq!(clusters.sizes, vec![5, 5]);
    }

    /// Straight transcription of the textbook form of the algorithm —
    /// full k-means++ distance recomputation per seeding round, fresh
    /// assignment scan per iteration, per-cluster `Vec` accumulators —
    /// kept as the oracle the optimized `kmeans` must match bit-for-bit
    /// (same seeded choices, same assignments, same centroid floats).
    fn kmeans_reference<F: AsRef<[f64]> + Sync>(
        features: &[F],
        k: usize,
        seed: u64,
        max_iterations: usize,
    ) -> PatternClusters {
        assert!(k > 0);
        if features.is_empty() {
            return PatternClusters {
                assignments: Vec::new(),
                centroids: Vec::new(),
                sizes: Vec::new(),
            };
        }
        let dim = features[0].as_ref().len();
        let k = k.min(features.len());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(features[rng.gen_range(0..features.len())].as_ref().to_vec());
        while centroids.len() < k {
            let dists: Vec<f64> = features
                .iter()
                .map(|f| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(f.as_ref(), c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = dists.iter().sum();
            if total <= f64::EPSILON {
                centroids.push(features[rng.gen_range(0..features.len())].as_ref().to_vec());
                continue;
            }
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = features.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                if target < *d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            centroids.push(features[chosen].as_ref().to_vec());
        }
        let mut assignments = vec![0usize; features.len()];
        let mut updated_once = false;
        for _ in 0..max_iterations {
            let nearest: Vec<usize> = features
                .iter()
                .map(|f| {
                    let point = f.as_ref();
                    let mut best = 0;
                    let mut best_dist = sq_dist(point, &centroids[0]);
                    for (j, c) in centroids.iter().enumerate().skip(1) {
                        let dist = sq_dist(point, c);
                        if dist.total_cmp(&best_dist) == std::cmp::Ordering::Less {
                            best = j;
                            best_dist = dist;
                        }
                    }
                    best
                })
                .collect();
            let mut changed = false;
            for (a, n) in assignments.iter_mut().zip(&nearest) {
                if *a != *n {
                    *a = *n;
                    changed = true;
                }
            }
            if !changed && updated_once {
                break;
            }
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (f, &a) in features.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(f.as_ref()) {
                    *s += x;
                }
            }
            for (j, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
                if count > 0 {
                    centroids[j] = sum.iter().map(|s| s / count as f64).collect();
                } else {
                    let far = features
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            sq_dist(a.as_ref(), &centroids[assignments[0]])
                                .total_cmp(&sq_dist(b.as_ref(), &centroids[assignments[0]]))
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty features");
                    centroids[j] = features[far].as_ref().to_vec();
                }
            }
            if !changed {
                break;
            }
            updated_once = true;
        }
        let mut sizes = vec![0usize; k];
        for &a in &assignments {
            sizes[a] += 1;
        }
        PatternClusters {
            assignments,
            centroids,
            sizes,
        }
    }

    #[test]
    fn optimized_kmeans_is_bit_identical_to_reference() {
        // Mixed shapes: well-separated groups, near-duplicates, a stretch
        // of identical points (exercises the duplicate-centroid seeding
        // branch), and high-dimensional discretized-looking strings.
        let mut x = 0x1234_5678_u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for (n, dim, k) in [
            (1usize, 1usize, 1usize),
            (7, 3, 3),
            (64, 128, 3),
            (40, 16, 5),
        ] {
            let features: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..dim).map(|_| (next() % 16) as f64).collect())
                .collect();
            let fast = kmeans(&features, k, 99, 50);
            let slow = kmeans_reference(&features, k, 99, 50);
            assert_eq!(fast.assignments, slow.assignments, "n={n} dim={dim} k={k}");
            assert_eq!(fast.sizes, slow.sizes, "n={n} dim={dim} k={k}");
            for (cf, cs) in fast.centroids.iter().zip(&slow.centroids) {
                for (a, b) in cf.iter().zip(cs) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} dim={dim} k={k}");
                }
            }
        }
        // All-identical points: every seeding round hits the duplicate
        // branch.
        let dupes: Vec<Vec<f64>> = (0..12).map(|_| vec![3.0; 8]).collect();
        let fast = kmeans(&dupes, 4, 7, 20);
        let slow = kmeans_reference(&dupes, 4, 7, 20);
        assert_eq!(fast.assignments, slow.assignments);
        assert_eq!(fast.sizes, slow.sizes);
    }

    #[test]
    fn kmeans_is_deterministic() {
        let features: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&features, 3, 7, 50);
        let b = kmeans(&features, 3, 7, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn kmeans_handles_k_larger_than_n() {
        let features = vec![vec![1.0], vec![2.0]];
        let clusters = kmeans(&features, 10, 1, 10);
        assert_eq!(clusters.centroids.len(), 2);
    }

    #[test]
    fn kmeans_empty_input() {
        let clusters = kmeans::<Vec<f64>>(&[], 3, 1, 10);
        assert!(clusters.assignments.is_empty());
        assert!(clusters.largest().is_none());
    }

    #[test]
    fn covert_channel_pattern_recurs() {
        let detector = BurstDetector::default();
        // 16 quanta, all carrying the same burst signature around bin 20.
        let histograms: Vec<DensityHistogram> = (0..16).map(|_| covert_histogram(20)).collect();
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        assert!(verdicts.iter().all(|v| v.significant));
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert!(r.recurrent);
        assert_eq!(r.bursty_windows, 16);
        assert!(r.largest_burst_cluster >= 14);
    }

    #[test]
    fn benign_window_is_not_recurrent() {
        let detector = BurstDetector::default();
        let histograms: Vec<DensityHistogram> =
            (1..17).map(|i| benign_histogram(i % 3 + 1)).collect();
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert!(!r.recurrent, "{r:?}");
    }

    #[test]
    fn single_burst_is_not_recurrent() {
        let detector = BurstDetector::default();
        let mut histograms: Vec<DensityHistogram> = (0..7).map(|_| benign_histogram(1)).collect();
        histograms.push(covert_histogram(40));
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert_eq!(r.bursty_windows, 1);
        assert!(!r.recurrent, "one-shot bursts must not count as recurrent");
    }

    #[test]
    fn irregular_burst_intervals_still_recur() {
        // Bursty quanta scattered irregularly through a mostly quiet window
        // (the low-bandwidth channel shape).
        let detector = BurstDetector::default();
        let mut histograms = Vec::new();
        for i in 0..32 {
            if [3, 7, 8, 19, 30].contains(&i) {
                histograms.push(covert_histogram(20));
            } else {
                histograms.push(histogram(&[(0, 2500)]));
            }
        }
        let verdicts: Vec<_> = histograms.iter().map(|h| detector.analyze(h)).collect();
        let r = analyze_recurrence(&histograms, &verdicts, &ClusterConfig::default());
        assert!(r.recurrent);
        assert_eq!(r.bursty_windows, 5);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_inputs_panic() {
        let histograms = vec![histogram(&[(0, 10)])];
        analyze_recurrence(&histograms, &[], &ClusterConfig::default());
    }
}
