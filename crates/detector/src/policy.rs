//! Retry, backoff, and quarantine policy for supervised probe harvests.
//!
//! A deployed CC-Hunter fleet polls many per-pair probes every quantum, and
//! individual probes fail in two very different ways:
//!
//! * **transiently** — a harvest deadline slips, a buffer read-out races —
//!   worth retrying immediately-ish, with exponential backoff so a
//!   struggling probe isn't hammered;
//! * **persistently** — a wedged monitor, a deprogrammed slot — where
//!   retrying forever would starve the healthy pairs of their audit budget.
//!
//! [`backoff_delay`] provides the first: deterministic exponential backoff
//! with seeded jitter, reproducible run to run so fault-injection tests can
//! replay exact schedules. [`CircuitBreaker`] provides the second: a
//! per-pair failure-rate window that trips into **quarantine** (open) when
//! failures exceed a threshold, periodically admits a recovery probe
//! (half-open), and closes again after enough consecutive successes. All
//! state is tick-based (the supervisor's quantum counter), never
//! wall-clock, so behavior is exactly reproducible and serializes cleanly
//! into checkpoints.

use crate::metrics::{default_registry, Counter};
use crate::span;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

/// Process-wide count of breaker state transitions (any breaker, any
/// fleet), registered in [`default_registry`].
fn breaker_transitions_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_breaker_transitions_total",
            "Circuit-breaker state transitions across all supervised pairs",
        )
    })
}

/// Exponential-backoff parameters for transient probe failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay before the first retry, in microseconds.
    pub base_us: u64,
    /// Multiplier applied per subsequent retry.
    pub factor: f64,
    /// Ceiling on any single delay, in microseconds.
    pub max_us: u64,
    /// Retries per probe before the harvest is declared missed.
    pub max_retries: u32,
    /// Jitter as a fraction of the delay in `[0, 1]`: each delay is scaled
    /// by a factor drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_us: 50,
            factor: 2.0,
            max_us: 5_000,
            max_retries: 3,
            jitter: 0.25,
        }
    }
}

/// Mixes the supervisor seed with per-site coordinates into one RNG seed
/// (splitmix64-style), so every `(pair, tick, attempt)` gets an
/// independent, reproducible jitter draw without any serialized RNG state.
pub fn mix_seed(seed: u64, pair: u64, tick: u64) -> u64 {
    let mut z = seed
        .wrapping_add(pair.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(tick.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delay (µs) to wait before retry number `attempt` (0-based), or
/// `None` when the retry budget is exhausted.
///
/// Deterministic: the jitter is drawn from an RNG seeded purely by
/// `(seed, attempt)`, so the same inputs always produce the same schedule —
/// a crash-restored supervisor replays identical backoff behavior.
///
/// ```
/// use cchunter_detector::policy::{backoff_delay, BackoffConfig};
/// let config = BackoffConfig::default();
/// let a = backoff_delay(&config, 7, 0);
/// assert_eq!(a, backoff_delay(&config, 7, 0), "reproducible");
/// assert!(backoff_delay(&config, 7, config.max_retries).is_none());
/// ```
pub fn backoff_delay(config: &BackoffConfig, seed: u64, attempt: u32) -> Option<u64> {
    if attempt >= config.max_retries {
        return None;
    }
    let exp = config.base_us as f64 * config.factor.powi(attempt as i32);
    let capped = exp.min(config.max_us as f64);
    let jitter = config.jitter.clamp(0.0, 1.0);
    let scale = if jitter > 0.0 {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, attempt as u64, 0x5EED));
        1.0 - jitter + rng.gen_range(0.0..(2.0 * jitter))
    } else {
        1.0
    };
    Some((capped * scale).round().max(0.0) as u64)
}

/// Quarantine (circuit-breaker) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// Sliding window of recent probe outcomes the failure rate is
    /// computed over.
    pub failure_window: usize,
    /// Failure rate in `(0, 1]` that trips the breaker open.
    pub trip_threshold: f64,
    /// Minimum outcomes in the window before the breaker may trip (so one
    /// early failure is not a 100% rate).
    pub min_observations: usize,
    /// Ticks between recovery probes while quarantined.
    pub probe_interval: u64,
    /// Consecutive successful recovery probes required to close again.
    pub recovery_successes: u32,
    /// Per-skipped-tick multiplicative decay of a quarantined pair's
    /// reported confidence, in `(0, 1]`.
    pub confidence_decay: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            failure_window: 8,
            trip_threshold: 0.5,
            min_observations: 4,
            probe_interval: 4,
            recovery_successes: 2,
            confidence_decay: 0.8,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Probes flow normally.
    Closed,
    /// Quarantined: probes are skipped except for periodic recovery probes.
    Open {
        /// Tick at which the breaker tripped.
        since_tick: u64,
    },
    /// A recovery probe succeeded; a few more must succeed to close.
    HalfOpen {
        /// Consecutive recovery successes so far.
        successes: u32,
    },
}

impl BreakerState {
    /// The state's bare name (`closed` / `open` / `half-open`), without the
    /// per-state data — the stable vocabulary used by trace events and
    /// metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => f.write_str("closed"),
            BreakerState::Open { since_tick } => write!(f, "open(since {since_tick})"),
            BreakerState::HalfOpen { successes } => write!(f, "half-open({successes})"),
        }
    }
}

/// Per-pair failure-rate circuit breaker with quarantine and recovery.
///
/// ```
/// use cchunter_detector::policy::{BreakerState, CircuitBreaker, QuarantineConfig};
/// let mut breaker = CircuitBreaker::new(QuarantineConfig::default());
/// for tick in 0..4 {
///     breaker.record_failure(tick);
/// }
/// assert!(matches!(breaker.state(), BreakerState::Open { .. }));
/// assert!(!breaker.should_attempt(5), "quarantined ticks are skipped");
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: QuarantineConfig,
    /// Recent outcomes, oldest first; `true` = failure.
    outcomes: VecDeque<bool>,
    failures_in_window: usize,
    state: BreakerState,
}

impl CircuitBreaker {
    /// Creates a closed breaker. Degenerate configs are clamped: a zero
    /// window or threshold would otherwise trip instantly and permanently.
    pub fn new(config: QuarantineConfig) -> Self {
        let config = QuarantineConfig {
            failure_window: config.failure_window.max(1),
            trip_threshold: config.trip_threshold.clamp(f64::EPSILON, 1.0),
            min_observations: config.min_observations.max(1),
            probe_interval: config.probe_interval.max(1),
            recovery_successes: config.recovery_successes.max(1),
            confidence_decay: config.confidence_decay.clamp(f64::EPSILON, 1.0),
        };
        CircuitBreaker {
            config,
            outcomes: VecDeque::with_capacity(config.failure_window),
            failures_in_window: 0,
            state: BreakerState::Closed,
        }
    }

    /// The active (clamped) configuration.
    pub fn config(&self) -> &QuarantineConfig {
        &self.config
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the pair is quarantined (open or still proving recovery).
    pub fn is_quarantined(&self) -> bool {
        !matches!(self.state, BreakerState::Closed)
    }

    /// Failure rate over the current window (0.0 when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.failures_in_window as f64 / self.outcomes.len() as f64
        }
    }

    /// Whether the supervisor should probe this pair at `tick`: always when
    /// closed or half-open, and only on recovery-probe ticks while open.
    pub fn should_attempt(&self, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { since_tick } => {
                let elapsed = tick.saturating_sub(since_tick);
                elapsed > 0 && elapsed % self.config.probe_interval == 0
            }
        }
    }

    fn push_outcome(&mut self, failed: bool) {
        self.outcomes.push_back(failed);
        if failed {
            self.failures_in_window += 1;
        }
        if self.outcomes.len() > self.config.failure_window
            && self.outcomes.pop_front() == Some(true)
        {
            self.failures_in_window -= 1;
        }
    }

    /// Records a successful probe at `tick`.
    pub fn record_success(&mut self, tick: u64) {
        let before = self.state;
        self.push_outcome(false);
        match self.state {
            BreakerState::Closed => {}
            BreakerState::Open { .. } => {
                self.state = BreakerState::HalfOpen { successes: 1 };
                self.maybe_close();
            }
            BreakerState::HalfOpen { successes } => {
                self.state = BreakerState::HalfOpen {
                    successes: successes + 1,
                };
                self.maybe_close();
            }
        }
        self.note_transition(before, tick);
    }

    fn maybe_close(&mut self) {
        if let BreakerState::HalfOpen { successes } = self.state {
            if successes >= self.config.recovery_successes {
                self.state = BreakerState::Closed;
                self.outcomes.clear();
                self.failures_in_window = 0;
            }
        }
    }

    /// Records a failed probe at `tick`, possibly tripping the breaker.
    pub fn record_failure(&mut self, tick: u64) {
        let before = self.state;
        self.push_outcome(true);
        match self.state {
            BreakerState::Closed => {
                if self.outcomes.len() >= self.config.min_observations
                    && self.failure_rate() >= self.config.trip_threshold
                {
                    self.state = BreakerState::Open { since_tick: tick };
                }
            }
            // A failed recovery probe re-opens the quarantine clock.
            BreakerState::HalfOpen { .. } | BreakerState::Open { .. } => {
                self.state = BreakerState::Open { since_tick: tick };
            }
        }
        self.note_transition(before, tick);
    }

    /// Publishes a state change (same-variant updates such as an open
    /// breaker refreshing `since_tick` are not transitions) to the global
    /// transition counter and tracer.
    fn note_transition(&self, before: BreakerState, tick: u64) {
        if std::mem::discriminant(&before) == std::mem::discriminant(&self.state) {
            return;
        }
        breaker_transitions_total().inc();
        let tracer = span::global();
        if tracer.is_enabled() {
            tracer.event(
                "policy",
                "breaker-transition",
                format!("{} -> {} at tick {tick}", before.name(), self.state.name()),
            );
        }
    }

    /// Serializes the breaker to one checkpoint field: `state;since;succ;`
    /// followed by the outcome window as `1`/`0` chars, oldest first.
    pub fn serialize(&self) -> String {
        let (state, since, successes) = match self.state {
            BreakerState::Closed => ("closed", 0, 0),
            BreakerState::Open { since_tick } => ("open", since_tick, 0),
            BreakerState::HalfOpen { successes } => ("half-open", 0, successes),
        };
        let window: String = self
            .outcomes
            .iter()
            .map(|&failed| if failed { '1' } else { '0' })
            .collect();
        format!("{state};{since};{successes};{window}")
    }

    /// Restores a breaker serialized by [`serialize`](Self::serialize).
    ///
    /// Returns `None` on any malformed field (the caller converts that to
    /// its own typed error).
    pub fn deserialize(config: QuarantineConfig, text: &str) -> Option<Self> {
        let mut fields = text.split(';');
        let state = fields.next()?;
        let since: u64 = fields.next()?.parse().ok()?;
        let successes: u32 = fields.next()?.parse().ok()?;
        let window = fields.next()?;
        if fields.next().is_some() || window.len() > 4096 {
            return None;
        }
        let mut breaker = CircuitBreaker::new(config);
        for c in window.chars() {
            match c {
                '0' => breaker.push_outcome(false),
                '1' => breaker.push_outcome(true),
                _ => return None,
            }
        }
        breaker.state = match state {
            "closed" => BreakerState::Closed,
            "open" => BreakerState::Open { since_tick: since },
            "half-open" => BreakerState::HalfOpen { successes },
            _ => return None,
        };
        Some(breaker)
    }
}

/// Hysteresis parameters for latency-SLO shard suspicion.
///
/// A gray-failing shard is *slow but alive*: it answers heartbeats, so the
/// hard watchdog never fires, yet its tick latency quietly starves the
/// fleet's observation windows. Suspicion is the soft counterpart — a
/// shard whose tick p99 breaches its budget for [`breach_ticks`]
/// *consecutive* ticks is **suspected** (and proactively drained), and
/// only [`clear_ticks`] consecutive in-budget ticks clear it again. Both
/// streaks reset on any opposite observation, so a shard oscillating
/// around the budget line settles into whichever side it actually
/// sustains instead of flapping.
///
/// [`breach_ticks`]: SuspicionConfig::breach_ticks
/// [`clear_ticks`]: SuspicionConfig::clear_ticks
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspicionConfig {
    /// Consecutive over-budget ticks required to suspect (min 1).
    pub breach_ticks: u32,
    /// Consecutive in-budget ticks required to clear (min 1).
    pub clear_ticks: u32,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        SuspicionConfig {
            breach_ticks: 3,
            clear_ticks: 5,
        }
    }
}

/// An edge of the suspicion state machine, returned by
/// [`SuspicionTracker::observe`] when a streak completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspicionTransition {
    /// The breach streak completed: the shard is now suspected.
    Suspected,
    /// The recovery streak completed: the shard is healthy again.
    Cleared,
}

/// Per-shard latency-SLO suspicion with hysteresis (see
/// [`SuspicionConfig`]).
///
/// ```
/// use cchunter_detector::policy::{SuspicionConfig, SuspicionTracker, SuspicionTransition};
/// let mut tracker = SuspicionTracker::new(SuspicionConfig {
///     breach_ticks: 2,
///     clear_ticks: 2,
/// });
/// assert_eq!(tracker.observe(true), None, "one breach is not a streak");
/// assert_eq!(tracker.observe(true), Some(SuspicionTransition::Suspected));
/// assert!(tracker.suspected());
/// // Strict alternation never completes either streak: no flapping.
/// for _ in 0..16 {
///     assert_eq!(tracker.observe(false), None);
///     assert_eq!(tracker.observe(true), None);
/// }
/// assert!(tracker.suspected());
/// ```
#[derive(Debug, Clone)]
pub struct SuspicionTracker {
    config: SuspicionConfig,
    suspected: bool,
    breach_streak: u32,
    clear_streak: u32,
}

impl SuspicionTracker {
    /// Creates a healthy (unsuspected) tracker. Zero streak lengths are
    /// clamped to 1 — a zero threshold would transition on every tick.
    pub fn new(config: SuspicionConfig) -> Self {
        SuspicionTracker {
            config: SuspicionConfig {
                breach_ticks: config.breach_ticks.max(1),
                clear_ticks: config.clear_ticks.max(1),
            },
            suspected: false,
            breach_streak: 0,
            clear_streak: 0,
        }
    }

    /// The active (clamped) configuration.
    pub fn config(&self) -> SuspicionConfig {
        self.config
    }

    /// Whether the shard is currently suspected.
    pub fn suspected(&self) -> bool {
        self.suspected
    }

    /// Feeds one tick's verdict (`over_budget`: did the tick-latency p99
    /// breach the budget?) and returns the transition it completes, if
    /// any.
    pub fn observe(&mut self, over_budget: bool) -> Option<SuspicionTransition> {
        if over_budget {
            self.clear_streak = 0;
            if self.suspected {
                return None;
            }
            self.breach_streak += 1;
            if self.breach_streak >= self.config.breach_ticks {
                self.suspected = true;
                self.breach_streak = 0;
                return Some(SuspicionTransition::Suspected);
            }
        } else {
            self.breach_streak = 0;
            if !self.suspected {
                return None;
            }
            self.clear_streak += 1;
            if self.clear_streak >= self.config.clear_ticks {
                self.suspected = false;
                self.clear_streak = 0;
                return Some(SuspicionTransition::Cleared);
            }
        }
        None
    }

    /// Forgets all streak state (e.g. after the shard is rebuilt); a
    /// revived shard starts healthy.
    pub fn reset(&mut self) {
        self.suspected = false;
        self.breach_streak = 0;
        self.clear_streak = 0;
    }
}

/// Adjustments a pair's supervision state needs when its quarantine
/// recovery probes succeed (the breaker closes again).
///
/// Quarantine (probe health) and containment (threat response) are two
/// independent axes that interact badly without reconciliation: while
/// quarantined, every skipped tick multiplicatively decays the pair's
/// reported confidence, and the mitigation policy's verdict streaks are
/// frozen at their pre-quarantine values. A pair that is *both* quarantined
/// and contained would otherwise leave quarantine with (a) a confidence
/// decayed once by the skip path and again by the muted, mitigated channel
/// (double decay), and (b) a stale covert streak that instantly
/// re-escalates the containment ladder off pre-quarantine evidence (a
/// stuck containment that can never step down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReconciliation {
    /// Restore the quarantine-decayed confidence to the value the detector
    /// actually reports, instead of continuing from the decayed floor.
    pub restore_confidence: bool,
    /// Clear the pre-quarantine covert streak: escalating containment
    /// further must take fresh post-recovery evidence.
    pub reset_covert_streak: bool,
    /// Clear the clean streak symmetrically: stepping containment down
    /// must also take fresh post-recovery evidence, not ticks accumulated
    /// while the probe was wedged.
    pub reset_clean_streak: bool,
}

/// Computes the reconciliation required when a breaker transitions from
/// `before` to `after`, given whether the pair is currently contained by an
/// active mitigation.
///
/// Returns `Some` only on a genuine recovery (quarantined → closed);
/// confidence is always restored on recovery, and the mitigation streaks
/// are reset only when a containment is actually active.
///
/// ```
/// use cchunter_detector::policy::{reconcile_quarantine_recovery, BreakerState};
/// let r = reconcile_quarantine_recovery(
///     BreakerState::HalfOpen { successes: 2 },
///     BreakerState::Closed,
///     true,
/// )
/// .expect("recovery");
/// assert!(r.restore_confidence && r.reset_covert_streak);
/// ```
pub fn reconcile_quarantine_recovery(
    before: BreakerState,
    after: BreakerState,
    contained: bool,
) -> Option<RecoveryReconciliation> {
    let was_quarantined = !matches!(before, BreakerState::Closed);
    let now_closed = matches!(after, BreakerState::Closed);
    if !(was_quarantined && now_closed) {
        return None;
    }
    Some(RecoveryReconciliation {
        restore_confidence: true,
        reset_covert_streak: contained,
        reset_clean_streak: contained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_reconciliation_only_fires_on_quarantine_close() {
        // Closed -> Closed: nothing to reconcile.
        assert_eq!(
            reconcile_quarantine_recovery(BreakerState::Closed, BreakerState::Closed, true),
            None
        );
        // Closed -> Open is a trip, not a recovery.
        assert_eq!(
            reconcile_quarantine_recovery(
                BreakerState::Closed,
                BreakerState::Open { since_tick: 3 },
                true
            ),
            None
        );
        // Open -> HalfOpen is progress but not yet a recovery.
        assert_eq!(
            reconcile_quarantine_recovery(
                BreakerState::Open { since_tick: 3 },
                BreakerState::HalfOpen { successes: 1 },
                true
            ),
            None
        );
        // HalfOpen -> Closed is the recovery edge.
        let r = reconcile_quarantine_recovery(
            BreakerState::HalfOpen { successes: 2 },
            BreakerState::Closed,
            false,
        )
        .expect("recovery edge");
        assert!(r.restore_confidence);
        assert!(!r.reset_covert_streak);
        assert!(!r.reset_clean_streak);
    }

    #[test]
    fn recovery_reconciliation_resets_streaks_only_when_contained() {
        let contained = reconcile_quarantine_recovery(
            BreakerState::Open { since_tick: 10 },
            BreakerState::Closed,
            true,
        )
        .expect("recovery edge");
        assert!(contained.restore_confidence);
        assert!(contained.reset_covert_streak);
        assert!(contained.reset_clean_streak);

        let free = reconcile_quarantine_recovery(
            BreakerState::Open { since_tick: 10 },
            BreakerState::Closed,
            false,
        )
        .expect("recovery edge");
        assert!(free.restore_confidence);
        assert!(!free.reset_covert_streak);
        assert!(!free.reset_clean_streak);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let config = BackoffConfig {
            base_us: 100,
            factor: 2.0,
            max_us: 1_000,
            max_retries: 6,
            jitter: 0.25,
        };
        let schedule: Vec<Option<u64>> = (0..8).map(|a| backoff_delay(&config, 42, a)).collect();
        assert_eq!(
            schedule,
            (0..8)
                .map(|a| backoff_delay(&config, 42, a))
                .collect::<Vec<_>>()
        );
        for (attempt, delay) in schedule.iter().enumerate() {
            if attempt < 6 {
                let d = delay.expect("within retry budget");
                // base·2^a capped at max, ±25% jitter.
                let nominal = (100.0 * 2f64.powi(attempt as i32)).min(1_000.0);
                assert!((d as f64) >= nominal * 0.74 && (d as f64) <= nominal * 1.26);
            } else {
                assert!(delay.is_none(), "attempt {attempt} exhausts the budget");
            }
        }
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let config = BackoffConfig::default();
        let delays: Vec<u64> = (0..64)
            .filter_map(|seed| backoff_delay(&config, seed, 1))
            .collect();
        let first = delays[0];
        assert!(
            delays.iter().any(|&d| d != first),
            "jitter must depend on the seed"
        );
    }

    #[test]
    fn zero_jitter_is_exact() {
        let config = BackoffConfig {
            base_us: 100,
            factor: 2.0,
            max_us: 10_000,
            max_retries: 4,
            jitter: 0.0,
        };
        assert_eq!(backoff_delay(&config, 1, 0), Some(100));
        assert_eq!(backoff_delay(&config, 1, 1), Some(200));
        assert_eq!(backoff_delay(&config, 1, 3), Some(800));
    }

    #[test]
    fn breaker_trips_at_threshold_within_window() {
        let mut breaker = CircuitBreaker::new(QuarantineConfig {
            failure_window: 8,
            trip_threshold: 0.5,
            min_observations: 4,
            ..QuarantineConfig::default()
        });
        breaker.record_failure(0);
        breaker.record_failure(1);
        breaker.record_failure(2);
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "below min_observations"
        );
        breaker.record_failure(3);
        assert_eq!(breaker.state(), BreakerState::Open { since_tick: 3 });
        assert!(breaker.is_quarantined());
    }

    #[test]
    fn mixed_outcomes_below_threshold_stay_closed() {
        let mut breaker = CircuitBreaker::new(QuarantineConfig::default());
        for tick in 0..32 {
            if tick % 4 == 0 {
                breaker.record_failure(tick);
            } else {
                breaker.record_success(tick);
            }
            assert_eq!(breaker.state(), BreakerState::Closed, "tick {tick}");
        }
        assert!((breaker.failure_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quarantine_probes_periodically_and_recovers() {
        let config = QuarantineConfig {
            failure_window: 4,
            trip_threshold: 0.5,
            min_observations: 2,
            probe_interval: 3,
            recovery_successes: 2,
            ..QuarantineConfig::default()
        };
        let mut breaker = CircuitBreaker::new(config);
        breaker.record_failure(10);
        breaker.record_failure(11);
        assert_eq!(breaker.state(), BreakerState::Open { since_tick: 11 });
        // Skipped ticks until the probe interval elapses.
        assert!(!breaker.should_attempt(12));
        assert!(!breaker.should_attempt(13));
        assert!(breaker.should_attempt(14), "11 + 3 is a probe tick");
        breaker.record_success(14);
        assert_eq!(breaker.state(), BreakerState::HalfOpen { successes: 1 });
        assert!(breaker.should_attempt(15), "half-open probes every tick");
        breaker.record_success(15);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.failure_rate(), 0.0, "window cleared on close");
    }

    #[test]
    fn failed_recovery_probe_reopens() {
        let config = QuarantineConfig {
            failure_window: 4,
            trip_threshold: 0.5,
            min_observations: 2,
            probe_interval: 2,
            recovery_successes: 2,
            ..QuarantineConfig::default()
        };
        let mut breaker = CircuitBreaker::new(config);
        breaker.record_failure(0);
        breaker.record_failure(1);
        breaker.record_success(3);
        assert_eq!(breaker.state(), BreakerState::HalfOpen { successes: 1 });
        breaker.record_failure(4);
        assert_eq!(breaker.state(), BreakerState::Open { since_tick: 4 });
    }

    #[test]
    fn breaker_serialization_roundtrips() {
        let config = QuarantineConfig::default();
        let mut breaker = CircuitBreaker::new(config);
        breaker.record_success(0);
        breaker.record_failure(1);
        breaker.record_failure(2);
        breaker.record_failure(3);
        breaker.record_failure(4);
        let text = breaker.serialize();
        let back = CircuitBreaker::deserialize(config, &text).unwrap();
        assert_eq!(back.state(), breaker.state());
        assert_eq!(back.failure_rate(), breaker.failure_rate());
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn suspicion_requires_sustained_breach_and_sustained_recovery() {
        let mut tracker = SuspicionTracker::new(SuspicionConfig {
            breach_ticks: 3,
            clear_ticks: 4,
        });
        assert_eq!(tracker.observe(true), None);
        assert_eq!(tracker.observe(true), None);
        // An in-budget tick resets the breach streak entirely.
        assert_eq!(tracker.observe(false), None);
        assert_eq!(tracker.observe(true), None);
        assert_eq!(tracker.observe(true), None);
        assert_eq!(tracker.observe(true), Some(SuspicionTransition::Suspected));
        assert!(tracker.suspected());
        // Symmetrically, a breach resets the recovery streak.
        for _ in 0..3 {
            assert_eq!(tracker.observe(false), None);
        }
        assert_eq!(tracker.observe(true), None);
        for _ in 0..3 {
            assert_eq!(tracker.observe(false), None);
        }
        assert_eq!(tracker.observe(false), Some(SuspicionTransition::Cleared));
        assert!(!tracker.suspected());
    }

    #[test]
    fn suspicion_zero_thresholds_are_clamped() {
        let mut tracker = SuspicionTracker::new(SuspicionConfig {
            breach_ticks: 0,
            clear_ticks: 0,
        });
        assert_eq!(tracker.config().breach_ticks, 1);
        assert_eq!(tracker.config().clear_ticks, 1);
        assert_eq!(tracker.observe(true), Some(SuspicionTransition::Suspected));
        assert_eq!(tracker.observe(false), Some(SuspicionTransition::Cleared));
    }

    /// Property: over seeded latency traces that *oscillate* around the
    /// budget (no run of equal verdicts ever reaches the configured streak
    /// length), the tracker never transitions at all — and over arbitrary
    /// random traces, every transition is backed by a full streak, so the
    /// transition count is bounded by the number of sustained runs.
    #[test]
    fn suspicion_does_not_flap_on_oscillating_latency_traces() {
        for seed in 0..64u64 {
            let config = SuspicionConfig {
                breach_ticks: 2 + (seed % 4) as u32,
                clear_ticks: 2 + (seed % 3) as u32,
            };
            let mut rng = SmallRng::seed_from_u64(mix_seed(0x5105_71C5, seed, 0));
            // Build a trace whose runs are all strictly shorter than the
            // relevant streak threshold: the tracker must stay silent.
            let mut trace = Vec::with_capacity(512);
            let mut over = false;
            while trace.len() < 512 {
                over = !over;
                let cap = if over {
                    config.breach_ticks
                } else {
                    config.clear_ticks
                };
                let run = 1 + rng.gen_range(0..cap.max(2) - 1) as usize;
                for _ in 0..run.min(cap as usize - 1) {
                    trace.push(over);
                }
            }
            let mut tracker = SuspicionTracker::new(config);
            for &v in &trace {
                assert_eq!(
                    tracker.observe(v),
                    None,
                    "seed {seed}: sub-threshold oscillation must not transition"
                );
            }
            assert!(!tracker.suspected(), "seed {seed}");

            // Arbitrary trace: transitions must strictly alternate
            // (suspected, cleared, suspected, ...) and each one must be
            // preceded by a full same-verdict streak.
            let random: Vec<bool> = (0..512).map(|_| rng.gen_bool(0.5)).collect();
            let mut tracker = SuspicionTracker::new(config);
            let mut last = None;
            for (i, &v) in random.iter().enumerate() {
                if let Some(t) = tracker.observe(v) {
                    assert_ne!(Some(t), last, "seed {seed}: transitions alternate");
                    let needed = match t {
                        SuspicionTransition::Suspected => config.breach_ticks as usize,
                        SuspicionTransition::Cleared => config.clear_ticks as usize,
                    };
                    assert!(i + 1 >= needed, "seed {seed}");
                    assert!(
                        random[i + 1 - needed..=i].iter().all(|&x| x == v),
                        "seed {seed}: transition at {i} lacks a full streak"
                    );
                    last = Some(t);
                }
            }
        }
    }

    #[test]
    fn breaker_deserialize_rejects_garbage() {
        let config = QuarantineConfig::default();
        for bad in [
            "",
            "closed;0",
            "weird;0;0;",
            "closed;0;0;012",
            "closed;x;0;",
        ] {
            assert!(
                CircuitBreaker::deserialize(config, bad).is_none(),
                "{bad:?}"
            );
        }
    }
}
