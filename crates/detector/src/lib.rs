//! # cchunter-detector
//!
//! The core contribution of *CC-Hunter: Uncovering Covert Timing Channels on
//! Shared Processor Hardware* (Chen & Venkataramani, MICRO 2014): detection
//! of covert timing channels from microarchitectural indicator-event trains.
//!
//! The crate is self-contained (it does not depend on the simulator); inputs
//! are plain event timestamps and context labels, so it can be driven by the
//! bundled `cchunter-sim` substrate, a trace file, or real hardware
//! counters.
//!
//! ## The two detection algorithms
//!
//! * [`burst`] — **recurrent burst pattern detection** for *combinational*
//!   shared hardware (wires and logic such as the memory bus and the integer
//!   divider). An event train is binned into windows of Δt (derived from the
//!   mean event rate, [`density`]), the event-density histogram is split at
//!   the *threshold density* into a non-burst and a burst distribution, and
//!   the burst distribution's likelihood ratio separates covert channels
//!   (≥ 0.9 in the paper's experiments) from benign programs (< 0.5).
//!   Recurrence over an observation window of up to 512 OS quanta is
//!   established by discretizing histograms into strings and k-means
//!   clustering them ([`cluster`]).
//! * [`autocorr`] — **oscillatory pattern detection** for *memory*
//!   structures (caches). Conflict misses are labeled with their ordered
//!   (replacer → victim) context pair ([`conflict`]), and the
//!   autocorrelogram of the resulting symbol series exposes the periodicity
//!   that covert cache channels cannot avoid (peak ≈ 0.85–0.95 at a lag
//!   close to the number of cache sets used for signaling).
//!
//! ## Hardware model
//!
//! [`auditor`] models the paper's CC-auditor datapath (count-down Δt
//! register, 16-bit accumulators, 128-entry histogram buffers, dual 128-byte
//! replacer/victim vector registers, an audit limit of two units), and
//! [`conflict`] implements both the ideal LRU-stack conflict-miss oracle and
//! the practical generation-bit + Bloom-filter tracker of Figure 9.
//! [`cost`] reproduces the Table I area/power/latency estimates.
//!
//! ## Quick example
//!
//! ```
//! use cchunter_detector::{EventTrain, burst::BurstDetector, density::DensityHistogram};
//!
//! // A bursty train: 30 events packed into every 4th window of 100 cycles.
//! let mut train = EventTrain::new();
//! for burst in 0..50u64 {
//!     for i in 0..30u64 {
//!         train.push(burst * 400 + i * 3, 1);
//!     }
//! }
//! let histogram = DensityHistogram::from_train(&train, 100, 0, 50 * 400);
//! let verdict = BurstDetector::default().analyze(&histogram);
//! assert!(verdict.has_burst_distribution);
//! assert!(verdict.likelihood_ratio > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod auditor;
pub mod autocorr;
pub mod batch;
pub mod bloom;
pub mod burst;
pub mod cluster;
pub mod conflict;
pub mod cost;
pub mod density;
pub mod events;
pub mod fault;
pub mod fft;
pub mod indicator;
pub mod ingest;
pub mod metrics;
pub mod mitigation;
pub mod online;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod shard;
pub mod span;
pub mod store;
pub mod supervisor;
pub mod trace;
pub mod window;

pub use auditor::{AuditorError, CcAuditor, HardwareUnit};
pub use autocorr::{autocorrelation, Autocorrelogram, OscillationVerdict};
pub use batch::{BatchPlanner, FftPlan};
pub use bloom::BloomFilter;
pub use burst::{BurstDetector, BurstVerdict};
pub use cluster::{ClusterConfig, PatternClusters, RecurrenceVerdict};
pub use conflict::{ConflictClass, GenerationTracker, IdealLruTracker, MissClassifier};
pub use cost::{CostEstimate, CostModel};
pub use density::{DeltaTPolicy, DensityHistogram, HISTOGRAM_BINS};
pub use events::{EventTrain, EventTrainArena, SymbolSeries, TrainView};
pub use fault::{
    FaultClass, FaultConfig, FaultInjector, StorageFaultClass, StorageFaultConfig,
    StorageFaultInjector,
};
pub use indicator::{
    indicator_by_name, score_sequences, score_sequences_in, standard_indicators, CcHunterIndicator,
    CusumIndicator, Indicator, SpectralIndicator, WindowObservation,
};
pub use ingest::{
    AdmissionConfig, AdmissionQueue, DrainedBatch, IngestConfig, IngestPipeline, IngestReport,
    IngestStats, RawEvent, SanitizeReport, Sanitizer, SanitizerConfig, SatAccumulator,
    SaturatingHistogram, ShedPolicy,
};
pub use metrics::{
    parse_prometheus, render_prometheus_merged, Counter, Family, Gauge, Histogram, LossyScrape,
    ParsedSample, Registry, SkippedLine,
};
pub use mitigation::{
    AdvisoryEnforcer, ApplyError, ContainmentState, MitigationConfig, MitigationEnforcer,
    MitigationLevel, MitigationPolicy, ResidualProbe, ResidualReading,
};
pub use online::{Harvest, OnlineContentionDetector, OnlineOscillationDetector, OnlineStatus};
pub use pipeline::{
    CcHunter, CcHunterConfig, Detection, PairAudit, PairEvidence, ResourceKind, Verdict,
};
pub use policy::{
    BackoffConfig, BreakerState, CircuitBreaker, QuarantineConfig, SuspicionConfig,
    SuspicionTracker, SuspicionTransition,
};
pub use report::SessionReport;
pub use shard::{
    pair_key, rendezvous_shard, shard_count_from_env, FleetPairStatus, FleetTickReport,
    LatencySloConfig, MigrationReport, ShardHealth, ShardStatus, ShardedFleet, ShardedFleetConfig,
    ShardedFleetStatus,
};
pub use span::{Span, TraceEvent, Tracer};
pub use store::{classify_io, CheckpointStore, DiskMedium, StorageFaultKind, StorageMedium};
pub use supervisor::{
    Durability, FleetStatus, IngestSnapshot, LatencySummary, MetricsSnapshot, PairInput, PairKind,
    PairSnapshot, ProbeFault, ProbeSource, RecoveredFleet, Supervisor, SupervisorConfig,
};
pub use trace::TraceError;

use std::fmt;

/// The unified error type of the detection stack.
///
/// Every fallible public API in this crate (and in the facade crate's audit
/// glue) reports failures through this enum, so a daemon embedding CC-Hunter
/// needs exactly one error path. Hardware-interface errors
/// ([`AuditorError`]) and trace/checkpoint parse errors ([`TraceError`])
/// chain through [`std::error::Error::source`].
#[derive(Debug)]
pub enum DetectorError {
    /// The CC-auditor programming/harvest interface refused the operation.
    Auditor(AuditorError),
    /// Trace or checkpoint I/O or parsing failed.
    Trace(TraceError),
    /// A configuration parameter is out of its valid domain.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// Harvested histogram data is structurally invalid (wrong bin count,
    /// zero Δt) and cannot be analyzed even in degraded mode.
    BadHarvest {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// An event train violated the ingest contract (time travel beyond the
    /// reorder tolerance, duplicate beyond the dedup budget, out-of-range
    /// context ID, zero-Δt burst past the configured limit) and the
    /// sanitizer rejected rather than repaired it.
    HostileTrain {
        /// Which invariant was violated and by how much.
        reason: String,
    },
    /// The requested hardware unit is not under audit in this session.
    NotAudited {
        /// Short unit label (e.g. "memory-bus").
        unit: &'static str,
    },
    /// A stored checkpoint failed CRC/framing validation (see
    /// [`store::CorruptCheckpoint`] for which entry, generation, and why).
    CorruptCheckpoint(Box<store::CorruptCheckpoint>),
    /// A storage operation failed persistently (bounded retries included),
    /// classified into the [`store::StorageFaultKind`] taxonomy with a
    /// retryability tag, so a supervisor can decide between retrying later
    /// and degrading durability without string-matching errnos.
    StorageFault {
        /// What went wrong, independent of platform errno spelling.
        kind: store::StorageFaultKind,
        /// Whether retrying later is worthwhile (a full disk heals; a
        /// vanished one does not).
        retryable: bool,
        /// The storage operation that failed (kebab-case
        /// [`store::StorageMedium`] method name).
        op: &'static str,
        /// The path the operation targeted.
        path: std::path::PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A checkpoint store directory is already exclusively owned by
    /// another live handle (see [`CheckpointStore::open_exclusive`]):
    /// two fleets must never interleave generations in one store.
    StoreBusy {
        /// The contested store directory.
        dir: std::path::PathBuf,
        /// The owner currently holding the claim.
        owner: String,
    },
    /// A checkpoint parsed cleanly but describes state incompatible with
    /// the configuration it is being restored into (wrong kind, impossible
    /// capacity, out-of-range histogram bins, …).
    CheckpointMismatch {
        /// Human-readable description of the incompatibility.
        reason: String,
    },
    /// A supervised analysis panicked and was contained by its watchdog.
    AnalysisPanicked {
        /// What was being analyzed (e.g. the pair label).
        context: String,
        /// The panic payload, rendered.
        message: String,
    },
    /// A supervised analysis finished but blew its deadline budget.
    DeadlineExceeded {
        /// What was being analyzed (e.g. the pair label).
        context: String,
        /// The configured budget in microseconds.
        budget_us: u64,
        /// The observed elapsed time in microseconds.
        elapsed_us: u64,
    },
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::Auditor(e) => write!(f, "auditor error: {e}"),
            DetectorError::Trace(e) => write!(f, "trace error: {e}"),
            DetectorError::InvalidConfig { reason } => {
                write!(f, "invalid detector configuration: {reason}")
            }
            DetectorError::BadHarvest { reason } => write!(f, "bad harvest: {reason}"),
            DetectorError::HostileTrain { reason } => write!(f, "hostile event train: {reason}"),
            DetectorError::NotAudited { unit } => write!(f, "{unit} is not under audit"),
            DetectorError::CorruptCheckpoint(e) => write!(f, "{e}"),
            DetectorError::StorageFault {
                kind,
                retryable,
                op,
                path,
                message,
            } => write!(
                f,
                "storage fault ({kind}, {}) during {op} on {}: {message}",
                if *retryable {
                    "retryable"
                } else {
                    "not retryable"
                },
                path.display()
            ),
            DetectorError::StoreBusy { dir, owner } => write!(
                f,
                "checkpoint store {} is exclusively owned by {owner:?}",
                dir.display()
            ),
            DetectorError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint mismatch: {reason}")
            }
            DetectorError::AnalysisPanicked { context, message } => {
                write!(f, "analysis of {context} panicked: {message}")
            }
            DetectorError::DeadlineExceeded {
                context,
                budget_us,
                elapsed_us,
            } => write!(
                f,
                "analysis of {context} exceeded its {budget_us} µs deadline ({elapsed_us} µs)"
            ),
        }
    }
}

impl std::error::Error for DetectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectorError::Auditor(e) => Some(e),
            DetectorError::Trace(e) => Some(e),
            DetectorError::CorruptCheckpoint(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<AuditorError> for DetectorError {
    fn from(e: AuditorError) -> Self {
        DetectorError::Auditor(e)
    }
}

impl From<TraceError> for DetectorError {
    fn from(e: TraceError) -> Self {
        DetectorError::Trace(e)
    }
}

impl From<std::io::Error> for DetectorError {
    fn from(e: std::io::Error) -> Self {
        DetectorError::Trace(TraceError::Io(e))
    }
}
