//! Burst-pattern detection on event-density histograms (paper §IV-B,
//! steps 3–4).
//!
//! Scanning the histogram left to right, the *threshold density* is the
//! first bin that is smaller than its predecessor and no larger than its
//! successor (the valley between the non-burst distribution hugging bin 0
//! and the burst distribution in the right tail); if no such bin exists, the
//! bin where the slope of the fitted curve becomes gentle is used. The
//! *likelihood ratio* of the burst distribution — its sample count divided
//! by all samples excluding bin 0 — separates covert channels (≥ 0.9
//! empirically, even at 0.1 bps) from benign programs (< 0.5). CC-Hunter's
//! decision threshold is a conservative 0.5.

use crate::density::{DensityHistogram, HISTOGRAM_BINS};

/// Configuration for [`BurstDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstConfig {
    /// Likelihood ratios above this are considered for further (recurrence)
    /// analysis. The paper sets a conservative 0.5.
    pub likelihood_threshold: f64,
    /// Fallback knee detection: the slope is "gentle" once the bin-to-bin
    /// drop falls below this fraction of the largest drop.
    pub gentle_slope_fraction: f64,
    /// Minimum Δt windows in the burst distribution for it to count as a
    /// contention cluster at all — a handful of coincidental multi-event
    /// windows is not a burst pattern.
    pub min_burst_windows: u64,
    /// Fraction of the burst mass that must lie within the coherence
    /// window around the burst peak for the distribution to count as a
    /// *contention cluster*. Covert channels pile their burst windows at a
    /// characteristic density (≈ bin 20 for the bus, bins 84–105 for the
    /// divider); benign contention scatters thinly across densities.
    pub min_coherence: f64,
    /// Half-width of the coherence window, as a fraction of the peak bin
    /// (at least ±2 bins).
    pub coherence_width_fraction: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            likelihood_threshold: 0.5,
            gentle_slope_fraction: 0.05,
            min_burst_windows: 4,
            min_coherence: 0.45,
            coherence_width_fraction: 0.2,
        }
    }
}

/// Outcome of burst analysis on one density histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstVerdict {
    /// The Δt the histogram was built with (cycles).
    pub delta_t: u64,
    /// The threshold density separating the two distributions, if one was
    /// found.
    pub threshold_density: Option<usize>,
    /// Mean density of the non-burst distribution (bins left of the
    /// threshold, bin 0 included). Below 1.0 for genuine non-bursty periods.
    pub nonburst_mean: f64,
    /// Mean density of the burst distribution (bins at/right of the
    /// threshold). Above 1.0 when bursts are present.
    pub burst_mean: f64,
    /// Number of Δt windows in the burst distribution.
    pub burst_windows: u64,
    /// Number of Δt windows with any events at all (bin 0 excluded).
    pub contended_windows: u64,
    /// Likelihood ratio: `burst_windows / contended_windows` (bin 0
    /// omitted, per the paper).
    pub likelihood_ratio: f64,
    /// Fraction of the burst mass concentrated around the burst peak
    /// (1.0 = perfectly clustered).
    pub coherence: f64,
    /// Whether a significant burst distribution exists (threshold found,
    /// enough burst mass, mean density above 1.0, and a coherent cluster).
    pub has_burst_distribution: bool,
    /// Whether the likelihood ratio exceeds the configured decision
    /// threshold (0.5 by default): the histogram is "considered for further
    /// analysis" as a possible covert channel.
    pub significant: bool,
    /// Density bin with the highest frequency inside the burst
    /// distribution, if any (e.g. ≈ 20 for the paper's memory-bus channel,
    /// ≈ 96 for the divider channel).
    pub burst_peak: Option<usize>,
    /// First and last non-empty density bins of the burst distribution.
    pub burst_range: Option<(usize, usize)>,
}

impl BurstVerdict {
    fn quiet(delta_t: u64) -> Self {
        BurstVerdict {
            delta_t,
            threshold_density: None,
            nonburst_mean: 0.0,
            burst_mean: 0.0,
            burst_windows: 0,
            contended_windows: 0,
            likelihood_ratio: 0.0,
            coherence: 0.0,
            has_burst_distribution: false,
            significant: false,
            burst_peak: None,
            burst_range: None,
        }
    }
}

/// The recurrent-burst detector front end: locates the threshold density
/// and computes the burst distribution's likelihood ratio.
#[derive(Debug, Clone, Copy, Default)]
pub struct BurstDetector {
    config: BurstConfig,
}

impl BurstDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: BurstConfig) -> Self {
        BurstDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BurstConfig {
        &self.config
    }

    /// Analyzes one event-density histogram.
    pub fn analyze(&self, histogram: &DensityHistogram) -> BurstVerdict {
        let bins = histogram.bins();
        let contended = histogram.contended_windows();
        if contended == 0 {
            return BurstVerdict::quiet(histogram.delta_t());
        }
        let threshold = self
            .local_minimum_threshold(bins)
            .or_else(|| self.gentle_slope_threshold(bins));
        let Some(threshold) = threshold else {
            return BurstVerdict {
                contended_windows: contended,
                nonburst_mean: mean_density(bins, 0, HISTOGRAM_BINS),
                ..BurstVerdict::quiet(histogram.delta_t())
            };
        };

        // One fused pass over the bins computes everything the split
        // formulas used to re-scan for: burst mass and weighted sum, the
        // non-burst weighted sum, the peak (last-max-wins on ties, matching
        // `max_by_key`), and the first/last non-empty burst bins. All
        // accumulators are integers, so the fusion is exact.
        let mut pre_count = 0u64;
        let mut pre_weight = 0u64;
        let mut burst_windows = 0u64;
        let mut burst_weight = 0u64;
        let mut peak_freq = 0u64;
        let mut burst_peak = None;
        let mut first = None;
        let mut last = None;
        for (i, &f) in bins.iter().enumerate().skip(1) {
            if i < threshold {
                pre_count += f;
                pre_weight += i as u64 * f;
            } else if f > 0 {
                burst_windows += f;
                burst_weight += i as u64 * f;
                if first.is_none() {
                    first = Some(i);
                }
                last = Some(i);
                if f >= peak_freq {
                    peak_freq = f;
                    burst_peak = Some(i);
                }
            }
        }
        let nonburst_count = bins[0] + pre_count;
        let nonburst_mean = if nonburst_count == 0 {
            0.0
        } else {
            pre_weight as f64 / nonburst_count as f64
        };
        let burst_mean = if burst_windows == 0 {
            0.0
        } else {
            burst_weight as f64 / burst_windows as f64
        };
        let likelihood_ratio = burst_windows as f64 / contended as f64;
        let coherence = match burst_peak {
            Some(peak) if burst_windows > 0 => {
                let half_width =
                    ((peak as f64 * self.config.coherence_width_fraction).round() as usize).max(2);
                let lo = peak.saturating_sub(half_width).max(threshold);
                let hi = (peak + half_width).min(HISTOGRAM_BINS - 1);
                let near: u64 = bins[lo..=hi].iter().sum();
                near as f64 / burst_windows as f64
            }
            _ => 0.0,
        };
        let has_burst = burst_windows >= self.config.min_burst_windows
            && burst_mean > 1.0
            && coherence >= self.config.min_coherence;
        let burst_range = match (first, last) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        };
        BurstVerdict {
            delta_t: histogram.delta_t(),
            threshold_density: Some(threshold),
            nonburst_mean,
            burst_mean,
            burst_windows,
            contended_windows: contended,
            likelihood_ratio,
            coherence,
            has_burst_distribution: has_burst,
            significant: has_burst && likelihood_ratio > self.config.likelihood_threshold,
            burst_peak,
            burst_range,
        }
    }

    /// "From left to right in the histogram, threshold density is the first
    /// bin which is smaller than the preceding bin, and equal or smaller
    /// than the next bin."
    fn local_minimum_threshold(&self, bins: &[u64]) -> Option<usize> {
        (1..bins.len() - 1).find(|&i| bins[i] < bins[i - 1] && bins[i] <= bins[i + 1])
    }

    /// Fallback: "the bin at which the slope of the fitted curve becomes
    /// gentle". The curve is monotonically decreasing here (no local
    /// minimum exists), so the knee is the first bin whose drop from its
    /// predecessor falls below a fraction of the largest drop.
    fn gentle_slope_threshold(&self, bins: &[u64]) -> Option<usize> {
        let largest_drop = bins
            .windows(2)
            .map(|w| w[0].saturating_sub(w[1]))
            .max()
            .unwrap_or(0);
        if largest_drop == 0 {
            return None;
        }
        let gentle = (largest_drop as f64 * self.config.gentle_slope_fraction).ceil() as u64;
        for i in 1..bins.len() {
            let drop = bins[i - 1].saturating_sub(bins[i]);
            if drop <= gentle {
                return Some(i);
            }
        }
        None
    }
}

/// Frequency-weighted mean density of `bins[lo..hi]`.
fn mean_density(bins: &[u64], lo: usize, hi: usize) -> f64 {
    let (sum, count) = bins[lo..hi]
        .iter()
        .enumerate()
        .fold((0u64, 0u64), |(s, c), (i, &f)| {
            (s + (lo + i) as u64 * f, c + f)
        });
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityHistogram;

    fn histogram_from(pairs: &[(usize, u64)]) -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        for &(bin, freq) in pairs {
            bins[bin] = freq;
        }
        DensityHistogram::from_bins(bins, 100_000).expect("test bins are 128 long")
    }

    #[test]
    fn covert_channel_shape_yields_high_likelihood() {
        // Bus-channel-like: huge bin 0, light noise at 1–2, burst cluster
        // around density 20.
        let h = histogram_from(&[(0, 2400), (1, 12), (2, 3), (19, 40), (20, 160), (21, 30)]);
        let v = BurstDetector::default().analyze(&h);
        assert!(v.has_burst_distribution);
        assert!(v.significant);
        assert!(v.likelihood_ratio > 0.9, "lr = {}", v.likelihood_ratio);
        assert_eq!(v.burst_peak, Some(20));
        assert_eq!(v.burst_range, Some((19, 21)));
        assert!(v.nonburst_mean < 1.0);
        assert!(v.burst_mean > 1.0);
    }

    #[test]
    fn benign_decaying_shape_is_insignificant() {
        // Benign: monotonically decaying contention with no second mode.
        let h = histogram_from(&[(0, 2400), (1, 500), (2, 120), (3, 30), (4, 5)]);
        let v = BurstDetector::default().analyze(&h);
        // Threshold lands right after the decay; burst mass is tiny.
        assert!(v.likelihood_ratio < 0.5, "lr = {}", v.likelihood_ratio);
        assert!(!v.significant);
    }

    #[test]
    fn mailserver_like_second_mode_stays_below_half() {
        // Fig. 14d: a real second distribution between bins 5 and 8, but
        // the bulk of contended windows sits at densities 1–2 → LR < 0.5.
        let h = histogram_from(&[
            (0, 2300),
            (1, 600),
            (2, 250),
            (3, 40),
            (5, 60),
            (6, 90),
            (7, 70),
            (8, 30),
        ]);
        let v = BurstDetector::default().analyze(&h);
        assert!(v.has_burst_distribution);
        assert!(
            v.likelihood_ratio < 0.5,
            "benign bursty pair must stay below the decision threshold, lr = {}",
            v.likelihood_ratio
        );
        assert!(!v.significant);
    }

    #[test]
    fn quiet_histogram_yields_quiet_verdict() {
        let h = histogram_from(&[(0, 1000)]);
        let v = BurstDetector::default().analyze(&h);
        assert!(!v.has_burst_distribution);
        assert!(!v.significant);
        assert_eq!(v.likelihood_ratio, 0.0);
        assert_eq!(v.contended_windows, 0);
    }

    #[test]
    fn threshold_is_first_local_minimum() {
        let h = histogram_from(&[(0, 100), (1, 50), (2, 10), (3, 2), (4, 30), (5, 10)]);
        let v = BurstDetector::default().analyze(&h);
        assert_eq!(v.threshold_density, Some(3));
    }

    #[test]
    fn gentle_slope_fallback_when_monotone() {
        // Strictly decreasing: no local minimum; knee where drops flatten.
        let h = histogram_from(&[(0, 1000), (1, 400), (2, 100), (3, 96), (4, 93)]);
        let v = BurstDetector::default().analyze(&h);
        let t = v.threshold_density.expect("knee found");
        assert!(t >= 3, "knee after the steep region, got {t}");
    }

    #[test]
    fn pure_burst_channel_lr_approaches_one() {
        // Idealized channel with zero noise: everything contended is burst.
        let h = histogram_from(&[(0, 490_000), (96, 9_000), (97, 1_000)]);
        let v = BurstDetector::default().analyze(&h);
        assert!(v.likelihood_ratio > 0.999);
        assert_eq!(v.burst_peak, Some(96));
    }

    #[test]
    fn likelihood_ratio_omits_bin_zero() {
        let h = histogram_from(&[(0, 1_000_000), (10, 50)]);
        let v = BurstDetector::default().analyze(&h);
        assert_eq!(v.contended_windows, 50);
        assert!((v.likelihood_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_threshold_is_respected() {
        let h = histogram_from(&[(0, 100), (1, 40), (2, 5), (10, 50)]);
        let strict = BurstDetector::new(BurstConfig {
            likelihood_threshold: 0.99,
            ..BurstConfig::default()
        });
        let v = strict.analyze(&h);
        assert!(v.has_burst_distribution);
        assert!(
            !v.significant,
            "0.99 threshold not met by lr {}",
            v.likelihood_ratio
        );
    }
}
