//! The end-to-end CC-Hunter detection pipeline (paper §IV–§V).
//!
//! The software half of CC-Hunter runs as a background daemon: every OS
//! time quantum it harvests the CC-auditor's buffers and runs
//!
//! * the **recurrent-burst** path for combinational units: per-quantum
//!   density histogram → threshold-density split → likelihood ratio →
//!   pattern clustering across the observation window (≤ 512 quanta);
//! * the **oscillation** path for memory units: per-window conflict-miss
//!   symbol series → autocorrelogram → periodicity test. The window
//!   defaults to one quantum and can be divided further (the paper's
//!   Figure 11 shows fractional windows recover 0.1 bps channels).
//!
//! ## Parallel audit engine
//!
//! A deployment audits many principal pairs at once (every suspect
//! trojan/spy pairing on every shared unit). [`CcHunter::audit_pairs`] fans
//! the labeled per-pair evidence out across the process-wide thread pool,
//! and the per-quantum / per-window analyses inside a single audit use the
//! same pool when the work is large enough. All parallel paths go through
//! the vendored `threadpool::par_map`, whose output is bit-identical to the
//! serial loop for any thread count, so verdicts never depend on the host's
//! core count.

use crate::auditor::ConflictRecord;
use crate::autocorr::{OscillationConfig, OscillationDetector, OscillationVerdict};
use crate::burst::{BurstConfig, BurstDetector, BurstVerdict};
use crate::cluster::{analyze_recurrence, ClusterConfig, RecurrenceVerdict};
use crate::density::{DeltaTPolicy, DensityHistogram};
use crate::events::{pair_symbol, EventTrain, SymbolSeries};
use crate::metrics::{default_registry, Counter, Histogram, LATENCY_BUCKETS_US};
use crate::online::Harvest;
use crate::span;
use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

/// Minimum number of per-quantum histograms before the burst analysis fans
/// out to the thread pool; below this the per-item work is too cheap to
/// amortize job dispatch.
const PAR_MIN_HISTOGRAMS: usize = 64;

/// Batch audits run through [`CcHunter::audit_pairs`] /
/// [`CcHunter::try_audit_pairs`].
fn pipeline_batches_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_pipeline_batches_total",
            "Batch audits run through the parallel pipeline.",
        )
    })
}

/// Individual pair audits completed by the pipeline.
fn pipeline_audits_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_pipeline_audits_total",
            "Individual pair audits completed by the pipeline.",
        )
    })
}

/// Pipeline audits whose verdict was covert.
fn pipeline_covert_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        default_registry().counter(
            "cchunter_pipeline_covert_total",
            "Pipeline pair audits that reported a covert timing channel.",
        )
    })
}

/// Wall-clock latency of whole audit batches.
fn pipeline_batch_latency_us() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        default_registry().histogram(
            "cchunter_pipeline_batch_latency_us",
            "Wall-clock latency of whole pipeline audit batches, in microseconds.",
            &LATENCY_BUCKETS_US,
        )
    })
}

/// The two classes of shared hardware the paper distinguishes (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Logic and wires (memory bus, divider): covert channels appear as
    /// recurrent contention bursts.
    Combinational,
    /// Memory structures (caches): covert channels appear as oscillatory
    /// conflict-miss patterns.
    Memory,
}

/// CC-Hunter's final call for one audited resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Recurrent bursts / sustained oscillation found: a covert timing
    /// channel is likely operating on the resource.
    CovertTimingChannel,
    /// No covert-channel signature.
    Clean,
    /// Not enough trustworthy evidence to rule either way: the observed
    /// fraction of the window fell below the configured confidence floor
    /// (harvests missed, shed under a biased admission policy, or saturated
    /// beyond repair). An `Inconclusive` resource must not be treated as
    /// clean — the monitor is telling you it was blinded.
    Inconclusive,
}

impl Verdict {
    /// Whether this verdict reports a channel.
    pub fn is_covert(self) -> bool {
        matches!(self, Verdict::CovertTimingChannel)
    }

    /// Whether this verdict affirmatively clears the resource. `false` for
    /// both [`Verdict::CovertTimingChannel`] and [`Verdict::Inconclusive`]:
    /// a blinded monitor has not cleared anything.
    pub fn is_clean(self) -> bool {
        matches!(self, Verdict::Clean)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::CovertTimingChannel => f.write_str("COVERT TIMING CHANNEL"),
            Verdict::Clean => f.write_str("clean"),
            Verdict::Inconclusive => f.write_str("inconclusive"),
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcHunterConfig {
    /// OS time quantum in cycles (0.1 s = 250 M cycles at 2.5 GHz).
    pub quantum_cycles: u64,
    /// Δt selection for contention audits.
    pub delta_t: DeltaTPolicy,
    /// Burst-detection thresholds.
    pub burst: BurstConfig,
    /// Pattern-clustering (recurrence) parameters.
    pub cluster: ClusterConfig,
    /// Oscillation-detection thresholds.
    pub oscillation: OscillationConfig,
    /// Autocorrelogram depth in lags.
    pub max_lag: usize,
    /// Observation windows per quantum for the oscillation path (1 = full
    /// quantum; 2/4 = the paper's 0.5×/0.25× fine-grain analysis).
    pub windows_per_quantum: u32,
    /// Minimum number of oscillatory windows to report a cache channel.
    pub min_oscillatory_windows: usize,
    /// Confidence floor for affirmative `Clean` verdicts on the online
    /// path: when no covert signature is found but the observed fraction of
    /// the window is below this value, the online daemons report
    /// [`Verdict::Inconclusive`] instead of clearing the resource. Covert
    /// evidence is never downgraded. `0.0` disables the floor (the
    /// pre-hardening behaviour).
    pub min_confidence: f64,
}

impl Default for CcHunterConfig {
    fn default() -> Self {
        CcHunterConfig {
            quantum_cycles: 250_000_000,
            delta_t: DeltaTPolicy::Fixed(100_000),
            burst: BurstConfig::default(),
            cluster: ClusterConfig::default(),
            oscillation: OscillationConfig::default(),
            max_lag: 1000,
            windows_per_quantum: 1,
            min_oscillatory_windows: 2,
            min_confidence: 0.25,
        }
    }
}

/// Report of the recurrent-burst path over an observation window.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    /// Per-quantum density histograms (observed quanta only — missed
    /// harvests leave no histogram).
    pub histograms: Vec<DensityHistogram>,
    /// Per-quantum burst verdicts (parallel to `histograms`).
    pub quantum_verdicts: Vec<BurstVerdict>,
    /// Recurrence analysis over the whole window.
    pub recurrence: RecurrenceVerdict,
    /// Highest likelihood ratio among significant quanta.
    pub peak_likelihood_ratio: f64,
    /// Observed fraction of the analyzed window in `[0, 1]`: 1.0 when
    /// every quantum harvested completely, lower when harvests were missed
    /// or partial (see [`crate::online::Harvest`]).
    pub confidence: f64,
    /// Final call.
    pub verdict: Verdict,
}

impl ContentionReport {
    /// Number of quanta with a significant burst distribution.
    pub fn significant_quanta(&self) -> usize {
        self.quantum_verdicts
            .iter()
            .filter(|v| v.significant)
            .count()
    }
}

/// Report of the oscillation path over an observation window.
#[derive(Debug, Clone)]
pub struct OscillationReport {
    /// Per-window verdicts.
    pub window_verdicts: Vec<OscillationVerdict>,
    /// Strongest autocorrelation peak seen: `(lag, value)`.
    pub peak: Option<(usize, f64)>,
    /// Number of oscillatory windows.
    pub oscillatory_windows: usize,
    /// Final call.
    pub verdict: Verdict,
}

/// The CC-Hunter detection pipeline.
///
/// ```
/// use cchunter_detector::{CcHunter, CcHunterConfig, EventTrain};
/// use cchunter_detector::density::DeltaTPolicy;
///
/// let config = CcHunterConfig {
///     quantum_cycles: 10_000,
///     delta_t: DeltaTPolicy::Fixed(100),
///     ..CcHunterConfig::default()
/// };
/// let hunter = CcHunter::new(config);
///
/// // A trojan bursting 20 events per Δt for half of every quantum.
/// let mut train = EventTrain::new();
/// for q in 0..8u64 {
///     for w in 0..50u64 {
///         for e in 0..20u64 {
///             train.push(q * 10_000 + w * 100 + e * 5, 1);
///         }
///     }
/// }
/// let report = hunter.analyze_contention_train(&train, 0, 80_000);
/// assert!(report.verdict.is_covert());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CcHunter {
    config: CcHunterConfig,
}

impl Default for CcHunter {
    fn default() -> Self {
        CcHunter::new(CcHunterConfig::default())
    }
}

impl CcHunter {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: CcHunterConfig) -> Self {
        CcHunter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CcHunterConfig {
        &self.config
    }

    /// Runs the recurrent-burst path on pre-harvested per-quantum
    /// histograms (the daemon's normal mode, fed by the CC-auditor).
    pub fn analyze_contention(&self, histograms: Vec<DensityHistogram>) -> ContentionReport {
        self.analyze_contention_harvests(histograms.into_iter().map(Harvest::Complete).collect())
    }

    /// Runs the recurrent-burst path on per-quantum [`Harvest`]es, tolerating
    /// missed and partial quanta: recurrence is established over whatever
    /// was observed, and the report's `confidence` records the observed
    /// fraction of the window so degraded evidence is never mistaken for a
    /// fully observed `Clean`.
    pub fn analyze_contention_harvests(&self, harvests: Vec<Harvest>) -> ContentionReport {
        let window_len = harvests.len();
        let observed_weight: f64 = harvests.iter().map(Harvest::observed_weight).sum();
        let histograms: Vec<DensityHistogram> = harvests
            .into_iter()
            .filter_map(|h| match h {
                Harvest::Complete(h) | Harvest::Partial { histogram: h, .. } => Some(h),
                Harvest::Missed => None,
            })
            .collect();
        self.contention_report(window_len, observed_weight, histograms)
    }

    /// Borrowing variant of [`CcHunter::analyze_contention_harvests`]: the
    /// caller keeps its harvest buffer (the batch audit path reuses evidence
    /// across retries) and only the observed histograms are cloned into the
    /// report. The report is bit-identical to the owning variant.
    pub fn analyze_contention_slice(&self, harvests: &[Harvest]) -> ContentionReport {
        let window_len = harvests.len();
        let observed_weight: f64 = harvests.iter().map(Harvest::observed_weight).sum();
        let histograms: Vec<DensityHistogram> = harvests
            .iter()
            .filter_map(|h| h.histogram().cloned())
            .collect();
        self.contention_report(window_len, observed_weight, histograms)
    }

    fn contention_report(
        &self,
        window_len: usize,
        observed_weight: f64,
        histograms: Vec<DensityHistogram>,
    ) -> ContentionReport {
        let core = {
            let refs: Vec<&DensityHistogram> = histograms.iter().collect();
            self.contention_core(&refs)
        };
        ContentionReport {
            histograms,
            quantum_verdicts: core.quantum_verdicts,
            recurrence: core.recurrence,
            peak_likelihood_ratio: core.peak_likelihood_ratio,
            confidence: if window_len == 0 {
                0.0
            } else {
                observed_weight / window_len as f64
            },
            verdict: core.verdict,
        }
    }

    /// The analysis shared by every contention entry point, over *borrowed*
    /// histograms: the batch audit path analyzes evidence in place and never
    /// copies a histogram, while the report-building paths clone only what
    /// the caller keeps.
    fn contention_core(&self, histograms: &[&DensityHistogram]) -> ContentionCore {
        let detector = BurstDetector::new(self.config.burst);
        let quantum_verdicts: Vec<BurstVerdict> = if histograms.len() >= PAR_MIN_HISTOGRAMS {
            threadpool::par_map(histograms, |h| detector.analyze(h))
        } else {
            histograms.iter().map(|h| detector.analyze(h)).collect()
        };
        let recurrence = analyze_recurrence(histograms, &quantum_verdicts, &self.config.cluster);
        let peak_likelihood_ratio = quantum_verdicts
            .iter()
            .filter(|v| v.has_burst_distribution)
            .map(|v| v.likelihood_ratio)
            .fold(0.0, f64::max);
        let verdict = if recurrence.recurrent {
            Verdict::CovertTimingChannel
        } else {
            Verdict::Clean
        };
        ContentionCore {
            quantum_verdicts,
            recurrence,
            peak_likelihood_ratio,
            verdict,
        }
    }

    /// Convenience: slices an event train into quanta over `[start, end)`,
    /// builds the histograms, and runs the recurrent-burst path.
    pub fn analyze_contention_train(
        &self,
        train: &EventTrain,
        start: u64,
        end: u64,
    ) -> ContentionReport {
        let histograms = self.quantum_histograms(train, start, end);
        self.analyze_contention(histograms)
    }

    /// Builds per-quantum density histograms for a train over `[start,
    /// end)`, resolving Δt from the configured policy (falling back to one
    /// quantum when the rate-based policy sees no events).
    pub fn quantum_histograms(
        &self,
        train: &EventTrain,
        start: u64,
        end: u64,
    ) -> Vec<DensityHistogram> {
        let quantum = self.config.quantum_cycles;
        let delta_t = self
            .config
            .delta_t
            .resolve(train, start, end)
            .unwrap_or(quantum);
        let mut out = Vec::new();
        let mut lo = start;
        while lo < end {
            let hi = (lo + quantum).min(end);
            out.push(DensityHistogram::from_train(train, delta_t, lo, hi));
            lo = hi;
        }
        out
    }

    /// Runs the oscillation path on drained conflict records over
    /// `[start, end)` cycles.
    ///
    /// Records are windowed by time (quantum / `windows_per_quantum`), each
    /// window's cross-context conflicts become a symbol series, and each
    /// series is tested for sustained periodicity.
    pub fn analyze_oscillation(
        &self,
        records: &[ConflictRecord],
        start: u64,
        end: u64,
    ) -> OscillationReport {
        let window =
            (self.config.quantum_cycles / self.config.windows_per_quantum.max(1) as u64).max(1);
        let detector = OscillationDetector::new(self.config.oscillation);
        let mut bounds = Vec::new();
        let mut lo = start;
        while lo < end {
            let hi = (lo + window).min(end);
            bounds.push((lo, hi));
            lo = hi;
        }
        // Each window's autocorrelogram is independent — fan out; results
        // stay in window order.
        let window_verdicts: Vec<OscillationVerdict> = threadpool::par_map(&bounds, |&(lo, hi)| {
            let series = symbol_series(records, lo, hi);
            detector.analyze(&series, self.config.max_lag)
        });
        let oscillatory_windows = window_verdicts.iter().filter(|v| v.oscillatory).count();
        let peak = window_verdicts
            .iter()
            .filter_map(|v| v.peak)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let verdict = if oscillatory_windows >= self.config.min_oscillatory_windows {
            Verdict::CovertTimingChannel
        } else {
            Verdict::Clean
        };
        OscillationReport {
            window_verdicts,
            peak,
            oscillatory_windows,
            verdict,
        }
    }

    /// Runs the full analysis for one labeled pair's evidence.
    pub fn audit_pair(&self, audit: &PairAudit) -> Detection {
        let detection = match &audit.evidence {
            PairEvidence::Contention(harvests) => {
                // Analyze the evidence where it sits: no harvest clone, no
                // histogram copies — the detection summary is all this path
                // keeps. Identical verdict and evidence string to
                // `Detection::from_contention(analyze_contention_harvests(..))`.
                let histograms: Vec<&DensityHistogram> =
                    harvests.iter().filter_map(Harvest::histogram).collect();
                let core = self.contention_core(&histograms);
                Detection::from_core(audit.label.clone(), &core)
            }
            PairEvidence::Memory {
                records,
                start,
                end,
            } => {
                let report = self.analyze_oscillation(records, *start, *end);
                Detection::from_oscillation(audit.label.clone(), &report)
            }
        };
        pipeline_audits_total().inc();
        if detection.verdict.is_covert() {
            pipeline_covert_total().inc();
        }
        detection
    }

    /// Audits many principal pairs, fanning the per-pair analyses out
    /// across the process-wide thread pool.
    ///
    /// Detections are returned in input order and are bit-identical to a
    /// serial `audits.iter().map(|a| self.audit_pair(a))` loop for any
    /// thread count (including `CCHUNTER_THREADS=1`): each pair's analysis
    /// touches only its own evidence, and any nested parallelism inside a
    /// single audit degrades to its serial-equivalent path while the pool
    /// is busy with the outer fan-out.
    pub fn audit_pairs(&self, audits: &[PairAudit]) -> Vec<Detection> {
        let mut batch_span = span::global().span("pipeline", "audit-batch");
        let started = Instant::now();
        let detections = threadpool::par_map(audits, |audit| self.audit_pair(audit));
        record_batch(started);
        if span::global().is_enabled() {
            let covert = detections.iter().filter(|d| d.verdict.is_covert()).count();
            batch_span.detail(format_args!("{} pairs, {covert} covert", audits.len()));
        }
        detections
    }

    /// Panic-safe variant of [`CcHunter::audit_pairs`]: each pair's
    /// analysis runs under a watchdog, and a panicking audit (corrupt
    /// evidence tripping an internal invariant) is contained to its own
    /// slot as a typed [`crate::DetectorError::AnalysisPanicked`] instead
    /// of tearing the batch (or the daemon) down.
    ///
    /// Successful slots are bit-identical to [`CcHunter::audit_pairs`].
    pub fn try_audit_pairs(
        &self,
        audits: &[PairAudit],
    ) -> Vec<Result<Detection, crate::DetectorError>> {
        let mut batch_span = span::global().span("pipeline", "audit-batch");
        let started = Instant::now();
        let results: Vec<Result<Detection, crate::DetectorError>> =
            threadpool::par_catch_map(audits, |audit| self.audit_pair(audit))
                .into_iter()
                .zip(audits)
                .map(|(result, audit)| {
                    result.map_err(|panic| crate::DetectorError::AnalysisPanicked {
                        context: audit.label.clone(),
                        message: panic.message,
                    })
                })
                .collect();
        record_batch(started);
        if span::global().is_enabled() {
            let covert = results
                .iter()
                .filter(|r| r.as_ref().is_ok_and(|d| d.verdict.is_covert()))
                .count();
            let contained = results.iter().filter(|r| r.is_err()).count();
            batch_span.detail(format_args!(
                "{} pairs, {covert} covert, {contained} contained panics",
                audits.len()
            ));
        }
        results
    }
}

/// The histogram-independent outcome of one contention analysis — what the
/// audit path keeps after analyzing borrowed evidence.
struct ContentionCore {
    quantum_verdicts: Vec<BurstVerdict>,
    recurrence: RecurrenceVerdict,
    peak_likelihood_ratio: f64,
    verdict: Verdict,
}

/// Records one finished batch in the pipeline's batch counter and latency
/// histogram.
fn record_batch(started: Instant) {
    let elapsed_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    pipeline_batches_total().inc();
    pipeline_batch_latency_us().observe(elapsed_us as f64);
}

/// The evidence backing one entry of a multi-pair audit.
#[derive(Debug, Clone)]
pub enum PairEvidence {
    /// Per-quantum harvests from a combinational unit (recurrent-burst
    /// path).
    Contention(
        /// One harvest per OS quantum of the observation window.
        Vec<Harvest>,
    ),
    /// Drained conflict records from a memory unit (oscillation path).
    Memory {
        /// The pair's conflict-miss records.
        records: Vec<ConflictRecord>,
        /// Start of the observation interval in cycles (inclusive).
        start: u64,
        /// End of the observation interval in cycles (exclusive).
        end: u64,
    },
}

/// One job of a multi-pair audit: a labeled principal pair (or resource)
/// plus the evidence harvested for it.
#[derive(Debug, Clone)]
pub struct PairAudit {
    /// Pair label carried into the resulting [`Detection`] (e.g.
    /// `"memory-bus: pid 17 ↔ pid 23"`).
    pub label: String,
    /// The harvested evidence to analyze.
    pub evidence: PairEvidence,
}

/// Builds the cross-context conflict symbol series for records within
/// `[start, end)`. Same-context replacements (a thread conflicting with
/// itself) carry no inter-process signal and are filtered out, matching the
/// paper's trojan/spy pair identifiers.
pub fn symbol_series(records: &[ConflictRecord], start: u64, end: u64) -> SymbolSeries {
    records
        .iter()
        .filter(|r| r.cycle >= start && r.cycle < end && r.replacer != r.victim)
        .map(|r| pair_symbol(r.replacer, r.victim, 8))
        .collect()
}

/// A labeled detection outcome, convenient for experiment summaries.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Short resource label (e.g. "memory-bus").
    pub resource: String,
    /// Resource class.
    pub kind: ResourceKind,
    /// Final call.
    pub verdict: Verdict,
    /// One-line evidence summary.
    pub evidence: String,
}

impl Detection {
    /// Builds a detection summary from a contention report.
    pub fn from_contention(resource: impl Into<String>, report: &ContentionReport) -> Self {
        Detection {
            resource: resource.into(),
            kind: ResourceKind::Combinational,
            verdict: report.verdict,
            evidence: format!(
                "{} of {} quanta bursty (peak LR {:.3}), largest cluster {}",
                report.significant_quanta(),
                report.quantum_verdicts.len(),
                report.peak_likelihood_ratio,
                report.recurrence.largest_burst_cluster
            ),
        }
    }

    /// Builds a detection summary straight from a borrowed-evidence core —
    /// same fields and evidence string as [`Detection::from_contention`],
    /// minus the report (and its histogram copies) in the middle.
    fn from_core(resource: impl Into<String>, core: &ContentionCore) -> Self {
        Detection {
            resource: resource.into(),
            kind: ResourceKind::Combinational,
            verdict: core.verdict,
            evidence: format!(
                "{} of {} quanta bursty (peak LR {:.3}), largest cluster {}",
                core.quantum_verdicts
                    .iter()
                    .filter(|v| v.significant)
                    .count(),
                core.quantum_verdicts.len(),
                core.peak_likelihood_ratio,
                core.recurrence.largest_burst_cluster
            ),
        }
    }

    /// Builds a detection summary from an oscillation report.
    pub fn from_oscillation(resource: impl Into<String>, report: &OscillationReport) -> Self {
        let peak = report
            .peak
            .map(|(lag, value)| format!("peak r={value:.3} @ lag {lag}"))
            .unwrap_or_else(|| "no peak".to_string());
        Detection {
            resource: resource.into(),
            kind: ResourceKind::Memory,
            verdict: report.verdict,
            evidence: format!(
                "{} of {} windows oscillatory ({peak})",
                report.oscillatory_windows,
                report.window_verdicts.len()
            ),
        }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.resource, self.verdict, self.evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CcHunterConfig {
        CcHunterConfig {
            quantum_cycles: 100_000,
            delta_t: DeltaTPolicy::Fixed(1_000),
            ..CcHunterConfig::default()
        }
    }

    /// A covert-channel-like train: dense bursts in every quantum.
    fn covert_train(quanta: u64, quantum: u64) -> EventTrain {
        let mut train = EventTrain::new();
        for q in 0..quanta {
            // 20 bursts per quantum, each 25 events over ~1 Δt.
            for b in 0..20u64 {
                let base = q * quantum + b * 5_000;
                for e in 0..25u64 {
                    train.push(base + e * 40, 1);
                }
            }
        }
        train
    }

    /// A benign train: sparse, uniformly scattered single events.
    fn benign_train(quanta: u64, quantum: u64) -> EventTrain {
        let mut train = EventTrain::new();
        let mut x: u64 = 12345;
        let mut t = 0;
        while t < quanta * quantum {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += 2_000 + x % 3_000;
            if t < quanta * quantum {
                train.push(t, 1);
            }
        }
        train
    }

    #[test]
    fn contention_path_flags_covert_train() {
        let hunter = CcHunter::new(config());
        let train = covert_train(8, 100_000);
        let report = hunter.analyze_contention_train(&train, 0, 800_000);
        assert!(report.verdict.is_covert());
        assert!(report.peak_likelihood_ratio > 0.9);
        assert_eq!(report.significant_quanta(), 8);
        assert!(report.recurrence.recurrent);
        assert_eq!(report.confidence, 1.0, "fully observed window");
    }

    #[test]
    fn degraded_harvests_lower_confidence_not_verdict() {
        let hunter = CcHunter::new(config());
        let train = covert_train(8, 100_000);
        let harvests: Vec<Harvest> = hunter
            .quantum_histograms(&train, 0, 800_000)
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                if i % 4 == 3 {
                    Harvest::Missed
                } else {
                    Harvest::Complete(h)
                }
            })
            .collect();
        let report = hunter.analyze_contention_harvests(harvests);
        assert!(
            report.verdict.is_covert(),
            "recurrence survives 25% missed quanta"
        );
        assert!((report.confidence - 0.75).abs() < 1e-12);
        assert_eq!(report.histograms.len(), 6);
    }

    #[test]
    fn all_missed_harvests_are_zero_confidence() {
        let hunter = CcHunter::new(config());
        let report = hunter.analyze_contention_harvests(vec![Harvest::Missed; 4]);
        assert_eq!(report.verdict, Verdict::Clean);
        assert_eq!(report.confidence, 0.0, "a blind window proves nothing");
    }

    #[test]
    fn contention_path_clears_benign_train() {
        let hunter = CcHunter::new(config());
        let train = benign_train(8, 100_000);
        let report = hunter.analyze_contention_train(&train, 0, 800_000);
        assert_eq!(report.verdict, Verdict::Clean);
    }

    #[test]
    fn empty_train_is_clean() {
        let hunter = CcHunter::new(config());
        let report = hunter.analyze_contention_train(&EventTrain::new(), 0, 800_000);
        assert_eq!(report.verdict, Verdict::Clean);
        assert_eq!(report.histograms.len(), 8);
    }

    fn cache_records(bits: usize, sets_per_group: usize) -> Vec<ConflictRecord> {
        // Per bit: trojan (ctx 0) evicts the spy's lines (victim ctx 1),
        // then the spy probes (replacer 1, victim 0) — the paper's
        // steady-state [T→S × G][S→T × G] square wave.
        let mut records = Vec::new();
        let mut cycle = 0u64;
        for _ in 0..bits {
            for _ in 0..sets_per_group {
                records.push(ConflictRecord {
                    cycle,
                    replacer: 0,
                    victim: 1,
                });
                cycle += 50;
            }
            for _ in 0..sets_per_group {
                records.push(ConflictRecord {
                    cycle,
                    replacer: 1,
                    victim: 0,
                });
                cycle += 50;
            }
        }
        records
    }

    #[test]
    fn oscillation_path_flags_cache_channel() {
        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: 250_000,
            max_lag: 600,
            ..CcHunterConfig::default()
        });
        let records = cache_records(64, 128);
        let end = records.last().unwrap().cycle + 1;
        let report = hunter.analyze_oscillation(&records, 0, end);
        assert!(report.verdict.is_covert(), "{report:?}");
        let (lag, value) = report.peak.unwrap();
        assert!(
            (246..=266).contains(&lag),
            "peak near 256 (= 2 × sets per group), got {lag}"
        );
        assert!(value > 0.8);
    }

    #[test]
    fn oscillation_path_clears_random_conflicts() {
        let mut x: u64 = 777;
        let records: Vec<ConflictRecord> = (0..20_000u64)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ConflictRecord {
                    cycle: i * 500,
                    replacer: (x % 4) as u8,
                    victim: ((x >> 8) % 4) as u8,
                }
            })
            .collect();
        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: 2_500_000,
            ..CcHunterConfig::default()
        });
        let report = hunter.analyze_oscillation(&records, 0, 10_000_000);
        assert_eq!(report.verdict, Verdict::Clean, "{report:?}");
    }

    #[test]
    fn same_context_conflicts_are_filtered() {
        let records = vec![
            ConflictRecord {
                cycle: 1,
                replacer: 2,
                victim: 2,
            },
            ConflictRecord {
                cycle: 2,
                replacer: 2,
                victim: 3,
            },
        ];
        let series = symbol_series(&records, 0, 10);
        assert_eq!(series.len(), 1);
    }

    #[test]
    fn fractional_windows_slice_records() {
        let hunter = CcHunter::new(CcHunterConfig {
            quantum_cycles: 1_000_000,
            windows_per_quantum: 4,
            ..CcHunterConfig::default()
        });
        let records = cache_records(16, 64);
        let report = hunter.analyze_oscillation(&records, 0, 1_000_000);
        assert_eq!(report.window_verdicts.len(), 4);
    }

    #[test]
    fn audit_pairs_matches_serial_and_labels_detections() {
        let hunter = CcHunter::new(config());
        let covert: Vec<Harvest> = hunter
            .quantum_histograms(&covert_train(8, 100_000), 0, 800_000)
            .into_iter()
            .map(Harvest::Complete)
            .collect();
        let benign: Vec<Harvest> = hunter
            .quantum_histograms(&benign_train(8, 100_000), 0, 800_000)
            .into_iter()
            .map(Harvest::Complete)
            .collect();
        let records = cache_records(64, 128);
        let end = records.last().unwrap().cycle + 1;
        let audits = vec![
            PairAudit {
                label: "memory-bus: pid 17 <-> pid 23".to_string(),
                evidence: PairEvidence::Contention(covert),
            },
            PairAudit {
                label: "divider: pid 4 <-> pid 9".to_string(),
                evidence: PairEvidence::Contention(benign),
            },
            PairAudit {
                label: "l2-cache: pid 17 <-> pid 23".to_string(),
                evidence: PairEvidence::Memory {
                    records,
                    start: 0,
                    end,
                },
            },
        ];
        let parallel = hunter.audit_pairs(&audits);
        let serial: Vec<Detection> = audits.iter().map(|a| hunter.audit_pair(a)).collect();
        assert_eq!(parallel.len(), 3);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.resource, s.resource);
            assert_eq!(p.verdict, s.verdict);
            assert_eq!(p.evidence, s.evidence);
        }
        assert!(parallel[0].verdict.is_covert());
        assert_eq!(parallel[0].kind, ResourceKind::Combinational);
        assert_eq!(parallel[1].verdict, Verdict::Clean);
        assert!(parallel[2].verdict.is_covert());
        assert_eq!(parallel[2].kind, ResourceKind::Memory);
        assert!(parallel[0].resource.contains("memory-bus"));
    }

    #[test]
    fn try_audit_pairs_matches_audit_pairs_on_healthy_evidence() {
        let hunter = CcHunter::new(config());
        let covert: Vec<Harvest> = hunter
            .quantum_histograms(&covert_train(8, 100_000), 0, 800_000)
            .into_iter()
            .map(Harvest::Complete)
            .collect();
        let audits = vec![PairAudit {
            label: "memory-bus: pid 17 <-> pid 23".to_string(),
            evidence: PairEvidence::Contention(covert),
        }];
        let plain = hunter.audit_pairs(&audits);
        let caught = hunter.try_audit_pairs(&audits);
        assert_eq!(caught.len(), 1);
        let d = caught[0].as_ref().expect("healthy audit succeeds");
        assert_eq!(d.verdict, plain[0].verdict);
        assert_eq!(d.evidence, plain[0].evidence);
    }

    #[test]
    fn detection_summaries_render() {
        let hunter = CcHunter::new(config());
        let report = hunter.analyze_contention_train(&covert_train(4, 100_000), 0, 400_000);
        let d = Detection::from_contention("memory-bus", &report);
        assert!(d.verdict.is_covert());
        assert!(d.to_string().contains("memory-bus"));
        assert!(d.to_string().contains("COVERT"));
    }
}
