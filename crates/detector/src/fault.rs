//! Deterministic fault injection for degraded-harvest testing.
//!
//! A deployed CC-Hunter daemon does not see the pristine measurement
//! stream the batch experiments enjoy: quanta are missed when the daemon is
//! descheduled past a harvest deadline, histogram read-outs race the
//! hardware and come back truncated, 16-bit accumulators saturate under
//! bursty load (§V-A sizes them deliberately small), conflict records are
//! duplicated or reordered by the vector-register swap machinery, the
//! practical conflict tracker's Bloom filter aliases under pressure
//! (Figure 9), and the Δt clock itself jitters.
//!
//! [`FaultInjector`] reproduces each of those degradations *deterministically*
//! (seedable, per-class toggleable rates) so robustness tests can replay an
//! exact fault sequence. It sits between a harvest source (the
//! [`crate::auditor::CcAuditor`] or the simulator) and the online daemon,
//! turning clean histograms into [`Harvest`]es and clean conflict drains
//! into degraded ones.
//!
//! The same philosophy extends below the detector: [`StorageFaultInjector`]
//! is a [`StorageMedium`] that wraps the real disk (or any other medium)
//! and injects the *gray* storage failures a sick disk produces — ENOSPC,
//! EIO, failed fsyncs, silently torn writes, stalled writes — again
//! seedable and per-class toggleable, so checkpoint-durability chaos
//! drills replay exactly.

use crate::auditor::ConflictRecord;
use crate::density::{DensityHistogram, HISTOGRAM_BINS};
use crate::online::Harvest;
use crate::store::{DiskMedium, StorageMedium};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The individually toggleable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A quantum's harvest never arrives ([`Harvest::Missed`]).
    DroppedQuantum,
    /// A histogram read-out is cut short: a suffix of the bins is lost.
    TruncatedHistogram,
    /// The 16-bit accumulator tops out: windows above a saturation density
    /// collapse into that density's bin.
    AccumulatorSaturation,
    /// Adjacent conflict records swap places (vector-register swap races).
    OutOfOrderConflicts,
    /// Conflict records are delivered twice (re-drained register).
    DuplicatedConflicts,
    /// A burst of conflict records gets its replacer/victim contexts
    /// rewritten to one aliased pair (Bloom-filter aliasing, Figure 9).
    BloomAliasing,
    /// Timestamps (and the Δt grid they are binned on) jitter.
    ClockJitter,
}

impl FaultClass {
    /// Every fault class, in a fixed order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::DroppedQuantum,
        FaultClass::TruncatedHistogram,
        FaultClass::AccumulatorSaturation,
        FaultClass::OutOfOrderConflicts,
        FaultClass::DuplicatedConflicts,
        FaultClass::BloomAliasing,
        FaultClass::ClockJitter,
    ];

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL is exhaustive")
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultClass::DroppedQuantum => "dropped-quantum",
            FaultClass::TruncatedHistogram => "truncated-histogram",
            FaultClass::AccumulatorSaturation => "accumulator-saturation",
            FaultClass::OutOfOrderConflicts => "out-of-order-conflicts",
            FaultClass::DuplicatedConflicts => "duplicated-conflicts",
            FaultClass::BloomAliasing => "bloom-aliasing",
            FaultClass::ClockJitter => "clock-jitter",
        };
        f.write_str(name)
    }
}

/// Per-class fault rates. All rates are probabilities in `[0, 1]`;
/// quantum-scoped classes (drop, truncate, saturate, aliasing) are rolled
/// once per quantum, record-scoped classes (reorder, duplicate, jitter)
/// once per conflict record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a quantum's harvest is dropped entirely.
    pub dropped_quantum: f64,
    /// Probability a histogram read-out is truncated.
    pub truncated_histogram: f64,
    /// Probability a quantum suffers accumulator saturation.
    pub accumulator_saturation: f64,
    /// Per-record probability of swapping with its successor.
    pub out_of_order_conflicts: f64,
    /// Per-record probability of being delivered twice.
    pub duplicated_conflicts: f64,
    /// Probability a quantum suffers a Bloom-aliasing burst.
    pub bloom_aliasing: f64,
    /// Per-record (and per-harvest) probability of clock jitter.
    pub clock_jitter: f64,
    /// Maximum timestamp displacement applied by clock jitter, in cycles.
    pub jitter_cycles: u64,
}

impl Default for FaultConfig {
    /// Every class enabled at its default rate — the "hostile deployment"
    /// profile the acceptance tests run under.
    fn default() -> Self {
        FaultConfig {
            dropped_quantum: 0.1,
            truncated_histogram: 0.1,
            accumulator_saturation: 0.1,
            out_of_order_conflicts: 0.05,
            duplicated_conflicts: 0.05,
            bloom_aliasing: 0.1,
            clock_jitter: 0.1,
            jitter_cycles: 1_000,
        }
    }
}

impl FaultConfig {
    /// No faults at all (the injector becomes a pass-through).
    pub fn none() -> Self {
        FaultConfig {
            dropped_quantum: 0.0,
            truncated_histogram: 0.0,
            accumulator_saturation: 0.0,
            out_of_order_conflicts: 0.0,
            duplicated_conflicts: 0.0,
            bloom_aliasing: 0.0,
            clock_jitter: 0.0,
            jitter_cycles: 1_000,
        }
    }

    /// Exactly one class enabled, at its default rate.
    pub fn only(class: FaultClass) -> Self {
        let mut config = FaultConfig::none();
        config.set_rate(class, FaultConfig::default().rate(class));
        config
    }

    /// The configured rate for `class`.
    pub fn rate(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::DroppedQuantum => self.dropped_quantum,
            FaultClass::TruncatedHistogram => self.truncated_histogram,
            FaultClass::AccumulatorSaturation => self.accumulator_saturation,
            FaultClass::OutOfOrderConflicts => self.out_of_order_conflicts,
            FaultClass::DuplicatedConflicts => self.duplicated_conflicts,
            FaultClass::BloomAliasing => self.bloom_aliasing,
            FaultClass::ClockJitter => self.clock_jitter,
        }
    }

    /// Sets the rate for `class` (clamped to `[0, 1]`), builder-style.
    pub fn set_rate(&mut self, class: FaultClass, rate: f64) -> &mut Self {
        let rate = rate.clamp(0.0, 1.0);
        match class {
            FaultClass::DroppedQuantum => self.dropped_quantum = rate,
            FaultClass::TruncatedHistogram => self.truncated_histogram = rate,
            FaultClass::AccumulatorSaturation => self.accumulator_saturation = rate,
            FaultClass::OutOfOrderConflicts => self.out_of_order_conflicts = rate,
            FaultClass::DuplicatedConflicts => self.duplicated_conflicts = rate,
            FaultClass::BloomAliasing => self.bloom_aliasing = rate,
            FaultClass::ClockJitter => self.clock_jitter = rate,
        }
        self
    }

    /// With a different rate for `class`, consuming-builder style.
    pub fn with_rate(mut self, class: FaultClass, rate: f64) -> Self {
        self.set_rate(class, rate);
        self
    }
}

/// Deterministic, seedable fault injector.
///
/// ```
/// use cchunter_detector::density::{DensityHistogram, HISTOGRAM_BINS};
/// use cchunter_detector::fault::{FaultClass, FaultConfig, FaultInjector};
/// use cchunter_detector::online::Harvest;
///
/// let mut injector = FaultInjector::new(FaultConfig::only(FaultClass::DroppedQuantum), 42);
/// let mut dropped = 0;
/// for _ in 0..100 {
///     let clean = DensityHistogram::from_bins(vec![1; HISTOGRAM_BINS], 100_000).unwrap();
///     if matches!(injector.perturb_harvest(clean), Harvest::Missed) {
///         dropped += 1;
///     }
/// }
/// assert_eq!(dropped, injector.injected(FaultClass::DroppedQuantum));
/// assert!(dropped > 0, "default 10% drop rate fires within 100 quanta");
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SmallRng,
    injected: [u64; FaultClass::ALL.len()],
}

impl FaultInjector {
    /// Creates an injector replaying the fault sequence determined by
    /// `seed`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            config,
            rng: SmallRng::seed_from_u64(seed),
            injected: [0; FaultClass::ALL.len()],
        }
    }

    /// The active fault rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// How many faults of `class` have been injected so far.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.injected[class.index()]
    }

    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    fn roll(&mut self, class: FaultClass) -> bool {
        let rate = self.config.rate(class);
        if rate > 0.0 && self.rng.gen_bool(rate) {
            self.injected[class.index()] += 1;
            true
        } else {
            false
        }
    }

    /// Degrades one quantum's harvested histogram according to the
    /// configured rates, returning what the daemon would actually receive.
    ///
    /// The returned [`Harvest::Partial`] `lost_fraction` accounts the
    /// windows that were lost (truncation) or distorted (saturation,
    /// jitter) relative to the quantum's total, so downstream confidence
    /// reflects the injected damage.
    pub fn perturb_harvest(&mut self, histogram: DensityHistogram) -> Harvest {
        if self.roll(FaultClass::DroppedQuantum) {
            return Harvest::Missed;
        }
        let delta_t = histogram.delta_t();
        let total = histogram.total_windows();
        let mut bins = histogram.bins().to_vec();
        let mut damaged: u64 = 0;

        if self.roll(FaultClass::TruncatedHistogram) {
            // The read-out stops partway through the buffer: everything
            // past the cut is lost.
            let cut = self.rng.gen_range(1..HISTOGRAM_BINS);
            for f in &mut bins[cut..] {
                damaged += *f;
                *f = 0;
            }
        }
        if self.roll(FaultClass::AccumulatorSaturation) {
            // A 16-bit accumulator effectively caps the countable density:
            // windows denser than the cap all report the cap.
            let cap = self.rng.gen_range(4..HISTOGRAM_BINS - 1);
            let mut moved: u64 = 0;
            for f in &mut bins[cap + 1..] {
                moved += *f;
                *f = 0;
            }
            bins[cap] += moved;
            damaged += moved;
        }
        if self.roll(FaultClass::ClockJitter) {
            // Δt-grid jitter blurs window boundaries: part of each bin's
            // population straddles into the neighboring density.
            let mut displaced: u64 = 0;
            for bin in (1..HISTOGRAM_BINS).rev() {
                let shift = bins[bin] / 8;
                if shift > 0 {
                    bins[bin] -= shift;
                    bins[bin - 1] += shift;
                    displaced += shift;
                }
            }
            damaged += displaced;
        }

        // Invariant: bins was cloned from a valid histogram (128 entries,
        // Δt > 0) and only mutated element-wise.
        let degraded =
            DensityHistogram::from_bins(bins, delta_t).expect("perturbed bins keep their shape");
        if damaged == 0 {
            Harvest::Complete(degraded)
        } else {
            Harvest::Partial {
                histogram: degraded,
                lost_fraction: (damaged as f64 / total.max(1) as f64).min(1.0),
            }
        }
    }

    /// Degrades one quantum's drained conflict records, returning the
    /// records the daemon would actually receive and the fraction of them
    /// that were corrupted (for
    /// [`crate::online::OnlineOscillationDetector::push_quantum_degraded`]).
    pub fn perturb_conflicts(
        &mut self,
        records: Vec<ConflictRecord>,
    ) -> (Vec<ConflictRecord>, f64) {
        let mut out = records;
        let original = out.len();
        let mut corrupted: usize = 0;

        if self.roll(FaultClass::BloomAliasing) && !out.is_empty() {
            // An aliasing burst: a run of records all report the same
            // (false) replacer/victim pair.
            let start = self.rng.gen_range(0..out.len());
            let len = self.rng.gen_range(1..=32.min(out.len() - start));
            let replacer = self.rng.gen_range(0u8..8);
            let victim = self.rng.gen_range(0u8..8);
            for r in &mut out[start..start + len] {
                r.replacer = replacer;
                r.victim = victim;
            }
            corrupted += len;
        }
        // Per-record faults. Duplication first (a re-drained register
        // replays records in place), then jitter, then reordering.
        let mut duplicated = Vec::with_capacity(out.len());
        for r in out {
            duplicated.push(r);
            if self.roll(FaultClass::DuplicatedConflicts) {
                duplicated.push(r);
                corrupted += 1;
            }
        }
        let mut out = duplicated;
        for r in &mut out {
            if self.roll(FaultClass::ClockJitter) {
                let jitter = self.rng.gen_range(0..=self.config.jitter_cycles.max(1));
                r.cycle = if self.rng.gen_bool(0.5) {
                    r.cycle.saturating_add(jitter)
                } else {
                    r.cycle.saturating_sub(jitter)
                };
                corrupted += 1;
            }
        }
        let mut i = 0;
        while i + 1 < out.len() {
            if self.roll(FaultClass::OutOfOrderConflicts) {
                out.swap(i, i + 1);
                corrupted += 2;
                i += 2; // don't double-perturb the swapped-in record
            } else {
                i += 1;
            }
        }
        let lost_fraction = (corrupted as f64 / original.max(1) as f64).min(1.0);
        (out, lost_fraction)
    }
}

/// The individually toggleable storage fault classes a gray-failing disk
/// produces (injected by [`StorageFaultInjector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFaultClass {
    /// A write or rename fails with `ENOSPC` (the disk-brownout staple).
    NoSpace,
    /// A read fails with a medium error (`EIO`).
    ReadError,
    /// A write or rename fails with a medium error (`EIO`).
    WriteError,
    /// `sync_all` on a file or directory fails: the write may sit in the
    /// page cache but is not durable.
    SyncFailure,
    /// A write is silently torn: only a prefix of the bytes reaches the
    /// medium, and the call still reports success — the nastiest gray
    /// failure, detectable only by the CRC envelope at load time.
    TornWrite,
    /// A write fails with a timeout after stalling.
    StalledWrite,
}

impl StorageFaultClass {
    /// Every storage fault class, in a fixed order.
    pub const ALL: [StorageFaultClass; 6] = [
        StorageFaultClass::NoSpace,
        StorageFaultClass::ReadError,
        StorageFaultClass::WriteError,
        StorageFaultClass::SyncFailure,
        StorageFaultClass::TornWrite,
        StorageFaultClass::StalledWrite,
    ];

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL is exhaustive")
    }
}

impl fmt::Display for StorageFaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StorageFaultClass::NoSpace => "no-space",
            StorageFaultClass::ReadError => "read-error",
            StorageFaultClass::WriteError => "write-error",
            StorageFaultClass::SyncFailure => "sync-failure",
            StorageFaultClass::TornWrite => "torn-write",
            StorageFaultClass::StalledWrite => "stalled-write",
        };
        f.write_str(name)
    }
}

/// Per-class storage fault rates, all probabilities in `[0, 1]`, rolled
/// once per medium operation of the matching kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultConfig {
    /// Probability a write/rename fails with `ENOSPC`.
    pub no_space: f64,
    /// Probability a read fails with `EIO`.
    pub read_error: f64,
    /// Probability a write/rename fails with `EIO`.
    pub write_error: f64,
    /// Probability a file/directory fsync fails.
    pub sync_failure: f64,
    /// Probability a write is silently torn to a prefix.
    pub torn_write: f64,
    /// Probability a write fails with a timeout.
    pub stalled_write: f64,
}

impl Default for StorageFaultConfig {
    /// Every class enabled at a low rate — the "sick disk" profile.
    fn default() -> Self {
        StorageFaultConfig {
            no_space: 0.05,
            read_error: 0.05,
            write_error: 0.05,
            sync_failure: 0.05,
            torn_write: 0.05,
            stalled_write: 0.05,
        }
    }
}

impl StorageFaultConfig {
    /// No storage faults at all (the injector becomes a pass-through).
    pub fn none() -> Self {
        StorageFaultConfig {
            no_space: 0.0,
            read_error: 0.0,
            write_error: 0.0,
            sync_failure: 0.0,
            torn_write: 0.0,
            stalled_write: 0.0,
        }
    }

    /// Exactly one class enabled, at its default rate.
    pub fn only(class: StorageFaultClass) -> Self {
        let mut config = StorageFaultConfig::none();
        config.set_rate(class, StorageFaultConfig::default().rate(class));
        config
    }

    /// The configured rate for `class`.
    pub fn rate(&self, class: StorageFaultClass) -> f64 {
        match class {
            StorageFaultClass::NoSpace => self.no_space,
            StorageFaultClass::ReadError => self.read_error,
            StorageFaultClass::WriteError => self.write_error,
            StorageFaultClass::SyncFailure => self.sync_failure,
            StorageFaultClass::TornWrite => self.torn_write,
            StorageFaultClass::StalledWrite => self.stalled_write,
        }
    }

    /// Sets the rate for `class` (clamped to `[0, 1]`), builder-style.
    pub fn set_rate(&mut self, class: StorageFaultClass, rate: f64) -> &mut Self {
        let rate = rate.clamp(0.0, 1.0);
        match class {
            StorageFaultClass::NoSpace => self.no_space = rate,
            StorageFaultClass::ReadError => self.read_error = rate,
            StorageFaultClass::WriteError => self.write_error = rate,
            StorageFaultClass::SyncFailure => self.sync_failure = rate,
            StorageFaultClass::TornWrite => self.torn_write = rate,
            StorageFaultClass::StalledWrite => self.stalled_write = rate,
        }
        self
    }

    /// With a different rate for `class`, consuming-builder style.
    pub fn with_rate(mut self, class: StorageFaultClass, rate: f64) -> Self {
        self.set_rate(class, rate);
        self
    }
}

#[derive(Debug)]
struct StorageInjectorState {
    config: StorageFaultConfig,
    rng: SmallRng,
    injected: [u64; StorageFaultClass::ALL.len()],
}

impl StorageInjectorState {
    fn roll(&mut self, class: StorageFaultClass) -> bool {
        let rate = self.config.rate(class);
        if rate > 0.0 && self.rng.gen_bool(rate) {
            self.injected[class.index()] += 1;
            true
        } else {
            false
        }
    }
}

/// A deterministic, seedable [`StorageMedium`] that wraps another medium
/// (the real disk by default) and injects gray storage failures.
///
/// Clones share one RNG, config, and fault ledger, so a clone kept outside
/// a [`crate::store::CheckpointStore`] is a live *control handle*: flip
/// the rates mid-run ([`StorageFaultInjector::set_config`]) to script a
/// disk brownout and its healing, and read the ledger
/// ([`StorageFaultInjector::injected`]) to assert what was injected.
///
/// ```
/// use cchunter_detector::fault::{StorageFaultClass, StorageFaultConfig, StorageFaultInjector};
/// use cchunter_detector::store::CheckpointStore;
/// use cchunter_detector::DetectorError;
/// use std::sync::Arc;
///
/// let injector = StorageFaultInjector::new(
///     StorageFaultConfig::only(StorageFaultClass::NoSpace)
///         .with_rate(StorageFaultClass::NoSpace, 1.0),
///     7,
/// );
/// let dir = std::env::temp_dir().join(format!("cchunter-sfi-doc-{}", std::process::id()));
/// let store = CheckpointStore::open_with_medium(&dir, 2, Arc::new(injector.clone())).unwrap();
/// match store.save("pair-0", b"state") {
///     Err(DetectorError::StorageFault { retryable: true, .. }) => {}
///     other => panic!("expected a typed storage fault, got {other:?}"),
/// }
/// assert!(injector.total_injected() > 0, "every write rolled ENOSPC");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct StorageFaultInjector {
    inner: Arc<dyn StorageMedium>,
    state: Arc<Mutex<StorageInjectorState>>,
}

impl StorageFaultInjector {
    /// An injector over the real disk, replaying the fault sequence
    /// determined by `seed`.
    pub fn new(config: StorageFaultConfig, seed: u64) -> Self {
        Self::wrapping(Arc::new(DiskMedium), config, seed)
    }

    /// An injector over an arbitrary inner medium.
    pub fn wrapping(inner: Arc<dyn StorageMedium>, config: StorageFaultConfig, seed: u64) -> Self {
        StorageFaultInjector {
            inner,
            state: Arc::new(Mutex::new(StorageInjectorState {
                config,
                rng: SmallRng::seed_from_u64(seed),
                injected: [0; StorageFaultClass::ALL.len()],
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StorageInjectorState> {
        // The state is always structurally valid; a panicked holder's
        // poison is ignorable.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The active fault rates.
    pub fn config(&self) -> StorageFaultConfig {
        self.lock().config
    }

    /// Replaces the fault rates on every clone at once — the brownout /
    /// heal switch of the chaos drills.
    pub fn set_config(&self, config: StorageFaultConfig) {
        self.lock().config = config;
    }

    /// How many faults of `class` have been injected so far.
    pub fn injected(&self, class: StorageFaultClass) -> u64 {
        self.lock().injected[class.index()]
    }

    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.lock().injected.iter().sum()
    }
}

impl StorageMedium for StorageFaultInjector {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation stays clean: the drills target the steady
        // state (writes), not store construction.
        self.inner.create_dir_all(dir)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let torn_cut = {
            let mut state = self.lock();
            if state.roll(StorageFaultClass::NoSpace) {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "no space left on device (injected)",
                ));
            }
            if state.roll(StorageFaultClass::StalledWrite) {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "write stalled past its deadline (injected)",
                ));
            }
            if state.roll(StorageFaultClass::WriteError) {
                return Err(io::Error::other("I/O error on write (injected)"));
            }
            if state.roll(StorageFaultClass::TornWrite) && !bytes.is_empty() {
                Some(state.rng.gen_range(0..bytes.len()))
            } else {
                None
            }
        };
        match torn_cut {
            // The torn write *succeeds* from the caller's view — only a
            // prefix landed. The CRC envelope catches it at load time.
            Some(cut) => self.inner.write_file(path, &bytes[..cut]),
            None => self.inner.write_file(path, bytes),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if self.lock().roll(StorageFaultClass::SyncFailure) {
            return Err(io::Error::other("fsync failed (injected)"));
        }
        self.inner.sync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        {
            let mut state = self.lock();
            if state.roll(StorageFaultClass::NoSpace) {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "no space left on device (injected)",
                ));
            }
            if state.roll(StorageFaultClass::WriteError) {
                return Err(io::Error::other("I/O error on rename (injected)"));
            }
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.lock().roll(StorageFaultClass::ReadError) {
            return Err(io::Error::other("I/O error on read (injected)"));
        }
        self.inner.read_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list_dir(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.lock().roll(StorageFaultClass::SyncFailure) {
            return Err(io::Error::other("directory fsync failed (injected)"));
        }
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_histogram() -> DensityHistogram {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[20] = 100;
        bins[100] = 40;
        DensityHistogram::from_bins(bins, 100_000).unwrap()
    }

    fn records(n: u64) -> Vec<ConflictRecord> {
        (0..n)
            .map(|i| ConflictRecord {
                cycle: i * 100,
                replacer: (i % 2) as u8,
                victim: ((i + 1) % 2) as u8,
            })
            .collect()
    }

    #[test]
    fn no_faults_is_a_pass_through() {
        let mut injector = FaultInjector::new(FaultConfig::none(), 1);
        let h = clean_histogram();
        assert_eq!(injector.perturb_harvest(h.clone()), Harvest::Complete(h));
        let r = records(50);
        let (out, lost) = injector.perturb_conflicts(r.clone());
        assert_eq!(out, r);
        assert_eq!(lost, 0.0);
        assert_eq!(injector.total_injected(), 0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let mut injector = FaultInjector::new(FaultConfig::default(), 7);
            let harvests: Vec<Harvest> = (0..50)
                .map(|_| injector.perturb_harvest(clean_histogram()))
                .collect();
            let conflicts = injector.perturb_conflicts(records(200));
            (harvests, conflicts, injector.total_injected())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn truncation_yields_partial_with_lost_mass() {
        let mut injector = FaultInjector::new(
            FaultConfig::none().with_rate(FaultClass::TruncatedHistogram, 1.0),
            3,
        );
        let mut saw_partial = false;
        for _ in 0..20 {
            match injector.perturb_harvest(clean_histogram()) {
                Harvest::Partial {
                    histogram,
                    lost_fraction,
                } => {
                    saw_partial = true;
                    assert!(lost_fraction > 0.0 && lost_fraction <= 1.0);
                    assert!(histogram.total_windows() < clean_histogram().total_windows());
                }
                Harvest::Complete(_) => {
                    // The random cut can land past the last occupied bin,
                    // losing nothing — legitimately complete.
                }
                Harvest::Missed => panic!("truncation never drops the quantum"),
            }
        }
        assert!(saw_partial, "a cut below bin 100 must occur in 20 tries");
    }

    #[test]
    fn saturation_preserves_window_count() {
        let mut injector = FaultInjector::new(
            FaultConfig::none().with_rate(FaultClass::AccumulatorSaturation, 1.0),
            5,
        );
        let clean = clean_histogram();
        let total = clean.total_windows();
        match injector.perturb_harvest(clean) {
            Harvest::Partial { histogram, .. } => {
                assert_eq!(
                    histogram.total_windows(),
                    total,
                    "saturation distorts densities but loses no windows"
                );
            }
            Harvest::Complete(h) => assert_eq!(h.total_windows(), total),
            Harvest::Missed => panic!("saturation never drops the quantum"),
        }
    }

    #[test]
    fn duplication_only_grows_the_drain() {
        let mut injector = FaultInjector::new(
            FaultConfig::none().with_rate(FaultClass::DuplicatedConflicts, 0.5),
            9,
        );
        let (out, lost) = injector.perturb_conflicts(records(100));
        assert!(out.len() > 100);
        assert!(lost > 0.0);
        // Duplication preserves time order.
        assert!(out.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn aliasing_burst_rewrites_contexts_in_range() {
        let mut injector = FaultInjector::new(
            FaultConfig::none().with_rate(FaultClass::BloomAliasing, 1.0),
            11,
        );
        let (out, _) = injector.perturb_conflicts(records(100));
        assert_eq!(out.len(), 100, "aliasing neither adds nor removes records");
        assert!(out.iter().all(|r| r.replacer < 8 && r.victim < 8));
        assert_eq!(injector.injected(FaultClass::BloomAliasing), 1);
    }

    #[test]
    fn only_enables_exactly_one_class() {
        let config = FaultConfig::only(FaultClass::ClockJitter);
        for class in FaultClass::ALL {
            if class == FaultClass::ClockJitter {
                assert!(config.rate(class) > 0.0);
            } else {
                assert_eq!(config.rate(class), 0.0, "{class}");
            }
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "cchunter-sfi-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn storage_injector_passes_through_when_quiet() {
        let dir = temp_dir("quiet");
        let _ = std::fs::remove_dir_all(&dir);
        let injector = StorageFaultInjector::new(StorageFaultConfig::none(), 1);
        let store =
            crate::store::CheckpointStore::open_with_medium(&dir, 2, Arc::new(injector.clone()))
                .unwrap();
        store.save("p", b"hello").unwrap();
        assert_eq!(store.load_latest("p").unwrap().unwrap().payload, b"hello");
        assert_eq!(injector.total_injected(), 0);
        assert_eq!(store.write_retries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storage_injector_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let dir = temp_dir(&format!("det-{seed}"));
            let _ = std::fs::remove_dir_all(&dir);
            let injector = StorageFaultInjector::new(StorageFaultConfig::default(), seed);
            let store = crate::store::CheckpointStore::open_with_medium(
                &dir,
                2,
                Arc::new(injector.clone()),
            )
            .unwrap();
            let mut outcomes = Vec::new();
            for i in 0..40u8 {
                outcomes.push(store.save("p", &[i]).is_ok());
            }
            let ledger: Vec<u64> = StorageFaultClass::ALL
                .iter()
                .map(|&c| injector.injected(c))
                .collect();
            let _ = std::fs::remove_dir_all(&dir);
            (outcomes, ledger)
        };
        assert_eq!(run(13), run(13));
        assert_ne!(
            run(13).1,
            run(14).1,
            "different seeds take different fault sequences"
        );
    }

    #[test]
    fn enospc_brownout_fails_typed_and_heals() {
        let dir = temp_dir("brownout");
        let _ = std::fs::remove_dir_all(&dir);
        let injector = StorageFaultInjector::new(
            StorageFaultConfig::only(StorageFaultClass::NoSpace)
                .with_rate(StorageFaultClass::NoSpace, 1.0),
            3,
        );
        let store =
            crate::store::CheckpointStore::open_with_medium(&dir, 2, Arc::new(injector.clone()))
                .unwrap();
        match store.save("p", b"v0") {
            Err(crate::DetectorError::StorageFault {
                kind,
                retryable,
                op,
                ..
            }) => {
                assert_eq!(kind, crate::store::StorageFaultKind::NoSpace);
                assert!(retryable);
                assert_eq!(op, "write-file");
            }
            other => panic!("expected typed ENOSPC fault, got {other:?}"),
        }
        assert!(
            store.write_retries() > 0,
            "the bounded retry budget was spent first"
        );
        // The medium heals; durable writes resume on the same store.
        injector.set_config(StorageFaultConfig::none());
        store.save("p", b"v1").unwrap();
        assert_eq!(store.load_latest("p").unwrap().unwrap().payload, b"v1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_silent_but_rollback_recovers() {
        let dir = temp_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let injector = StorageFaultInjector::new(StorageFaultConfig::none(), 5);
        let store =
            crate::store::CheckpointStore::open_with_medium(&dir, 3, Arc::new(injector.clone()))
                .unwrap();
        store.save("p", b"durable generation").unwrap();
        injector.set_config(
            StorageFaultConfig::only(StorageFaultClass::TornWrite)
                .with_rate(StorageFaultClass::TornWrite, 1.0),
        );
        // The torn save *reports success* — that is the point.
        let torn_generation = store.save("p", b"torn generation").unwrap();
        injector.set_config(StorageFaultConfig::none());
        let loaded = store.load_latest("p").unwrap().unwrap();
        assert_eq!(loaded.payload, b"durable generation");
        assert_eq!(loaded.rolled_back, 1, "the torn newest was skipped");
        assert!(loaded.generation < torn_generation);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let dir = temp_dir("transient");
        let _ = std::fs::remove_dir_all(&dir);
        // 30% EIO: with 3 retries per step the save virtually always lands.
        let injector = StorageFaultInjector::new(
            StorageFaultConfig::only(StorageFaultClass::WriteError)
                .with_rate(StorageFaultClass::WriteError, 0.3),
            9,
        );
        let store =
            crate::store::CheckpointStore::open_with_medium(&dir, 2, Arc::new(injector.clone()))
                .unwrap();
        let mut ok = 0;
        for i in 0..30u8 {
            if store.save("p", &[i]).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 25, "retries absorb a 30% fault rate, got {ok}/30");
        assert!(store.write_retries() > 0);
        assert!(store.write_backoff_us() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
