//! Analytical area/power/latency model for the CC-auditor hardware
//! (paper Table I).
//!
//! The paper obtains its estimates from Cacti 5.3 at the technology node of
//! an Intel i7-class processor. Cacti is a closed companion tool, so this
//! module substitutes a small analytical model: per-bit area/power constants
//! for three structure classes (SRAM histogram buffers, latch-based
//! registers, and the Bloom-filter arrays of the conflict-miss detector)
//! plus logarithmic decoder latency terms, calibrated so the paper's exact
//! configuration reproduces Table I:
//!
//! | structure           | area (mm²) | power (mW) | latency (ns) |
//! |---------------------|-----------:|-----------:|-------------:|
//! | histogram buffers   | 0.0028     | 2.8        | 0.17         |
//! | registers           | 0.0011     | 0.8        | 0.17         |
//! | conflict detector   | 0.004      | 5.4        | 0.12         |
//!
//! The model exposes the same knobs Cacti would (entry counts, widths,
//! block counts), so sensitivity studies on differently sized caches or
//! buffers scale sensibly.

use std::fmt;

/// An area/power/latency estimate for one hardware structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Dynamic power in mW.
    pub power_mw: f64,
    /// Access latency in ns.
    pub latency_ns: f64,
}

impl fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} mm², {:.1} mW, {:.2} ns",
            self.area_mm2, self.power_mw, self.latency_ns
        )
    }
}

/// Per-bit constants of one structure class.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StructureClass {
    /// Area per bit in µm².
    area_per_bit_um2: f64,
    /// Dynamic power per bit in µW.
    power_per_bit_uw: f64,
    /// Fixed latency component in ns.
    latency_base_ns: f64,
    /// Latency per log₂(bits) in ns (decoder depth).
    latency_per_log2_ns: f64,
}

impl StructureClass {
    fn estimate(&self, bits: u64) -> CostEstimate {
        let bits_f = bits as f64;
        CostEstimate {
            area_mm2: bits_f * self.area_per_bit_um2 / 1e6,
            power_mw: bits_f * self.power_per_bit_uw / 1e3,
            latency_ns: self.latency_base_ns + self.latency_per_log2_ns * bits_f.log2(),
        }
    }
}

/// The CC-auditor cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    sram_buffer: StructureClass,
    register: StructureClass,
    bloom_array: StructureClass,
    /// Reference die area for overhead comparisons (Intel i7: 263 mm²).
    pub reference_die_mm2: f64,
    /// Reference peak power for overhead comparisons (Intel i7: 130 W).
    pub reference_power_w: f64,
}

impl Default for CostModel {
    /// Constants calibrated to reproduce Table I at the paper's sizing.
    fn default() -> Self {
        CostModel {
            sram_buffer: StructureClass {
                area_per_bit_um2: 0.6836,
                power_per_bit_uw: 0.6836,
                latency_base_ns: 0.086,
                latency_per_log2_ns: 0.007,
            },
            register: StructureClass {
                area_per_bit_um2: 0.5131,
                power_per_bit_uw: 0.3731,
                latency_base_ns: 0.17,
                latency_per_log2_ns: 0.0,
            },
            bloom_array: StructureClass {
                area_per_bit_um2: 0.2441,
                power_per_bit_uw: 0.3296,
                latency_base_ns: 0.064,
                latency_per_log2_ns: 0.004,
            },
            reference_die_mm2: 263.0,
            reference_power_w: 130.0,
        }
    }
}

impl CostModel {
    /// Cost of the histogram buffers: `count` buffers of `entries` ×
    /// `entry_bits`.
    pub fn histogram_buffers(&self, count: u64, entries: u64, entry_bits: u64) -> CostEstimate {
        self.sram_buffer.estimate(count * entries * entry_bits)
    }

    /// Cost of the auditor registers (vector registers + accumulators +
    /// count-down registers), given the total bit count.
    pub fn registers(&self, bits: u64) -> CostEstimate {
        self.register.estimate(bits)
    }

    /// Cost of the conflict-miss detector: four Bloom filters totaling
    /// `4 × total_blocks` bits (the per-block cache metadata bits are
    /// accounted separately in the cache array, see
    /// [`metadata_latency_overhead`](Self::metadata_latency_overhead)).
    pub fn conflict_detector(&self, total_blocks: u64) -> CostEstimate {
        self.bloom_array.estimate(4 * total_blocks)
    }

    /// The paper's exact CC-auditor configuration, as three named rows
    /// (Table I).
    pub fn table1(&self) -> Vec<(&'static str, CostEstimate)> {
        vec![
            (
                "Histogram Buffers",
                // Two 128-entry × 16-bit buffers.
                self.histogram_buffers(2, 128, 16),
            ),
            (
                "Registers",
                // Two 128-byte vector registers, two 16-bit accumulators,
                // two 4-byte count-down registers.
                self.registers(2 * 128 * 8 + 2 * 16 + 2 * 32),
            ),
            (
                "Conflict Miss Detector",
                // 4 three-hash Bloom filters, 4 × 4096 bits for the 256 KB
                // L2 (4096 blocks).
                self.conflict_detector(4096),
            ),
        ]
    }

    /// Total auditor cost (sum of the Table I rows).
    pub fn total(&self) -> CostEstimate {
        let rows = self.table1();
        CostEstimate {
            area_mm2: rows.iter().map(|(_, e)| e.area_mm2).sum(),
            power_mw: rows.iter().map(|(_, e)| e.power_mw).sum(),
            latency_ns: rows.iter().map(|(_, e)| e.latency_ns).fold(0.0, f64::max),
        }
    }

    /// Fraction of the reference die consumed by the auditor — the paper's
    /// "insignificant compared to the total chip area" claim.
    pub fn area_overhead_fraction(&self) -> f64 {
        self.total().area_mm2 / self.reference_die_mm2
    }

    /// Fraction of the reference peak power consumed by the auditor.
    pub fn power_overhead_fraction(&self) -> f64 {
        self.total().power_mw / (self.reference_power_w * 1e3)
    }

    /// Relative cache access latency increase from the extra per-block
    /// metadata bits (four generation bits plus a three-bit owner context):
    /// ≈ 1.5% in the paper. Modeled as the metadata bits' share of the tag
    /// array growth: `extra_bits / (tag_bits + state_bits)` damped by the
    /// tag array's share of access time.
    pub fn metadata_latency_overhead(
        &self,
        extra_bits_per_block: u64,
        tag_bits_per_block: u64,
    ) -> f64 {
        // Tag path is roughly 40% of cache access time; widening it by the
        // metadata fraction stretches the whole access proportionally.
        const TAG_PATH_SHARE: f64 = 0.4;
        let growth = extra_bits_per_block as f64 / tag_bits_per_block as f64;
        growth * TAG_PATH_SHARE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, rel_tol: f64) -> bool {
        (actual - expected).abs() <= expected.abs() * rel_tol
    }

    #[test]
    fn table1_matches_paper_values() {
        let model = CostModel::default();
        let rows = model.table1();
        let expect = [
            ("Histogram Buffers", 0.0028, 2.8, 0.17),
            ("Registers", 0.0011, 0.8, 0.17),
            ("Conflict Miss Detector", 0.004, 5.4, 0.12),
        ];
        for ((name, est), (ename, area, power, lat)) in rows.iter().zip(expect.iter()) {
            assert_eq!(name, ename);
            assert!(
                close(est.area_mm2, *area, 0.03),
                "{name} area {} vs {area}",
                est.area_mm2
            );
            assert!(
                close(est.power_mw, *power, 0.03),
                "{name} power {} vs {power}",
                est.power_mw
            );
            assert!(
                close(est.latency_ns, *lat, 0.03),
                "{name} latency {} vs {lat}",
                est.latency_ns
            );
        }
    }

    #[test]
    fn latencies_stay_below_3ghz_cycle() {
        // The paper: all auditor latencies are below the 0.33 ns clock
        // period of a 3 GHz processor.
        let model = CostModel::default();
        for (name, est) in model.table1() {
            assert!(est.latency_ns < 0.33, "{name}: {} ns", est.latency_ns);
        }
    }

    #[test]
    fn area_overhead_is_insignificant() {
        let model = CostModel::default();
        assert!(model.area_overhead_fraction() < 1e-4);
        assert!(model.power_overhead_fraction() < 1e-3);
    }

    #[test]
    fn metadata_overhead_near_paper_claim() {
        let model = CostModel::default();
        // 7 extra bits per block; ~24-bit tags plus ~2 state bits → wait,
        // the paper reports ≈1.5%.
        let overhead = model.metadata_latency_overhead(7, 186);
        assert!(
            (0.005..0.03).contains(&overhead),
            "metadata latency overhead {overhead} out of plausible band"
        );
    }

    #[test]
    fn costs_scale_with_size() {
        let model = CostModel::default();
        let small = model.conflict_detector(1024);
        let large = model.conflict_detector(8192);
        assert!(large.area_mm2 > small.area_mm2 * 7.9);
        assert!(large.latency_ns > small.latency_ns);
        let narrow = model.histogram_buffers(2, 128, 16);
        let wide = model.histogram_buffers(2, 128, 32);
        assert!(close(wide.area_mm2, narrow.area_mm2 * 2.0, 1e-9));
    }

    #[test]
    fn display_formats_all_fields() {
        let est = CostEstimate {
            area_mm2: 0.0028,
            power_mw: 2.8,
            latency_ns: 0.17,
        };
        let s = est.to_string();
        assert!(s.contains("mm²") && s.contains("mW") && s.contains("ns"));
    }
}
