//! Trace import/export: run the detector on event data from outside the
//! bundled simulator (hardware performance counters, other simulators,
//! packet captures of bus analyzers, …).
//!
//! Two plain-text formats, chosen for zero dependencies and `join`-ability
//! with standard Unix tooling:
//!
//! * **event trains** — CSV `cycle,weight` (header optional);
//! * **conflict records** — CSV `cycle,replacer,victim` (header optional).

use crate::auditor::ConflictRecord;
use crate::events::EventTrain;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::num::ParseIntError;

/// Errors produced when parsing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Events were not in nondecreasing time order.
    OutOfOrder {
        /// 1-based line number of the offending event.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            TraceError::OutOfOrder { line } => {
                write!(f, "trace events out of time order at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn parse_field(s: &str, line: usize, what: &str) -> Result<u64, TraceError> {
    s.trim()
        .parse()
        .map_err(|e: ParseIntError| TraceError::Parse {
            line,
            reason: format!("bad {what} {s:?}: {e}"),
        })
}

/// Reads an event train from CSV lines of `cycle[,weight]`.
///
/// Blank lines, `#` comments and a leading non-numeric header are skipped;
/// a missing weight defaults to 1.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failure, malformed fields, or time-order
/// violations.
///
/// ```
/// use cchunter_detector::trace::read_event_train;
/// let train = read_event_train("cycle,weight\n100,1\n250,3\n".as_bytes()).unwrap();
/// assert_eq!(train.total_events(), 4);
/// ```
pub fn read_event_train<R: Read>(reader: R) -> Result<EventTrain, TraceError> {
    let mut train = EventTrain::new();
    let mut last = 0u64;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        if line_no == 1 && text.chars().next().is_some_and(|c| !c.is_ascii_digit()) {
            continue; // header
        }
        let mut fields = text.split(',');
        let cycle = parse_field(fields.next().unwrap_or(""), line_no, "cycle")?;
        let weight = match fields.next() {
            Some(w) if !w.trim().is_empty() => parse_field(w, line_no, "weight")? as u32,
            _ => 1,
        };
        if cycle < last {
            return Err(TraceError::OutOfOrder { line: line_no });
        }
        last = cycle;
        train.push(cycle, weight);
    }
    Ok(train)
}

/// Writes an event train as `cycle,weight` CSV with a header.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_event_train<W: Write>(train: &EventTrain, mut writer: W) -> std::io::Result<()> {
    let mut out = String::with_capacity(train.len() * 12 + 16);
    out.push_str("cycle,weight\n");
    for (t, w) in train.iter() {
        let _ = writeln!(out, "{t},{w}");
    }
    writer.write_all(out.as_bytes())
}

/// Reads conflict records from CSV lines of `cycle,replacer,victim`.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failure, malformed fields, context ids
/// above 7, or time-order violations.
pub fn read_conflicts<R: Read>(reader: R) -> Result<Vec<ConflictRecord>, TraceError> {
    let mut records = Vec::new();
    let mut last = 0u64;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        if line_no == 1 && text.chars().next().is_some_and(|c| !c.is_ascii_digit()) {
            continue;
        }
        let mut fields = text.split(',');
        let cycle = parse_field(fields.next().unwrap_or(""), line_no, "cycle")?;
        let replacer = parse_field(fields.next().unwrap_or(""), line_no, "replacer")?;
        let victim = parse_field(fields.next().unwrap_or(""), line_no, "victim")?;
        if replacer > 7 || victim > 7 {
            return Err(TraceError::Parse {
                line: line_no,
                reason: "context ids are 3-bit (0..=7)".to_string(),
            });
        }
        if cycle < last {
            return Err(TraceError::OutOfOrder { line: line_no });
        }
        last = cycle;
        records.push(ConflictRecord {
            cycle,
            replacer: replacer as u8,
            victim: victim as u8,
        });
    }
    Ok(records)
}

/// Writes conflict records as `cycle,replacer,victim` CSV with a header.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_conflicts<W: Write>(records: &[ConflictRecord], mut writer: W) -> std::io::Result<()> {
    let mut out = String::with_capacity(records.len() * 14 + 24);
    out.push_str("cycle,replacer,victim\n");
    for r in records {
        let _ = writeln!(out, "{},{},{}", r.cycle, r.replacer, r.victim);
    }
    writer.write_all(out.as_bytes())
}

/// Magic first line of a daemon checkpoint file.
const CHECKPOINT_MAGIC: &str = "cchunter-checkpoint,v1";

/// One sliding-window slot in a daemon checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSlot {
    /// Observation weight of the quantum (1.0 complete, 0.0 missed).
    pub weight: f64,
    /// The quantum's harvested histogram as `(Δt, sparse non-zero bins)`,
    /// if one was observed (contention daemons).
    pub histogram: Option<(u64, Vec<(usize, u64)>)>,
    /// The quantum's oscillation outcome, if one was observed (oscillation
    /// daemons).
    pub oscillatory: Option<bool>,
}

/// A serialized online-daemon sliding window (see [`crate::online`]).
///
/// The format is the same plain-text CSV family as the event-train and
/// conflict traces:
///
/// ```text
/// cchunter-checkpoint,v1
/// kind,contention
/// capacity,512
/// slot,1,hist,100000,0:2400 20:100
/// slot,0.75,hist,100000,0:2380 20:80
/// slot,0,missed
/// end
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Daemon kind: `"contention"` or `"oscillation"`.
    pub kind: String,
    /// Sliding-window capacity in quanta.
    pub capacity: usize,
    /// Window contents, oldest first.
    pub slots: Vec<CheckpointSlot>,
}

/// Writes a daemon checkpoint in the plain-text format above.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_checkpoint<W: Write>(checkpoint: &Checkpoint, mut writer: W) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{CHECKPOINT_MAGIC}");
    let _ = writeln!(out, "kind,{}", checkpoint.kind);
    let _ = writeln!(out, "capacity,{}", checkpoint.capacity);
    for slot in &checkpoint.slots {
        if let Some((delta_t, bins)) = &slot.histogram {
            let pairs: Vec<String> = bins.iter().map(|(i, f)| format!("{i}:{f}")).collect();
            let _ = writeln!(
                out,
                "slot,{},hist,{delta_t},{}",
                slot.weight,
                pairs.join(" ")
            );
        } else if let Some(osc) = slot.oscillatory {
            let _ = writeln!(out, "slot,{},osc,{}", slot.weight, osc as u8);
        } else {
            let _ = writeln!(out, "slot,{},missed", slot.weight);
        }
    }
    let _ = writeln!(out, "end");
    writer.write_all(out.as_bytes())
}

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, TraceError> {
    s.trim().parse().map_err(|e| TraceError::Parse {
        line,
        reason: format!("bad {what} {s:?}: {e}"),
    })
}

/// Reads a daemon checkpoint written by [`write_checkpoint`].
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failure, a missing or wrong magic line,
/// or any malformed field.
pub fn read_checkpoint<R: Read>(reader: R) -> Result<Checkpoint, TraceError> {
    let mut kind: Option<String> = None;
    let mut capacity: Option<usize> = None;
    let mut slots = Vec::new();
    let mut saw_magic = false;
    let mut saw_end = false;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        if !saw_magic {
            if text != CHECKPOINT_MAGIC {
                return Err(TraceError::Parse {
                    line: line_no,
                    reason: format!("expected {CHECKPOINT_MAGIC:?} magic, got {text:?}"),
                });
            }
            saw_magic = true;
            continue;
        }
        if text == "end" {
            saw_end = true;
            break;
        }
        let (tag, rest) = text.split_once(',').unwrap_or((text, ""));
        match tag {
            "kind" => kind = Some(rest.trim().to_string()),
            "capacity" => {
                capacity = Some(parse_field(rest, line_no, "capacity")? as usize);
            }
            "slot" => {
                let mut fields = rest.splitn(2, ',');
                let weight = parse_f64(fields.next().unwrap_or(""), line_no, "weight")?;
                if !(0.0..=1.0).contains(&weight) {
                    return Err(TraceError::Parse {
                        line: line_no,
                        reason: format!("slot weight {weight} out of [0, 1]"),
                    });
                }
                let body = fields.next().unwrap_or("").trim();
                let slot = if body == "missed" {
                    CheckpointSlot {
                        weight,
                        histogram: None,
                        oscillatory: None,
                    }
                } else if let Some(osc) = body.strip_prefix("osc,") {
                    CheckpointSlot {
                        weight,
                        histogram: None,
                        oscillatory: Some(parse_field(osc, line_no, "oscillatory flag")? != 0),
                    }
                } else if let Some(hist) = body.strip_prefix("hist,") {
                    let (delta_t, pairs) =
                        hist.split_once(',').ok_or_else(|| TraceError::Parse {
                            line: line_no,
                            reason: "histogram slot needs Δt and bin pairs".to_string(),
                        })?;
                    let delta_t = parse_field(delta_t, line_no, "Δt")?;
                    let mut bins = Vec::new();
                    for pair in pairs.split_whitespace() {
                        let (i, f) = pair.split_once(':').ok_or_else(|| TraceError::Parse {
                            line: line_no,
                            reason: format!("bad bin pair {pair:?}"),
                        })?;
                        bins.push((
                            parse_field(i, line_no, "bin index")? as usize,
                            parse_field(f, line_no, "bin frequency")?,
                        ));
                    }
                    CheckpointSlot {
                        weight,
                        histogram: Some((delta_t, bins)),
                        oscillatory: None,
                    }
                } else {
                    return Err(TraceError::Parse {
                        line: line_no,
                        reason: format!("unknown slot body {body:?}"),
                    });
                };
                slots.push(slot);
            }
            other => {
                return Err(TraceError::Parse {
                    line: line_no,
                    reason: format!("unknown checkpoint line tag {other:?}"),
                });
            }
        }
    }
    if !saw_magic || !saw_end {
        return Err(TraceError::Parse {
            line: 0,
            reason: "truncated checkpoint (missing magic or end line)".to_string(),
        });
    }
    let kind = kind.ok_or_else(|| TraceError::Parse {
        line: 0,
        reason: "checkpoint has no kind line".to_string(),
    })?;
    let capacity = capacity.ok_or_else(|| TraceError::Parse {
        line: 0,
        reason: "checkpoint has no capacity line".to_string(),
    })?;
    Ok(Checkpoint {
        kind,
        capacity,
        slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_train_roundtrip() {
        let mut train = EventTrain::new();
        train.push(10, 1);
        train.push(25, 7);
        train.push(25, 2);
        let mut buf = Vec::new();
        write_event_train(&train, &mut buf).unwrap();
        let back = read_event_train(buf.as_slice()).unwrap();
        assert_eq!(back, train);
    }

    #[test]
    fn conflicts_roundtrip() {
        let records = vec![
            ConflictRecord {
                cycle: 5,
                replacer: 0,
                victim: 1,
            },
            ConflictRecord {
                cycle: 9,
                replacer: 1,
                victim: 0,
            },
        ];
        let mut buf = Vec::new();
        write_conflicts(&records, &mut buf).unwrap();
        let back = read_conflicts(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn header_comments_and_blanks_are_skipped() {
        let text = "cycle,weight\n# a comment\n\n100\n200,4\n";
        let train = read_event_train(text.as_bytes()).unwrap();
        assert_eq!(train.len(), 2);
        assert_eq!(train.total_events(), 5);
    }

    #[test]
    fn missing_weight_defaults_to_one() {
        let train = read_event_train("7\n9\n".as_bytes()).unwrap();
        assert_eq!(train.total_events(), 2);
    }

    #[test]
    fn malformed_field_is_reported_with_line() {
        let err = read_event_train("10\nbogus,1\n".as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn out_of_order_is_rejected() {
        let err = read_event_train("10\n5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { line: 2 }));
    }

    #[test]
    fn oversized_context_id_rejected() {
        let err = read_conflicts("1,8,0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn errors_display_reasonably() {
        let err = read_event_train("x\ny\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let cp = Checkpoint {
            kind: "contention".to_string(),
            capacity: 512,
            slots: vec![
                CheckpointSlot {
                    weight: 1.0,
                    histogram: Some((100_000, vec![(0, 2_400), (20, 100)])),
                    oscillatory: None,
                },
                CheckpointSlot {
                    weight: 0.75,
                    histogram: Some((100_000, vec![(0, 2_380)])),
                    oscillatory: None,
                },
                CheckpointSlot {
                    weight: 0.0,
                    histogram: None,
                    oscillatory: None,
                },
            ],
        };
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        assert_eq!(read_checkpoint(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn oscillation_checkpoint_roundtrip() {
        let cp = Checkpoint {
            kind: "oscillation".to_string(),
            capacity: 16,
            slots: vec![
                CheckpointSlot {
                    weight: 1.0,
                    histogram: None,
                    oscillatory: Some(true),
                },
                CheckpointSlot {
                    weight: 1.0,
                    histogram: None,
                    oscillatory: Some(false),
                },
            ],
        };
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        assert_eq!(read_checkpoint(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn checkpoint_without_magic_rejected() {
        let err = read_checkpoint("kind,contention\nend\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let text = "cchunter-checkpoint,v1\nkind,contention\ncapacity,8\n";
        let err = read_checkpoint(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn out_of_range_weight_rejected() {
        let text = "cchunter-checkpoint,v1\nkind,contention\ncapacity,8\nslot,1.5,missed\nend\n";
        let err = read_checkpoint(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 4, .. }));
    }
}
