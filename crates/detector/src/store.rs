//! Durable checkpoint store: crash-safe persistence for the online
//! daemons' sliding-window state.
//!
//! The plain-text checkpoints of [`crate::trace`] are human-inspectable but
//! fragile as *stored* state: a torn write, a truncated disk flush, or a
//! flipped bit silently yields a file that parses wrong — or not at all —
//! and an always-on auditor that loses its observation window to a bad
//! restart also loses the recurrence evidence it spent up to 512 quanta
//! accumulating. This module wraps any checkpoint payload in a durable
//! envelope:
//!
//! * **length-framed, CRC32-checksummed, versioned** binary frames
//!   ([`encode_frame`] / [`decode_frame`]) so corruption is *detected*
//!   rather than misparsed;
//! * **temp-file + atomic rename** writes ([`CheckpointStore::save`]) so a
//!   crash mid-write can never destroy the previous good state;
//! * **generational retention** — the last `keep` generations of every
//!   named entry are kept on disk, and [`CheckpointStore::load_latest`]
//!   automatically rolls back to the newest generation that still validates,
//!   reporting how many corrupt generations it skipped.
//!
//! Nothing in the recovery path panics: every failure is a typed
//! [`CorruptCheckpoint`] (chained through
//! [`DetectorError::CorruptCheckpoint`](crate::DetectorError)) or an I/O
//! error.
//!
//! ## Frame layout (version 2)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CCHKPT\r\n"
//! 8       4     format version, u32 LE (currently 2)
//! 12      8     payload length in bytes, u64 LE
//! 20      4     CRC32 (IEEE) of the payload, u32 LE
//! 24      n     payload (e.g. a crate::trace plain-text checkpoint)
//! ```
//!
//! Trailing bytes after the payload are rejected (a longer stale file
//! renamed over a shorter one would otherwise hide corruption), and the
//! declared length is bounded by [`MAX_PAYLOAD_BYTES`] so an absurd length
//! field cannot trigger an unbounded allocation.

use crate::policy::{backoff_delay, BackoffConfig};
use crate::DetectorError;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Magic prefix of every stored frame. The `\r\n` tail catches text-mode
/// line-ending translation the same way PNG's magic does.
pub const FRAME_MAGIC: [u8; 8] = *b"CCHKPT\r\n";

/// Current frame format version.
pub const FRAME_VERSION: u32 = 2;

/// Upper bound on a frame's declared payload length. A full 512-slot
/// contention checkpoint with dense histograms is well under 1 MiB; 64 MiB
/// leaves two orders of magnitude of headroom while keeping a corrupted
/// length field from allocating unboundedly.
pub const MAX_PAYLOAD_BYTES: u64 = 64 << 20;

const HEADER_BYTES: usize = 24;

/// How a stored checkpoint failed validation.
#[derive(Debug)]
pub enum CorruptKind {
    /// The file is shorter than a frame header.
    TruncatedHeader {
        /// Bytes actually present.
        found: usize,
    },
    /// The magic prefix does not match [`FRAME_MAGIC`].
    BadMagic,
    /// The frame carries an unsupported format version.
    BadVersion(u32),
    /// The declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    OversizedPayload(u64),
    /// The file's byte count disagrees with the declared payload length
    /// (truncated payload or trailing garbage).
    LengthMismatch {
        /// Payload bytes the header declared.
        declared: u64,
        /// Payload bytes actually present.
        found: u64,
    },
    /// The payload's CRC32 does not match the header.
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the payload as read.
        found: u32,
    },
    /// Every retained generation failed validation.
    AllGenerationsCorrupt {
        /// Generations that were tried, newest first.
        tried: Vec<u64>,
    },
    /// The store directory could not be read or written.
    Io(std::io::Error),
}

/// A corrupt (or unreadable) stored checkpoint, with enough context to
/// report which entry and generation failed and why. Chains through
/// [`std::error::Error::source`] when an underlying I/O error exists.
#[derive(Debug)]
pub struct CorruptCheckpoint {
    /// The store entry name, when the failure is tied to one.
    pub name: Option<String>,
    /// The generation that failed validation, when known.
    pub generation: Option<u64>,
    /// What failed.
    pub kind: CorruptKind,
}

impl CorruptCheckpoint {
    fn frame(kind: CorruptKind) -> Self {
        CorruptCheckpoint {
            name: None,
            generation: None,
            kind,
        }
    }

    fn locate(mut self, name: &str, generation: u64) -> Self {
        self.name = Some(name.to_string());
        self.generation = Some(generation);
        self
    }
}

impl fmt::Display for CorruptCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt checkpoint")?;
        if let Some(name) = &self.name {
            write!(f, " {name:?}")?;
        }
        if let Some(generation) = self.generation {
            write!(f, " generation {generation}")?;
        }
        match &self.kind {
            CorruptKind::TruncatedHeader { found } => {
                write!(f, ": truncated header ({found} of {HEADER_BYTES} bytes)")
            }
            CorruptKind::BadMagic => write!(f, ": bad magic"),
            CorruptKind::BadVersion(v) => {
                write!(
                    f,
                    ": unsupported format version {v} (expected {FRAME_VERSION})"
                )
            }
            CorruptKind::OversizedPayload(len) => {
                write!(
                    f,
                    ": declared payload of {len} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte bound"
                )
            }
            CorruptKind::LengthMismatch { declared, found } => {
                write!(f, ": declared {declared} payload bytes, found {found}")
            }
            CorruptKind::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    ": CRC32 mismatch (header {expected:#010x}, payload {found:#010x})"
                )
            }
            CorruptKind::AllGenerationsCorrupt { tried } => {
                write!(
                    f,
                    ": all retained generations failed validation ({tried:?})"
                )
            }
            CorruptKind::Io(e) => write!(f, ": i/o failure: {e}"),
        }
    }
}

impl std::error::Error for CorruptCheckpoint {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            CorruptKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CorruptCheckpoint> for DetectorError {
    fn from(e: CorruptCheckpoint) -> Self {
        DetectorError::CorruptCheckpoint(Box::new(e))
    }
}

/// The typed classification of a storage-layer failure: what actually went
/// wrong, independent of how the platform spelled it as an
/// [`io::ErrorKind`]. Carried (with a retryability tag) by
/// [`DetectorError::StorageFault`](crate::DetectorError), so callers can
/// distinguish a full disk from a vanished one without string-matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFaultKind {
    /// The medium is out of space (`ENOSPC` / quota exhaustion).
    /// Retryable: space is routinely reclaimed out from under a bounded
    /// retry loop (log rotation, prune, another tenant freeing blocks).
    NoSpace,
    /// A generic read/write failure (`EIO` and relatives). Retryable —
    /// transient controller hiccups are the canonical gray failure.
    Io,
    /// `sync_all` on a file or directory failed: bytes may sit in the page
    /// cache but are **not durable**. Retryable, but a success after a
    /// failed fsync must be treated as a fresh write, never as proof the
    /// earlier data landed.
    SyncFailed,
    /// A write finished short (torn): fewer bytes reached the medium than
    /// were submitted. Retryable — and even when a torn frame slips
    /// through silently, the CRC envelope catches it at load and rollback
    /// recovers the previous generation.
    TornWrite,
    /// The operation stalled past its deadline (timeouts, `EAGAIN`
    /// loops). Retryable.
    Stalled,
    /// The medium is gone: path missing, permission revoked, device
    /// unmounted. Not retryable — retrying cannot conjure the directory
    /// back; the caller must degrade durability instead.
    Unavailable,
}

impl StorageFaultKind {
    /// Stable kebab-case label (used in logs, traces, and metrics).
    pub fn name(self) -> &'static str {
        match self {
            StorageFaultKind::NoSpace => "no-space",
            StorageFaultKind::Io => "io",
            StorageFaultKind::SyncFailed => "sync-failed",
            StorageFaultKind::TornWrite => "torn-write",
            StorageFaultKind::Stalled => "stalled",
            StorageFaultKind::Unavailable => "unavailable",
        }
    }
}

impl fmt::Display for StorageFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps an [`io::Error`] raised by storage operation `op` (one of the
/// [`StorageMedium`] method names, kebab-case) onto the typed fault
/// taxonomy, returning the kind and whether a bounded retry is worthwhile.
///
/// Sync failures are classified by *operation*, not error kind: whatever
/// errno an fsync fails with, the meaning is "not durable yet".
pub fn classify_io(op: &'static str, e: &io::Error) -> (StorageFaultKind, bool) {
    use io::ErrorKind as K;
    if matches!(op, "sync-file" | "sync-dir") {
        return (StorageFaultKind::SyncFailed, true);
    }
    match e.kind() {
        K::StorageFull | K::QuotaExceeded => (StorageFaultKind::NoSpace, true),
        K::TimedOut | K::WouldBlock | K::Interrupted => (StorageFaultKind::Stalled, true),
        K::WriteZero | K::UnexpectedEof => (StorageFaultKind::TornWrite, true),
        K::NotFound | K::PermissionDenied => (StorageFaultKind::Unavailable, false),
        _ => (StorageFaultKind::Io, true),
    }
}

/// The narrow filesystem surface [`CheckpointStore`] performs all I/O
/// through.
///
/// Production uses [`DiskMedium`] (thin `std::fs` wrappers). Chaos drills
/// and tests substitute
/// [`StorageFaultInjector`](crate::fault::StorageFaultInjector) to inject
/// ENOSPC, EIO, failed fsyncs, torn writes, and stalls without touching a
/// real disk. The trait is object-safe on purpose: the store holds an
/// `Arc<dyn StorageMedium>` so a fleet can thread one injector handle
/// through every shard's store.
pub trait StorageMedium: fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (truncating) `path` and writes all of `bytes` into it.
    /// No durability is implied until [`StorageMedium::sync_file`].
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `path`'s contents to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Reads the full contents of `path`.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The file names (not full paths) of `dir`'s entries; non-UTF-8
    /// names are skipped.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Flushes `dir`'s entry table to stable storage. A no-op on
    /// platforms that cannot open directories as sync handles.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The real disk: direct `std::fs` pass-through, the default medium of
/// every store opened without an explicit one.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskMedium;

impl StorageMedium for DiskMedium {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        // fsync flushes the file, not the handle's userspace state, so a
        // fresh read-only handle is sufficient.
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }
}

/// Shared write-path retry bookkeeping (clones of a store observe one
/// running total, like the owner token).
#[derive(Debug, Default)]
struct RetryStats {
    retries: AtomicU64,
    backoff_us: AtomicU64,
}

/// CRC32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = !0;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Wraps `payload` in a version-2 frame (magic, version, length, CRC32).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame and returns its payload.
///
/// # Errors
///
/// Returns [`CorruptCheckpoint`] on a truncated header, wrong magic,
/// unsupported version, oversized or mismatched length, trailing bytes, or
/// a CRC32 mismatch. Never panics, and never allocates more than the
/// (bounded) declared payload length.
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<u8>, CorruptCheckpoint> {
    if bytes.len() < HEADER_BYTES {
        return Err(CorruptCheckpoint::frame(CorruptKind::TruncatedHeader {
            found: bytes.len(),
        }));
    }
    if bytes[..8] != FRAME_MAGIC {
        return Err(CorruptCheckpoint::frame(CorruptKind::BadMagic));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != FRAME_VERSION {
        return Err(CorruptCheckpoint::frame(CorruptKind::BadVersion(version)));
    }
    let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
    if declared > MAX_PAYLOAD_BYTES {
        return Err(CorruptCheckpoint::frame(CorruptKind::OversizedPayload(
            declared,
        )));
    }
    let expected_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4-byte slice"));
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() as u64 != declared {
        return Err(CorruptCheckpoint::frame(CorruptKind::LengthMismatch {
            declared,
            found: payload.len() as u64,
        }));
    }
    let found_crc = crc32(payload);
    if found_crc != expected_crc {
        return Err(CorruptCheckpoint::frame(CorruptKind::ChecksumMismatch {
            expected: expected_crc,
            found: found_crc,
        }));
    }
    Ok(payload.to_vec())
}

/// A checkpoint successfully loaded from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedCheckpoint {
    /// The generation the payload came from.
    pub generation: u64,
    /// Corrupt newer generations that were skipped to reach it. Zero means
    /// the newest generation validated; anything higher is a rollback the
    /// supervisor surfaces in its status.
    pub rolled_back: usize,
    /// The validated payload.
    pub payload: Vec<u8>,
}

/// A directory of named, generational, CRC-framed checkpoint files.
///
/// Every entry name maps to files `<name>.g<generation>.ckpt`; saves write a
/// temp file in the same directory and atomically rename it into place, then
/// prune generations beyond the retention count. Loads walk generations
/// newest-first and return the first one that validates.
///
/// ```
/// use cchunter_detector::store::CheckpointStore;
/// let dir = std::env::temp_dir().join(format!("cchunter-doc-{}", std::process::id()));
/// let store = CheckpointStore::open(&dir, 3).unwrap();
/// store.save("pair-0", b"state v1").unwrap();
/// store.save("pair-0", b"state v2").unwrap();
/// let loaded = store.load_latest("pair-0").unwrap().unwrap();
/// assert_eq!(loaded.payload, b"state v2");
/// assert_eq!(loaded.rolled_back, 0);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    /// The filesystem the store performs all I/O through: the real disk
    /// by default, a fault injector under chaos drills.
    medium: Arc<dyn StorageMedium>,
    /// Bounded retry policy for transient write-path faults. Delays are
    /// *virtual* — deterministic, recorded in [`RetryStats`], never slept.
    backoff: BackoffConfig,
    /// Seed for the retry jitter RNG (deterministic per store).
    seed: u64,
    retry_stats: Arc<RetryStats>,
    /// Exclusive-ownership token, held only by stores opened through
    /// [`CheckpointStore::open_exclusive`]. Clones share the token; the
    /// registration is released when the last clone drops.
    guard: Option<Arc<OwnerToken>>,
}

/// Process-wide registry of exclusively owned store directories, keyed by
/// canonicalized path. Guards the migration window: two shard supervisors
/// racing for the same pair store would interleave generations and corrupt
/// the rollback chain, so the second opener gets a typed refusal instead.
fn owner_registry() -> &'static Mutex<HashMap<PathBuf, String>> {
    static OWNERS: OnceLock<Mutex<HashMap<PathBuf, String>>> = OnceLock::new();
    OWNERS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_owner_registry() -> std::sync::MutexGuard<'static, HashMap<PathBuf, String>> {
    // Ownership bookkeeping must survive a panicked holder: the map itself
    // is always structurally valid, so poison is ignorable.
    owner_registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// RAII registration of one store directory's exclusive owner.
#[derive(Debug)]
struct OwnerToken {
    key: PathBuf,
    owner: String,
}

impl Drop for OwnerToken {
    fn drop(&mut self) {
        lock_owner_registry().remove(&self.key);
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`, retaining the
    /// last `keep` generations of every entry.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] if `keep` is zero and any
    /// I/O error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, DetectorError> {
        Self::open_with_medium(dir, keep, Arc::new(DiskMedium))
    }

    /// Like [`CheckpointStore::open`], but all I/O goes through `medium`
    /// instead of the real disk — the injection point for storage chaos
    /// drills ([`crate::fault::StorageFaultInjector`]).
    ///
    /// # Errors
    ///
    /// As for [`CheckpointStore::open`]; directory-creation failures are
    /// reported as typed [`DetectorError::StorageFault`]s.
    pub fn open_with_medium(
        dir: impl Into<PathBuf>,
        keep: usize,
        medium: Arc<dyn StorageMedium>,
    ) -> Result<Self, DetectorError> {
        if keep == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "checkpoint store must keep at least one generation".to_string(),
            });
        }
        let dir = dir.into();
        let store = CheckpointStore {
            dir,
            keep,
            medium,
            backoff: BackoffConfig::default(),
            seed: 0xD15C_FA17,
            retry_stats: Arc::new(RetryStats::default()),
            guard: None,
        };
        store.retried("create-dir", &store.dir, || {
            store.medium.create_dir_all(&store.dir)
        })?;
        Ok(store)
    }

    /// Like [`CheckpointStore::open`], but also registers `owner` as the
    /// directory's exclusive owner in a process-wide registry. While any
    /// clone of the returned store is alive, a second `open_exclusive` on
    /// the same directory (under any path spelling — keys are
    /// canonicalized) fails with [`DetectorError::StoreBusy`], so two
    /// shard supervisors can never interleave generations in one pair's
    /// store during a migration. Dropping the last clone releases the
    /// claim. Plain [`CheckpointStore::open`] stores are unguarded.
    ///
    /// # Errors
    ///
    /// As for [`CheckpointStore::open`], plus
    /// [`DetectorError::StoreBusy`] when the directory is already owned.
    pub fn open_exclusive(
        dir: impl Into<PathBuf>,
        keep: usize,
        owner: impl Into<String>,
    ) -> Result<Self, DetectorError> {
        Self::open_exclusive_with_medium(dir, keep, owner, Arc::new(DiskMedium))
    }

    /// [`CheckpointStore::open_exclusive`] with an explicit
    /// [`StorageMedium`] (see [`CheckpointStore::open_with_medium`]).
    ///
    /// # Errors
    ///
    /// As for [`CheckpointStore::open_exclusive`].
    pub fn open_exclusive_with_medium(
        dir: impl Into<PathBuf>,
        keep: usize,
        owner: impl Into<String>,
        medium: Arc<dyn StorageMedium>,
    ) -> Result<Self, DetectorError> {
        let mut store = Self::open_with_medium(dir, keep, medium)?;
        let owner = owner.into();
        // open() just created the directory, so canonicalize only fails on
        // exotic filesystems; the raw path is a safe (if weaker) key.
        let key = store
            .dir
            .canonicalize()
            .unwrap_or_else(|_| store.dir.clone());
        let mut owners = lock_owner_registry();
        if let Some(holder) = owners.get(&key) {
            return Err(DetectorError::StoreBusy {
                dir: store.dir.clone(),
                owner: holder.clone(),
            });
        }
        owners.insert(key.clone(), owner.clone());
        drop(owners);
        store.guard = Some(Arc::new(OwnerToken { key, owner }));
        Ok(store)
    }

    /// The exclusive owner registered for this store handle, if it was
    /// opened through [`CheckpointStore::open_exclusive`].
    pub fn owner(&self) -> Option<&str> {
        self.guard.as_deref().map(|g| g.owner.as_str())
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Generations retained per entry.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// The medium this store performs its I/O through.
    pub fn medium(&self) -> &Arc<dyn StorageMedium> {
        &self.medium
    }

    /// Replaces the write-path retry policy and jitter seed (builder
    /// style). Delays stay virtual: deterministic, recorded, never slept.
    #[must_use]
    pub fn with_write_backoff(mut self, backoff: BackoffConfig, seed: u64) -> Self {
        self.backoff = backoff;
        self.seed = seed;
        self
    }

    /// Transient write-path faults absorbed by retries so far, across all
    /// clones of this store.
    pub fn write_retries(&self) -> u64 {
        self.retry_stats.retries.load(Ordering::Relaxed)
    }

    /// Total virtual backoff (µs) those retries would have waited.
    pub fn write_backoff_us(&self) -> u64 {
        self.retry_stats.backoff_us.load(Ordering::Relaxed)
    }

    /// Runs `attempt_io` with the store's bounded seeded retry policy.
    /// Retryable faults ([`classify_io`]) are retried up to the backoff
    /// budget with deterministic *virtual* delays (recorded, not slept);
    /// non-retryable faults and exhausted budgets surface as
    /// [`DetectorError::StorageFault`].
    fn retried<T>(
        &self,
        op: &'static str,
        path: &Path,
        mut attempt_io: impl FnMut() -> io::Result<T>,
    ) -> Result<T, DetectorError> {
        let mut attempt: u32 = 0;
        loop {
            match attempt_io() {
                Ok(value) => return Ok(value),
                Err(e) => {
                    let (kind, retryable) = classify_io(op, &e);
                    if retryable {
                        if let Some(delay_us) = backoff_delay(&self.backoff, self.seed, attempt) {
                            self.retry_stats.retries.fetch_add(1, Ordering::Relaxed);
                            self.retry_stats
                                .backoff_us
                                .fetch_add(delay_us, Ordering::Relaxed);
                            attempt += 1;
                            continue;
                        }
                    }
                    return Err(DetectorError::StorageFault {
                        kind,
                        retryable,
                        op,
                        path: path.to_path_buf(),
                        message: e.to_string(),
                    });
                }
            }
        }
    }

    fn validate_name(name: &str) -> Result<(), DetectorError> {
        let ok = !name.is_empty()
            && name.len() <= 128
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if ok {
            Ok(())
        } else {
            Err(DetectorError::InvalidConfig {
                reason: format!(
                    "checkpoint entry name {name:?} must be 1..=128 chars of [A-Za-z0-9._-]"
                ),
            })
        }
    }

    fn path_for(&self, name: &str, generation: u64) -> PathBuf {
        self.dir.join(format!("{name}.g{generation:08}.ckpt"))
    }

    /// Every on-disk generation of `name`, ascending.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an invalid name and a
    /// typed [`DetectorError::StorageFault`] when the directory cannot be
    /// listed (after bounded retries).
    pub fn generations(&self, name: &str) -> Result<Vec<u64>, DetectorError> {
        Self::validate_name(name)?;
        let prefix = format!("{name}.g");
        let names = self.retried("list-dir", &self.dir, || self.medium.list_dir(&self.dir))?;
        let mut generations = Vec::new();
        for file_name in names {
            if let Some(rest) = file_name
                .strip_prefix(&prefix)
                .and_then(|r| r.strip_suffix(".ckpt"))
            {
                if let Ok(generation) = rest.parse::<u64>() {
                    generations.push(generation);
                }
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    /// Frames `payload` and durably writes it as the next generation of
    /// `name` (temp file in the same directory, flush, atomic rename,
    /// directory fsync), then prunes generations beyond the retention
    /// count. Returns the new generation number.
    ///
    /// ## Durability contract
    ///
    /// When `save` returns `Ok`, the generation survives power loss: the
    /// file *contents* were `fsync`ed before the rename made them
    /// reachable, and the *parent directory* is `fsync`ed after the rename
    /// so the new directory entry itself is on stable storage — on POSIX
    /// filesystems a rename is only durable once the containing directory
    /// has been synced. A crash at any point leaves either the previous
    /// generations untouched (plus at most a stale temp file) or the new
    /// generation fully present; never a torn or dangling entry.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for an invalid name and a
    /// typed, retryability-tagged [`DetectorError::StorageFault`] when the
    /// write path fails persistently (each step is retried with the
    /// store's bounded seeded backoff first). A failed save never disturbs
    /// the previously stored generations.
    pub fn save(&self, name: &str, payload: &[u8]) -> Result<u64, DetectorError> {
        Self::validate_name(name)?;
        let generation = self.generations(name)?.last().map_or(0, |g| g + 1);
        let tmp = self.dir.join(format!(".{name}.g{generation:08}.tmp"));
        let framed = encode_frame(payload);
        // Write then flush the temp file before the rename makes it
        // reachable; a crash (or persistent fault) between the two leaves
        // only a stale temp file. Each step retries transient faults
        // independently — re-running `write_file` is idempotent.
        if let Err(e) = self.retried("write-file", &tmp, || self.medium.write_file(&tmp, &framed)) {
            let _ = self.medium.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = self.retried("sync-file", &tmp, || self.medium.sync_file(&tmp)) {
            let _ = self.medium.remove_file(&tmp);
            return Err(e);
        }
        let target = self.path_for(name, generation);
        if let Err(e) = self.retried("rename", &target, || self.medium.rename(&tmp, &target)) {
            let _ = self.medium.remove_file(&tmp);
            return Err(e);
        }
        self.sync_dir()?;
        self.prune(name)?;
        Ok(generation)
    }

    /// Writes an unframed advisory sidecar file (e.g. `metrics.prom`) into
    /// the store directory through the same medium and retry policy as
    /// checkpoint frames. Sidecars are observability exhaust: no
    /// generations, no CRC envelope, no directory fsync.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::StorageFault`] on persistent failure.
    pub fn write_sidecar(&self, file_name: &str, bytes: &[u8]) -> Result<(), DetectorError> {
        let path = self.dir.join(file_name);
        self.retried("write-file", &path, || self.medium.write_file(&path, bytes))
    }

    /// Fsyncs the store directory so a just-renamed generation's directory
    /// entry is durable (see the contract on [`CheckpointStore::save`]).
    /// Windows cannot open directories as sync handles, so there the
    /// medium makes this a no-op and durability relies on the file-content
    /// sync alone.
    fn sync_dir(&self) -> Result<(), DetectorError> {
        self.retried("sync-dir", &self.dir, || self.medium.sync_dir(&self.dir))
    }

    fn prune(&self, name: &str) -> Result<(), DetectorError> {
        let generations = self.generations(name)?;
        if generations.len() > self.keep {
            for &generation in &generations[..generations.len() - self.keep] {
                // Best-effort: a prune race or permission hiccup must not
                // fail the save that triggered it.
                let _ = self.medium.remove_file(&self.path_for(name, generation));
            }
        }
        Ok(())
    }

    /// Loads the newest generation of `name` that validates, rolling back
    /// over corrupt newer generations. Returns `Ok(None)` when the entry
    /// has no generations at all (a cold start).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::CorruptCheckpoint`] when generations exist
    /// but none validates (the error lists every generation tried), and
    /// [`DetectorError::InvalidConfig`] for an invalid name. Never panics.
    pub fn load_latest(&self, name: &str) -> Result<Option<LoadedCheckpoint>, DetectorError> {
        Self::validate_name(name)?;
        let mut generations = self.generations(name)?;
        if generations.is_empty() {
            return Ok(None);
        }
        generations.reverse();
        for (skipped, &generation) in generations.iter().enumerate() {
            match self.load_generation(name, generation) {
                Ok(payload) => {
                    return Ok(Some(LoadedCheckpoint {
                        generation,
                        rolled_back: skipped,
                        payload,
                    }))
                }
                Err(_corrupt) => continue,
            }
        }
        Err(CorruptCheckpoint {
            name: Some(name.to_string()),
            generation: None,
            kind: CorruptKind::AllGenerationsCorrupt { tried: generations },
        }
        .into())
    }

    /// Loads and validates one specific generation of `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CorruptCheckpoint`] when the file is unreadable or fails
    /// frame validation.
    pub fn load_generation(
        &self,
        name: &str,
        generation: u64,
    ) -> Result<Vec<u8>, CorruptCheckpoint> {
        // No retry loop on the read side: generational rollback *is* the
        // recovery path for an unreadable generation.
        let bytes = self
            .medium
            .read_file(&self.path_for(name, generation))
            .map_err(|e| CorruptCheckpoint::frame(CorruptKind::Io(e)).locate(name, generation))?;
        decode_frame(&bytes).map_err(|e| e.locate(name, generation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "cchunter-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, keep).unwrap()
    }

    fn cleanup(store: &CheckpointStore) {
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips() {
        let payload = b"cchunter-checkpoint,v1\nkind,contention\ncapacity,8\nend\n";
        let framed = encode_frame(payload);
        assert_eq!(decode_frame(&framed).unwrap(), payload);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let payload = b"slot,1,missed";
        let framed = encode_frame(payload);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} must not validate"
                );
            }
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_detected() {
        let framed = encode_frame(b"some payload bytes");
        for cut in 0..framed.len() {
            assert!(decode_frame(&framed[..cut]).is_err(), "cut at {cut}");
        }
        let mut longer = framed.clone();
        longer.push(0);
        assert!(matches!(
            decode_frame(&longer).unwrap_err().kind,
            CorruptKind::LengthMismatch { .. }
        ));
    }

    #[test]
    fn absurd_length_is_bounded_not_allocated() {
        let mut framed = encode_frame(b"x");
        framed[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&framed).unwrap_err().kind,
            CorruptKind::OversizedPayload(_)
        ));
    }

    #[test]
    fn save_load_and_generations() {
        let store = temp_store("basic", 3);
        assert_eq!(store.load_latest("a").unwrap(), None);
        assert_eq!(store.save("a", b"v0").unwrap(), 0);
        assert_eq!(store.save("a", b"v1").unwrap(), 1);
        let loaded = store.load_latest("a").unwrap().unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.rolled_back, 0);
        assert_eq!(loaded.payload, b"v1");
        assert_eq!(store.generations("a").unwrap(), vec![0, 1]);
        cleanup(&store);
    }

    #[test]
    fn retention_prunes_old_generations() {
        let store = temp_store("prune", 2);
        for i in 0..5u8 {
            store.save("p", &[i]).unwrap();
        }
        assert_eq!(store.generations("p").unwrap(), vec![3, 4]);
        cleanup(&store);
    }

    #[test]
    fn corrupt_newest_generation_rolls_back() {
        let store = temp_store("rollback", 3);
        store.save("pair", b"good old state").unwrap();
        let newest = store.save("pair", b"good new state").unwrap();
        // Flip one payload bit of the newest generation on disk.
        let path = store.path_for("pair", newest);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&path, bytes).unwrap();

        let loaded = store.load_latest("pair").unwrap().unwrap();
        assert_eq!(loaded.generation, 0);
        assert_eq!(loaded.rolled_back, 1, "the corrupt newest was skipped");
        assert_eq!(loaded.payload, b"good old state");
        cleanup(&store);
    }

    #[test]
    fn truncated_newest_generation_rolls_back() {
        let store = temp_store("truncate", 3);
        store.save("pair", b"generation zero").unwrap();
        let newest = store.save("pair", b"generation one").unwrap();
        let path = store.path_for("pair", newest);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = store.load_latest("pair").unwrap().unwrap();
        assert_eq!(loaded.generation, 0);
        assert_eq!(loaded.rolled_back, 1);
        assert_eq!(loaded.payload, b"generation zero");
        cleanup(&store);
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let store = temp_store("allbad", 2);
        for payload in [b"a".as_slice(), b"bb"] {
            let generation = store.save("x", payload).unwrap();
            let path = store.path_for("x", generation);
            fs::write(&path, b"garbage").unwrap();
        }
        let err = store.load_latest("x").unwrap_err();
        let DetectorError::CorruptCheckpoint(corrupt) = &err else {
            panic!("wrong error: {err}");
        };
        assert!(matches!(
            corrupt.kind,
            CorruptKind::AllGenerationsCorrupt { .. }
        ));
        // The chain renders and sources sanely.
        assert!(err.to_string().contains("corrupt checkpoint"));
        cleanup(&store);
    }

    #[test]
    fn names_are_validated() {
        let store = temp_store("names", 1);
        assert!(store.save("../escape", b"x").is_err());
        assert!(store.save("", b"x").is_err());
        assert!(store.save("has space", b"x").is_err());
        assert!(store.save("pair-0_ok.v1", b"x").is_ok());
        cleanup(&store);
    }

    #[test]
    fn zero_retention_rejected() {
        let dir = std::env::temp_dir().join("cchunter-store-zero");
        assert!(matches!(
            CheckpointStore::open(dir, 0),
            Err(DetectorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn exclusive_open_refuses_second_owner() {
        let base = temp_store("excl-double", 2);
        let dir = base.dir().to_path_buf();
        let first = CheckpointStore::open_exclusive(&dir, 2, "shard-00").unwrap();
        assert_eq!(first.owner(), Some("shard-00"));
        match CheckpointStore::open_exclusive(&dir, 2, "shard-01") {
            Err(DetectorError::StoreBusy { owner, .. }) => assert_eq!(owner, "shard-00"),
            other => panic!("expected StoreBusy, got {other:?}"),
        }
        // Unguarded opens stay allowed (read-side tooling, tests).
        assert!(CheckpointStore::open(&dir, 2).is_ok());
        cleanup(&base);
    }

    #[test]
    fn exclusive_claim_released_on_last_drop() {
        let base = temp_store("excl-release", 2);
        let dir = base.dir().to_path_buf();
        let first = CheckpointStore::open_exclusive(&dir, 2, "migrator").unwrap();
        let clone = first.clone();
        drop(first);
        // A surviving clone still holds the claim.
        assert!(matches!(
            CheckpointStore::open_exclusive(&dir, 2, "thief"),
            Err(DetectorError::StoreBusy { .. })
        ));
        drop(clone);
        let reopened = CheckpointStore::open_exclusive(&dir, 2, "successor").unwrap();
        assert_eq!(reopened.owner(), Some("successor"));
        cleanup(&base);
    }
}
