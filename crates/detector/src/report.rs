//! Session reports: aggregate the per-resource detections of one audit
//! session into a single structured, renderable record — what the daemon
//! would hand to the administrator (or a SIEM) when it raises an alarm.

use crate::pipeline::{ContentionReport, Detection, OscillationReport, Verdict};
use std::fmt;

/// A complete audit-session report across all monitored resources.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    detections: Vec<Detection>,
    /// Cycles covered by the session.
    span: Option<(u64, u64)>,
    /// Clock frequency for second conversions (optional).
    clock_hz: Option<u64>,
}

impl SessionReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cycle span the session covered.
    pub fn with_span(mut self, start: u64, end: u64) -> Self {
        self.span = Some((start, end));
        self
    }

    /// Sets the clock frequency used for second conversions.
    pub fn with_clock(mut self, clock_hz: u64) -> Self {
        self.clock_hz = Some(clock_hz);
        self
    }

    /// Adds a contention-path result for `resource`.
    pub fn add_contention(&mut self, resource: impl Into<String>, report: &ContentionReport) {
        self.detections
            .push(Detection::from_contention(resource, report));
    }

    /// Adds an oscillation-path result for `resource`.
    pub fn add_oscillation(&mut self, resource: impl Into<String>, report: &OscillationReport) {
        self.detections
            .push(Detection::from_oscillation(resource, report));
    }

    /// All per-resource detections.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// The resources convicted of carrying a covert timing channel.
    pub fn convicted(&self) -> Vec<&Detection> {
        self.detections
            .iter()
            .filter(|d| d.verdict.is_covert())
            .collect()
    }

    /// The session's overall verdict: covert if *any* resource is.
    pub fn overall(&self) -> Verdict {
        if self.detections.iter().any(|d| d.verdict.is_covert()) {
            Verdict::CovertTimingChannel
        } else {
            Verdict::Clean
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CC-Hunter audit session report")?;
        if let Some((start, end)) = self.span {
            match self.clock_hz {
                Some(hz) if hz > 0 => writeln!(
                    f,
                    "  span: cycles {start}..{end} ({:.3} s)",
                    (end.saturating_sub(start)) as f64 / hz as f64
                )?,
                _ => writeln!(f, "  span: cycles {start}..{end}")?,
            }
        }
        if self.detections.is_empty() {
            writeln!(f, "  (no resources audited)")?;
        }
        for d in &self.detections {
            writeln!(f, "  {d}")?;
        }
        write!(f, "overall: {}", self.overall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{DensityHistogram, HISTOGRAM_BINS};
    use crate::pipeline::{CcHunter, CcHunterConfig};

    fn covert_report() -> ContentionReport {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_400;
        bins[20] = 100;
        let h = DensityHistogram::from_bins(bins, 100_000).expect("test bins are 128 long");
        CcHunter::new(CcHunterConfig::default()).analyze_contention(vec![h.clone(), h])
    }

    fn quiet_report() -> ContentionReport {
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        bins[0] = 2_500;
        let h = DensityHistogram::from_bins(bins, 100_000).expect("test bins are 128 long");
        CcHunter::new(CcHunterConfig::default()).analyze_contention(vec![h.clone(), h])
    }

    #[test]
    fn overall_is_covert_if_any_resource_is() {
        let mut report = SessionReport::new();
        report.add_contention("memory-bus", &covert_report());
        report.add_contention("integer-divider(core0)", &quiet_report());
        assert!(report.overall().is_covert());
        assert_eq!(report.convicted().len(), 1);
        assert_eq!(report.convicted()[0].resource, "memory-bus");
    }

    #[test]
    fn clean_session_is_clean() {
        let mut report = SessionReport::new();
        report.add_contention("memory-bus", &quiet_report());
        assert_eq!(report.overall(), Verdict::Clean);
        assert!(report.convicted().is_empty());
    }

    #[test]
    fn display_renders_span_and_rows() {
        let mut report = SessionReport::new()
            .with_span(0, 2_500_000_000)
            .with_clock(2_500_000_000);
        report.add_contention("memory-bus", &covert_report());
        let text = report.to_string();
        assert!(text.contains("1.000 s"));
        assert!(text.contains("memory-bus"));
        assert!(text.contains("overall: COVERT TIMING CHANNEL"));
    }

    #[test]
    fn empty_report_renders() {
        let report = SessionReport::new();
        let text = report.to_string();
        assert!(text.contains("no resources audited"));
        assert!(text.contains("overall: clean"));
    }
}
