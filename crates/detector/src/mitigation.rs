//! Closed-loop mitigation: convict a covert pair, contain it, measure the
//! residual leak, and step back down when the channel is gone.
//!
//! Detection alone (the paper's contribution) leaves the operator with a
//! verdict and no recourse. This module closes the loop: every supervised
//! pair carries a [`MitigationPolicy`] — a small state machine the
//! [`crate::Supervisor`] drives on each settled verdict — that walks an
//! **escalation ladder** of hardware responses:
//!
//! 1. [`MitigationLevel::FlushOnSwitch`] — flush the shared caches on every
//!    context switch (cheap; kills cross-quantum cache residue).
//! 2. [`MitigationLevel::TemporalPartition`] — strict alternating time
//!    slots for the suspect contexts (fence.t-style; no co-execution, so no
//!    fine-grained contention to modulate).
//! 3. [`MitigationLevel::WayPartition`] — way-partition the shared cache
//!    (Intel CAT-style allocation masks; each context fills only its own
//!    ways).
//! 4. [`MitigationLevel::Deschedule`] — park the suspect context entirely.
//!
//! The policy convicts on a covert-verdict streak, applies the first rung
//! through a [`MitigationEnforcer`] with a deadline and seeded virtual-
//! backoff retries, and **escalates on any apply failure or deadline miss —
//! a mitigation that cannot be applied never silently no-ops**. Once
//! contained, a [`ResidualReading`] (re-measured channel bandwidth as a
//! fraction of the unmitigated baseline, plus benign-workload overhead)
//! drives the reverse walk: a sustained clean streak with the residual
//! under the configured cap steps the ladder back down rung by rung.
//!
//! Containment state serializes into the supervisor's checkpoint manifest
//! (`mit,…` lines) and survives kill-and-restore; a restored active
//! containment is re-asserted through the enforcer on the next tick, since
//! the hardware's state did not survive the crash.

use crate::policy::{backoff_delay, mix_seed, BackoffConfig, RecoveryReconciliation};
use crate::DetectorError;
use std::fmt;

/// One rung of the escalation ladder, ordered from cheapest to most
/// disruptive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MitigationLevel {
    /// Flush the suspect core's caches on every context switch.
    FlushOnSwitch,
    /// Alternate the suspect contexts into disjoint time slots.
    TemporalPartition,
    /// Way-partition the shared cache between the suspect contexts.
    WayPartition,
    /// Park the suspect context off the machine entirely.
    Deschedule,
}

impl MitigationLevel {
    /// Every rung, cheapest first.
    pub const LADDER: [MitigationLevel; 4] = [
        MitigationLevel::FlushOnSwitch,
        MitigationLevel::TemporalPartition,
        MitigationLevel::WayPartition,
        MitigationLevel::Deschedule,
    ];

    /// The next (more disruptive) rung, or `None` at the top.
    pub fn escalate(self) -> Option<MitigationLevel> {
        match self {
            MitigationLevel::FlushOnSwitch => Some(MitigationLevel::TemporalPartition),
            MitigationLevel::TemporalPartition => Some(MitigationLevel::WayPartition),
            MitigationLevel::WayPartition => Some(MitigationLevel::Deschedule),
            MitigationLevel::Deschedule => None,
        }
    }

    /// The previous (cheaper) rung, or `None` at the bottom.
    pub fn step_down(self) -> Option<MitigationLevel> {
        match self {
            MitigationLevel::FlushOnSwitch => None,
            MitigationLevel::TemporalPartition => Some(MitigationLevel::FlushOnSwitch),
            MitigationLevel::WayPartition => Some(MitigationLevel::TemporalPartition),
            MitigationLevel::Deschedule => Some(MitigationLevel::WayPartition),
        }
    }

    /// Stable short name (used in checkpoints, metrics labels, traces).
    pub fn name(self) -> &'static str {
        match self {
            MitigationLevel::FlushOnSwitch => "flush-on-switch",
            MitigationLevel::TemporalPartition => "temporal-partition",
            MitigationLevel::WayPartition => "way-partition",
            MitigationLevel::Deschedule => "deschedule",
        }
    }

    /// Ladder rank, 1-based ([`MitigationLevel::FlushOnSwitch`] = 1);
    /// 0 is reserved for "no containment" in gauges.
    pub fn rank(self) -> u8 {
        match self {
            MitigationLevel::FlushOnSwitch => 1,
            MitigationLevel::TemporalPartition => 2,
            MitigationLevel::WayPartition => 3,
            MitigationLevel::Deschedule => 4,
        }
    }

    /// Parses a [`MitigationLevel::name`] back; `None` for anything else.
    pub fn from_name(name: &str) -> Option<MitigationLevel> {
        MitigationLevel::LADDER
            .iter()
            .copied()
            .find(|l| l.name() == name)
    }
}

impl fmt::Display for MitigationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Mitigation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationConfig {
    /// Consecutive covert verdicts needed to convict an uncontained pair
    /// (and, once contained, to escalate on fresh evidence).
    pub convict_streak: u32,
    /// Ticks an [`ContainmentState::Applying`] transition may stay pending
    /// before the policy escalates past it.
    pub apply_deadline_ticks: u64,
    /// Retry/backoff policy for enforcement calls (virtual delays, same
    /// determinism contract as the probe retries).
    pub backoff: BackoffConfig,
    /// Residual bandwidth (fraction of the unmitigated baseline) the
    /// channel must stay under before the policy steps down. The default
    /// 0.1 demands a ≥ 90 % bandwidth reduction.
    pub residual_cap: f64,
    /// Consecutive non-covert verdicts (with the residual under the cap,
    /// when a reading exists) needed to step down one rung.
    pub step_down_streak: u32,
    /// The rung a fresh conviction starts at.
    pub initial_level: MitigationLevel,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig {
            convict_streak: 3,
            apply_deadline_ticks: 4,
            backoff: BackoffConfig::default(),
            residual_cap: 0.1,
            step_down_streak: 8,
            initial_level: MitigationLevel::FlushOnSwitch,
        }
    }
}

impl MitigationConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] for a zero streak or
    /// deadline, or a residual cap outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), DetectorError> {
        if self.convict_streak == 0 || self.step_down_streak == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "mitigation streaks must be nonzero".to_string(),
            });
        }
        if self.apply_deadline_ticks == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "mitigation apply deadline must be at least one tick".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.residual_cap) {
            return Err(DetectorError::InvalidConfig {
                reason: format!("residual cap {} outside [0, 1]", self.residual_cap),
            });
        }
        Ok(())
    }
}

/// Where a pair stands on the containment ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainmentState {
    /// No containment active.
    Inactive,
    /// A transition to `level` is pending: the enforcer has not yet
    /// accepted it (failed applies are retried, then escalated past).
    Applying {
        /// The rung being applied.
        level: MitigationLevel,
        /// Apply attempts spent on this rung so far.
        attempt: u32,
        /// Tick by which the rung must be in force before the policy
        /// escalates past it.
        deadline_tick: u64,
    },
    /// `level` is in force.
    Contained {
        /// The rung in force.
        level: MitigationLevel,
        /// Tick the rung was applied at.
        since_tick: u64,
    },
}

impl ContainmentState {
    /// The rung this state refers to, if any.
    pub fn level(&self) -> Option<MitigationLevel> {
        match self {
            ContainmentState::Inactive => None,
            ContainmentState::Applying { level, .. }
            | ContainmentState::Contained { level, .. } => Some(*level),
        }
    }

    /// Whether any containment is active or pending.
    pub fn is_active(&self) -> bool {
        !matches!(self, ContainmentState::Inactive)
    }

    /// Short state word for status tables.
    pub fn name(&self) -> &'static str {
        match self {
            ContainmentState::Inactive => "inactive",
            ContainmentState::Applying { .. } => "applying",
            ContainmentState::Contained { .. } => "contained",
        }
    }
}

impl fmt::Display for ContainmentState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentState::Inactive => f.write_str("inactive"),
            ContainmentState::Applying { level, attempt, .. } => {
                write!(f, "applying {level} (attempt {attempt})")
            }
            ContainmentState::Contained { level, since_tick } => {
                write!(f, "contained at {level} since tick {since_tick}")
            }
        }
    }
}

/// An enforcement call the hardware/scheduler side refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyError {
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mitigation refused: {}", self.reason)
    }
}

impl std::error::Error for ApplyError {}

/// The containment actuator: translates a rung into real scheduler /
/// cache-hardware state for one audited pair.
///
/// The detector crate stays hardware-agnostic; the simulator (or a real
/// OS agent) implements this trait. Calls must be **idempotent** — a
/// restored supervisor re-asserts active containments through the same
/// `apply` path.
pub trait MitigationEnforcer {
    /// Puts `level` in force for `pair`.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when the response cannot be applied; the
    /// policy retries under its backoff budget and then escalates.
    fn apply(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError>;

    /// Removes `level` for `pair`.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when the release fails; the policy retries
    /// and, on exhaustion, keeps the rung in force (never leaves the
    /// hardware in an unknown state).
    fn release(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError>;
}

/// The default enforcer: accepts everything and actuates nothing.
///
/// Containment decisions still run, serialize, and show up in metrics —
/// useful for shadow-mode deployments and for every [`crate::Supervisor`]
/// caller that does not wire a real actuator.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvisoryEnforcer;

impl MitigationEnforcer for AdvisoryEnforcer {
    fn apply(&mut self, _pair: usize, _level: MitigationLevel) -> Result<(), ApplyError> {
        Ok(())
    }

    fn release(&mut self, _pair: usize, _level: MitigationLevel) -> Result<(), ApplyError> {
        Ok(())
    }
}

/// A post-mitigation measurement of the channel and of collateral damage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualReading {
    /// Channel goodput as a fraction of the unmitigated baseline
    /// (0 = leak closed, 1 = mitigation did nothing).
    pub residual_fraction: f64,
    /// Benign-workload slowdown caused by the mitigation, as a fraction
    /// (0.07 = benign co-runners lost 7 % throughput).
    pub overhead_fraction: f64,
    /// Tick the reading was taken at.
    pub tick: u64,
}

/// Converts raw re-measurements into [`ResidualReading`]s against a fixed
/// unmitigated baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualProbe {
    baseline_bps: f64,
    baseline_benign_ops: f64,
}

impl ResidualProbe {
    /// Captures the unmitigated baseline: channel goodput in bits/sec (or
    /// any consistent rate unit) and benign co-runner throughput in
    /// ops (any consistent work unit).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::InvalidConfig`] when either baseline is
    /// non-positive or non-finite.
    pub fn new(baseline_bps: f64, baseline_benign_ops: f64) -> Result<Self, DetectorError> {
        if !(baseline_bps > 0.0 && baseline_bps.is_finite()) {
            return Err(DetectorError::InvalidConfig {
                reason: format!(
                    "baseline bandwidth must be positive and finite, got {baseline_bps}"
                ),
            });
        }
        if !(baseline_benign_ops > 0.0 && baseline_benign_ops.is_finite()) {
            return Err(DetectorError::InvalidConfig {
                reason: format!(
                    "baseline benign throughput must be positive and finite, got {baseline_benign_ops}"
                ),
            });
        }
        Ok(ResidualProbe {
            baseline_bps,
            baseline_benign_ops,
        })
    }

    /// The unmitigated channel baseline.
    pub fn baseline_bps(&self) -> f64 {
        self.baseline_bps
    }

    /// Builds a reading from a post-mitigation re-measurement. Fractions
    /// are clamped to `[0, 1]` (a mitigation cannot owe the channel
    /// bandwidth, and negative overhead is noise).
    pub fn reading(&self, measured_bps: f64, benign_ops: f64, tick: u64) -> ResidualReading {
        let residual = (measured_bps / self.baseline_bps).clamp(0.0, 1.0);
        let overhead = (1.0 - benign_ops / self.baseline_benign_ops).clamp(0.0, 1.0);
        ResidualReading {
            residual_fraction: residual,
            overhead_fraction: overhead,
            tick,
        }
    }
}

/// Channel goodput from a decode transcript: `max(0, 2·(correct/total) − 1)`.
///
/// A decoder guessing uniformly at random gets half the bits right, so raw
/// accuracy is rescaled to the usable information fraction; bits the spy
/// failed to decode at all count as incorrect. Returns 0 for an empty
/// transcript.
///
/// ```
/// use cchunter_detector::mitigation::goodput_fraction;
/// assert_eq!(goodput_fraction(64, 64), 1.0);
/// assert_eq!(goodput_fraction(32, 64), 0.0); // coin-flip decode: no information
/// assert_eq!(goodput_fraction(10, 64), 0.0); // worse than chance clamps to 0
/// ```
pub fn goodput_fraction(correct_bits: usize, total_bits: usize) -> f64 {
    if total_bits == 0 {
        return 0.0;
    }
    (2.0 * correct_bits as f64 / total_bits as f64 - 1.0).max(0.0)
}

/// What one [`MitigationPolicy::drive`] call did, for reports and metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationTick {
    /// Containment state after the call.
    pub state: ContainmentState,
    /// The pair was convicted this tick (first transition out of
    /// [`ContainmentState::Inactive`] for this episode).
    pub convicted: bool,
    /// Enforcement calls accepted this tick.
    pub applied: u32,
    /// Enforcement calls refused this tick.
    pub apply_failures: u32,
    /// Rungs escalated past this tick (apply failure or deadline miss).
    pub escalations: u32,
    /// Rungs stepped down this tick.
    pub step_downs: u32,
    /// Virtual microseconds of enforcement retry backoff scheduled.
    pub backoff_us: u64,
    /// The ladder is exhausted and the top rung still is not in force —
    /// the operator must intervene; the policy keeps retrying.
    pub stuck: bool,
}

impl MitigationTick {
    fn idle(state: ContainmentState) -> Self {
        MitigationTick {
            state,
            convicted: false,
            applied: 0,
            apply_failures: 0,
            escalations: 0,
            step_downs: 0,
            backoff_us: 0,
            stuck: false,
        }
    }
}

/// Per-pair closed-loop containment state machine.
///
/// Drive it once per settled verdict with [`MitigationPolicy::drive`];
/// feed re-measurements with [`MitigationPolicy::record_residual`].
///
/// ```
/// use cchunter_detector::mitigation::{
///     AdvisoryEnforcer, ContainmentState, MitigationConfig, MitigationPolicy,
/// };
///
/// let mut policy = MitigationPolicy::new(MitigationConfig::default()).unwrap();
/// let mut enforcer = AdvisoryEnforcer;
/// for tick in 0..3 {
///     policy.drive(true, tick, 7, 0, &mut enforcer);
/// }
/// assert!(matches!(policy.state(), ContainmentState::Contained { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationPolicy {
    config: MitigationConfig,
    state: ContainmentState,
    covert_streak: u32,
    clean_streak: u32,
    last_residual: Option<ResidualReading>,
    /// Tick of the conviction that opened the current episode.
    convicted_tick: Option<u64>,
    /// Tick the first rung of the current episode took force.
    contained_tick: Option<u64>,
    /// A restored active containment that has not yet been re-asserted
    /// through the (fresh) enforcer.
    needs_reassert: bool,
    escalations: u64,
    step_downs: u64,
    applies: u64,
    apply_failures: u64,
    release_failures: u64,
}

impl MitigationPolicy {
    /// Creates an idle policy.
    ///
    /// # Errors
    ///
    /// Propagates [`MitigationConfig::validate`].
    pub fn new(config: MitigationConfig) -> Result<Self, DetectorError> {
        config.validate()?;
        Ok(MitigationPolicy {
            config,
            state: ContainmentState::Inactive,
            covert_streak: 0,
            clean_streak: 0,
            last_residual: None,
            convicted_tick: None,
            contained_tick: None,
            needs_reassert: false,
            escalations: 0,
            step_downs: 0,
            applies: 0,
            apply_failures: 0,
            release_failures: 0,
        })
    }

    /// The current containment state.
    pub fn state(&self) -> ContainmentState {
        self.state
    }

    /// Whether a rung is currently in force.
    pub fn is_contained(&self) -> bool {
        matches!(self.state, ContainmentState::Contained { .. })
    }

    /// The latest residual reading, if any.
    pub fn last_residual(&self) -> Option<ResidualReading> {
        self.last_residual
    }

    /// Ticks from conviction to the first rung taking force in the current
    /// (or last) episode — the headline detection-to-containment latency.
    pub fn containment_latency_ticks(&self) -> Option<u64> {
        match (self.convicted_tick, self.contained_tick) {
            (Some(c), Some(a)) if a >= c => Some(a - c),
            _ => None,
        }
    }

    /// Total rungs escalated past over the policy's lifetime.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Total rungs stepped down over the policy's lifetime.
    pub fn step_downs(&self) -> u64 {
        self.step_downs
    }

    /// Total accepted enforcement calls.
    pub fn applies(&self) -> u64 {
        self.applies
    }

    /// Total refused enforcement calls (apply and release).
    pub fn apply_failures(&self) -> u64 {
        self.apply_failures + self.release_failures
    }

    /// Records a post-mitigation re-measurement.
    pub fn record_residual(&mut self, reading: ResidualReading) {
        self.last_residual = Some(reading);
    }

    /// Applies a quarantine-recovery reconciliation (see
    /// [`crate::policy::reconcile_quarantine_recovery`]): clears the stale
    /// verdict streaks so containment moves only on fresh evidence.
    pub fn reconcile_recovery(&mut self, reconciliation: RecoveryReconciliation) {
        if reconciliation.reset_covert_streak {
            self.covert_streak = 0;
        }
        if reconciliation.reset_clean_streak {
            self.clean_streak = 0;
        }
    }

    /// Advances the state machine with one settled verdict and performs
    /// any due enforcement through `enforcer`. `seed` and `pair` feed the
    /// deterministic retry backoff (same contract as the probe retries).
    pub fn drive<E: MitigationEnforcer + ?Sized>(
        &mut self,
        covert: bool,
        tick: u64,
        seed: u64,
        pair: usize,
        enforcer: &mut E,
    ) -> MitigationTick {
        if covert {
            self.covert_streak = self.covert_streak.saturating_add(1);
            self.clean_streak = 0;
        } else {
            self.clean_streak = self.clean_streak.saturating_add(1);
            self.covert_streak = 0;
        }
        let mut report = MitigationTick::idle(self.state);

        match self.state {
            ContainmentState::Inactive => {
                if self.covert_streak >= self.config.convict_streak {
                    report.convicted = true;
                    self.convicted_tick = Some(tick);
                    self.contained_tick = None;
                    self.state = ContainmentState::Applying {
                        level: self.config.initial_level,
                        attempt: 0,
                        deadline_tick: tick.saturating_add(self.config.apply_deadline_ticks),
                    };
                    self.covert_streak = 0;
                    self.pump_apply(tick, seed, pair, enforcer, &mut report);
                }
            }
            ContainmentState::Applying { .. } => {
                self.pump_apply(tick, seed, pair, enforcer, &mut report);
            }
            ContainmentState::Contained { level, .. } => {
                if self.needs_reassert {
                    // Restored containment: the hardware forgot it; put it
                    // back in force before anything else.
                    self.state = ContainmentState::Applying {
                        level,
                        attempt: 0,
                        deadline_tick: tick.saturating_add(self.config.apply_deadline_ticks),
                    };
                    self.needs_reassert = false;
                    self.pump_apply(tick, seed, pair, enforcer, &mut report);
                } else if self.covert_streak >= self.config.convict_streak
                    || self.residual_above_cap()
                {
                    // The rung is not holding: fresh covert evidence (or a
                    // measured residual above the cap) escalates.
                    self.escalate_from(level, tick, pair, enforcer, &mut report);
                    self.covert_streak = 0;
                    self.clean_streak = 0;
                    self.last_residual = None;
                    if let ContainmentState::Applying { .. } = self.state {
                        self.pump_apply(tick, seed, pair, enforcer, &mut report);
                    }
                } else if self.clean_streak >= self.config.step_down_streak
                    && self.residual_under_cap()
                {
                    self.try_step_down(level, tick, seed, pair, enforcer, &mut report);
                }
            }
        }

        report.state = self.state;
        report
    }

    /// Whether the latest residual reading clears the step-down bar. A
    /// missing reading clears it (verdict streak alone then governs), a
    /// reading above the cap does not.
    fn residual_under_cap(&self) -> bool {
        self.last_residual
            .map(|r| r.residual_fraction <= self.config.residual_cap)
            .unwrap_or(true)
    }

    fn residual_above_cap(&self) -> bool {
        self.last_residual
            .map(|r| r.residual_fraction > self.config.residual_cap)
            .unwrap_or(false)
    }

    /// Retries the pending apply under the backoff budget; a rung whose
    /// budget or deadline is exhausted is escalated past — never dropped.
    fn pump_apply<E: MitigationEnforcer + ?Sized>(
        &mut self,
        tick: u64,
        seed: u64,
        pair: usize,
        enforcer: &mut E,
        report: &mut MitigationTick,
    ) {
        loop {
            let ContainmentState::Applying {
                level,
                attempt,
                deadline_tick,
            } = self.state
            else {
                return;
            };
            if tick > deadline_tick {
                self.escalate_from(level, tick, pair, enforcer, report);
                if report.stuck {
                    return;
                }
                continue;
            }
            match enforcer.apply(pair, level) {
                Ok(()) => {
                    self.applies += 1;
                    report.applied += 1;
                    self.state = ContainmentState::Contained {
                        level,
                        since_tick: tick,
                    };
                    if self.contained_tick.is_none() {
                        self.contained_tick = Some(tick);
                    }
                    self.clean_streak = 0;
                    self.last_residual = None;
                    return;
                }
                Err(_) => {
                    self.apply_failures += 1;
                    report.apply_failures += 1;
                    let retry_seed = mix_seed(seed, pair as u64, tick);
                    match backoff_delay(&self.config.backoff, retry_seed, attempt) {
                        Some(delay) => {
                            // Virtual, like the probe backoff: recorded,
                            // not slept, so drills replay deterministically.
                            report.backoff_us += delay;
                            self.state = ContainmentState::Applying {
                                level,
                                attempt: attempt + 1,
                                deadline_tick,
                            };
                        }
                        None => {
                            self.escalate_from(level, tick, pair, enforcer, report);
                            if report.stuck {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Moves the episode to the rung above `level`, releasing `level` if it
    /// was in force. At the top of the ladder the policy stays put, flags
    /// `stuck`, and keeps retrying — an unenforceable mitigation is an
    /// operator page, not a silent no-op.
    fn escalate_from<E: MitigationEnforcer + ?Sized>(
        &mut self,
        level: MitigationLevel,
        tick: u64,
        pair: usize,
        enforcer: &mut E,
        report: &mut MitigationTick,
    ) {
        let was_contained = matches!(self.state, ContainmentState::Contained { .. });
        match level.escalate() {
            Some(next) => {
                if was_contained && enforcer.release(pair, level).is_err() {
                    // Keep the old rung in force alongside the new one
                    // rather than leaving a gap; the failure is counted.
                    self.release_failures += 1;
                    report.apply_failures += 1;
                }
                self.escalations += 1;
                report.escalations += 1;
                self.state = ContainmentState::Applying {
                    level: next,
                    attempt: 0,
                    deadline_tick: tick.saturating_add(self.config.apply_deadline_ticks),
                };
            }
            None => {
                report.stuck = true;
                if !was_contained {
                    // Reset the attempt budget so the top rung keeps being
                    // retried on subsequent ticks.
                    self.state = ContainmentState::Applying {
                        level,
                        attempt: 0,
                        deadline_tick: tick.saturating_add(self.config.apply_deadline_ticks),
                    };
                }
            }
        }
    }

    /// Steps down one rung: applies the cheaper rung first (or none, at
    /// the bottom), then releases the current one. A failed release keeps
    /// the current rung in force; a failed downward apply cancels the
    /// step-down entirely.
    fn try_step_down<E: MitigationEnforcer + ?Sized>(
        &mut self,
        level: MitigationLevel,
        tick: u64,
        seed: u64,
        pair: usize,
        enforcer: &mut E,
        report: &mut MitigationTick,
    ) {
        let _ = seed;
        if let Some(lower) = level.step_down() {
            if enforcer.apply(pair, lower).is_err() {
                self.apply_failures += 1;
                report.apply_failures += 1;
                self.clean_streak = 0;
                return;
            }
            self.applies += 1;
            report.applied += 1;
            if enforcer.release(pair, level).is_err() {
                // Roll the lower rung back out; stay where we were.
                self.release_failures += 1;
                report.apply_failures += 1;
                let _ = enforcer.release(pair, lower);
                self.clean_streak = 0;
                return;
            }
            self.step_downs += 1;
            report.step_downs += 1;
            self.state = ContainmentState::Contained {
                level: lower,
                since_tick: tick,
            };
        } else {
            if enforcer.release(pair, level).is_err() {
                self.release_failures += 1;
                report.apply_failures += 1;
                self.clean_streak = 0;
                return;
            }
            self.step_downs += 1;
            report.step_downs += 1;
            self.state = ContainmentState::Inactive;
            self.convicted_tick = None;
            self.contained_tick = None;
        }
        self.clean_streak = 0;
        self.last_residual = None;
    }

    /// Serializes the policy for the checkpoint manifest (one
    /// comma-free field; `;`-separated).
    pub fn serialize(&self) -> String {
        let (state, level, a, b) = match self.state {
            ContainmentState::Inactive => ("inactive", "-".to_string(), 0, 0),
            ContainmentState::Applying {
                level,
                attempt,
                deadline_tick,
            } => (
                "applying",
                level.name().to_string(),
                attempt as u64,
                deadline_tick,
            ),
            ContainmentState::Contained { level, since_tick } => {
                ("contained", level.name().to_string(), since_tick, 0)
            }
        };
        let opt = |v: Option<u64>| v.map_or("-".to_string(), |t| t.to_string());
        format!(
            "{state};{level};{a};{b};{};{};{};{};{};{};{};{}",
            self.covert_streak,
            self.clean_streak,
            self.escalations,
            self.step_downs,
            self.applies,
            self.apply_failures + self.release_failures,
            opt(self.convicted_tick),
            opt(self.contained_tick),
        )
    }

    /// Restores a policy from [`MitigationPolicy::serialize`] output.
    /// An active containment comes back flagged for re-assertion: the
    /// enforcer's hardware state did not survive the crash, so the next
    /// [`MitigationPolicy::drive`] re-applies the rung.
    ///
    /// Returns `None` for malformed input (the caller treats that as a
    /// corrupt manifest).
    pub fn deserialize(config: MitigationConfig, text: &str) -> Option<Self> {
        let mut policy = MitigationPolicy::new(config).ok()?;
        let mut fields = text.split(';');
        let state = fields.next()?;
        let level_field = fields.next()?;
        let a: u64 = fields.next()?.trim().parse().ok()?;
        let b: u64 = fields.next()?.trim().parse().ok()?;
        let mut num = || -> Option<u64> { fields.next()?.trim().parse().ok() };
        policy.covert_streak = u32::try_from(num()?).ok()?;
        policy.clean_streak = u32::try_from(num()?).ok()?;
        policy.escalations = num()?;
        policy.step_downs = num()?;
        policy.applies = num()?;
        policy.apply_failures = num()?;
        let mut opt = || -> Option<Option<u64>> {
            match fields.next()? {
                "-" => Some(None),
                v => v.trim().parse().ok().map(Some),
            }
        };
        policy.convicted_tick = opt()?;
        policy.contained_tick = opt()?;
        if fields.next().is_some() {
            return None; // trailing garbage
        }
        policy.state = match state {
            "inactive" => {
                if level_field != "-" {
                    return None;
                }
                ContainmentState::Inactive
            }
            "applying" => ContainmentState::Applying {
                level: MitigationLevel::from_name(level_field)?,
                attempt: u32::try_from(a).ok()?,
                deadline_tick: b,
            },
            "contained" => ContainmentState::Contained {
                level: MitigationLevel::from_name(level_field)?,
                since_tick: a,
            },
            _ => return None,
        };
        policy.needs_reassert = policy.state.is_active();
        Some(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An enforcer whose next `fail_applies` apply calls are refused.
    struct FlakyEnforcer {
        fail_applies: u32,
        fail_releases: u32,
        applied: Vec<(usize, MitigationLevel)>,
        released: Vec<(usize, MitigationLevel)>,
    }

    impl FlakyEnforcer {
        fn new() -> Self {
            FlakyEnforcer {
                fail_applies: 0,
                fail_releases: 0,
                applied: Vec::new(),
                released: Vec::new(),
            }
        }
    }

    impl MitigationEnforcer for FlakyEnforcer {
        fn apply(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
            if self.fail_applies > 0 {
                self.fail_applies -= 1;
                return Err(ApplyError {
                    reason: "injected apply failure".to_string(),
                });
            }
            self.applied.push((pair, level));
            Ok(())
        }

        fn release(&mut self, pair: usize, level: MitigationLevel) -> Result<(), ApplyError> {
            if self.fail_releases > 0 {
                self.fail_releases -= 1;
                return Err(ApplyError {
                    reason: "injected release failure".to_string(),
                });
            }
            self.released.push((pair, level));
            Ok(())
        }
    }

    fn quick_config() -> MitigationConfig {
        MitigationConfig {
            convict_streak: 2,
            step_down_streak: 2,
            ..MitigationConfig::default()
        }
    }

    #[test]
    fn ladder_is_total_and_ordered() {
        let mut walked = vec![MitigationLevel::FlushOnSwitch];
        while let Some(next) = walked.last().unwrap().escalate() {
            walked.push(next);
        }
        assert_eq!(walked, MitigationLevel::LADDER);
        for level in MitigationLevel::LADDER {
            assert_eq!(MitigationLevel::from_name(level.name()), Some(level));
            assert_eq!(
                level.step_down().map(|l| l.escalate()),
                level.step_down().map(|_| Some(level))
            );
        }
        assert_eq!(MitigationLevel::from_name("telepathy"), None);
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        assert!(MitigationConfig::default().validate().is_ok());
        let bad = MitigationConfig {
            convict_streak: 0,
            ..MitigationConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = MitigationConfig {
            residual_cap: 1.5,
            ..MitigationConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = MitigationConfig {
            apply_deadline_ticks: 0,
            ..MitigationConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn covert_streak_convicts_and_contains() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        let r0 = policy.drive(true, 0, 7, 3, &mut enforcer);
        assert_eq!(r0.state, ContainmentState::Inactive);
        let r1 = policy.drive(true, 1, 7, 3, &mut enforcer);
        assert!(r1.convicted);
        assert_eq!(
            r1.state,
            ContainmentState::Contained {
                level: MitigationLevel::FlushOnSwitch,
                since_tick: 1
            }
        );
        assert_eq!(enforcer.applied, vec![(3, MitigationLevel::FlushOnSwitch)]);
        assert_eq!(policy.containment_latency_ticks(), Some(0));
    }

    #[test]
    fn apply_failure_escalates_never_noops() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        // Enough failures to burn the whole retry budget on rung 1: the
        // policy must land contained on rung 2, not give up.
        enforcer.fail_applies = quick_config().backoff.max_retries + 1;
        policy.drive(true, 0, 7, 0, &mut enforcer);
        let r = policy.drive(true, 1, 7, 0, &mut enforcer);
        assert!(r.convicted);
        assert!(r.apply_failures > 0);
        assert_eq!(r.escalations, 1);
        assert_eq!(
            r.state,
            ContainmentState::Contained {
                level: MitigationLevel::TemporalPartition,
                since_tick: 1
            }
        );
        assert!(r.backoff_us > 0, "virtual backoff was scheduled");
    }

    #[test]
    fn exhausted_ladder_reports_stuck_and_keeps_retrying() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        enforcer.fail_applies = u32::MAX; // nothing ever applies
        policy.drive(true, 0, 7, 0, &mut enforcer);
        let r = policy.drive(true, 1, 7, 0, &mut enforcer);
        assert!(r.stuck, "top of ladder with nothing in force is stuck");
        assert!(matches!(
            r.state,
            ContainmentState::Applying {
                level: MitigationLevel::Deschedule,
                ..
            }
        ));
        // Next tick it retries the top rung; once the enforcer recovers,
        // containment lands.
        enforcer.fail_applies = 0;
        let r2 = policy.drive(true, 2, 7, 0, &mut enforcer);
        assert!(!r2.stuck);
        assert!(matches!(
            r2.state,
            ContainmentState::Contained {
                level: MitigationLevel::Deschedule,
                ..
            }
        ));
    }

    #[test]
    fn contained_pair_escalates_on_fresh_covert_evidence() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        policy.drive(true, 0, 7, 0, &mut enforcer);
        policy.drive(true, 1, 7, 0, &mut enforcer);
        assert!(policy.is_contained());
        // Two more covert verdicts: the rung is not holding.
        policy.drive(true, 2, 7, 0, &mut enforcer);
        let r = policy.drive(true, 3, 7, 0, &mut enforcer);
        assert_eq!(r.escalations, 1);
        assert_eq!(
            r.state,
            ContainmentState::Contained {
                level: MitigationLevel::TemporalPartition,
                since_tick: 3
            }
        );
        // The old rung was released when the new one took force.
        assert_eq!(enforcer.released, vec![(0, MitigationLevel::FlushOnSwitch)]);
    }

    #[test]
    fn high_residual_escalates_even_with_clean_verdicts() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        policy.drive(true, 0, 7, 0, &mut enforcer);
        policy.drive(true, 1, 7, 0, &mut enforcer);
        assert!(policy.is_contained());
        policy.record_residual(ResidualReading {
            residual_fraction: 0.8,
            overhead_fraction: 0.02,
            tick: 2,
        });
        let r = policy.drive(false, 2, 7, 0, &mut enforcer);
        assert_eq!(r.escalations, 1, "a leaky rung escalates on measurement");
        assert!(matches!(
            r.state,
            ContainmentState::Contained {
                level: MitigationLevel::TemporalPartition,
                ..
            }
        ));
    }

    #[test]
    fn clean_streak_with_low_residual_steps_down_rung_by_rung() {
        let config = quick_config();
        let mut policy = MitigationPolicy::new(config).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        policy.drive(true, 0, 7, 0, &mut enforcer);
        policy.drive(true, 1, 7, 0, &mut enforcer);
        // Escalate once so we start at TemporalPartition.
        policy.drive(true, 2, 7, 0, &mut enforcer);
        policy.drive(true, 3, 7, 0, &mut enforcer);
        assert_eq!(
            policy.state().level(),
            Some(MitigationLevel::TemporalPartition)
        );

        let mut tick = 4;
        let mut seen = vec![policy.state()];
        while policy.state().is_active() && tick < 40 {
            policy.record_residual(ResidualReading {
                residual_fraction: 0.0,
                overhead_fraction: 0.05,
                tick,
            });
            policy.drive(false, tick, 7, 0, &mut enforcer);
            if Some(&policy.state()) != seen.last() {
                seen.push(policy.state());
            }
            tick += 1;
        }
        assert_eq!(policy.state(), ContainmentState::Inactive);
        // Walked down through FlushOnSwitch, never jumped.
        assert!(seen
            .iter()
            .any(|s| s.level() == Some(MitigationLevel::FlushOnSwitch)));
        assert_eq!(policy.step_downs(), 2);
    }

    #[test]
    fn residual_above_cap_blocks_step_down() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        policy.drive(true, 0, 7, 0, &mut enforcer);
        policy.drive(true, 1, 7, 0, &mut enforcer);
        // Residual above cap: escalates (rung not holding) rather than
        // stepping down, even on clean verdicts.
        for tick in 2..10 {
            policy.record_residual(ResidualReading {
                residual_fraction: 0.5,
                overhead_fraction: 0.0,
                tick,
            });
            policy.drive(false, tick, 7, 0, &mut enforcer);
        }
        assert!(policy.state().is_active());
        assert!(policy.state().level() > Some(MitigationLevel::FlushOnSwitch));
    }

    #[test]
    fn failed_release_keeps_current_rung() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        policy.drive(true, 0, 7, 0, &mut enforcer);
        policy.drive(true, 1, 7, 0, &mut enforcer);
        assert!(policy.is_contained());
        enforcer.fail_releases = u32::MAX;
        for tick in 2..12 {
            policy.drive(false, tick, 7, 0, &mut enforcer);
        }
        // Step-down kept being attempted but the release never succeeded:
        // the rung stays in force (never an unknown hardware state).
        assert_eq!(
            policy.state().level(),
            Some(MitigationLevel::FlushOnSwitch),
            "still contained at the original rung"
        );
        assert!(policy.apply_failures() > 0);
    }

    #[test]
    fn serialization_roundtrips_and_flags_reassert() {
        let config = quick_config();
        let mut policy = MitigationPolicy::new(config).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        policy.drive(true, 0, 7, 5, &mut enforcer);
        policy.drive(true, 1, 7, 5, &mut enforcer);
        policy.drive(false, 2, 7, 5, &mut enforcer);
        assert!(policy.is_contained());

        let text = policy.serialize();
        let restored = MitigationPolicy::deserialize(config, &text).expect("roundtrip");
        assert_eq!(restored.state(), policy.state());
        assert_eq!(restored.escalations(), policy.escalations());
        assert_eq!(
            restored.containment_latency_ticks(),
            policy.containment_latency_ticks()
        );

        // The restored containment re-asserts through the enforcer on the
        // next drive.
        let mut policy = restored;
        let mut fresh = FlakyEnforcer::new();
        let r = policy.drive(false, 3, 7, 5, &mut fresh);
        assert_eq!(r.applied, 1, "containment re-applied after restore");
        assert_eq!(fresh.applied, vec![(5, MitigationLevel::FlushOnSwitch)]);
        assert!(policy.is_contained());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        let config = MitigationConfig::default();
        for bad in [
            "",
            "contained",
            "contained;warp-drive;0;0;0;0;0;0;0;0;-;-",
            "inactive;flush-on-switch;0;0;0;0;0;0;0;0;-;-",
            "applying;deschedule;zero;0;0;0;0;0;0;0;-;-",
            "inactive;-;0;0;0;0;0;0;0;0;-;-;extra",
        ] {
            assert!(
                MitigationPolicy::deserialize(config, bad).is_none(),
                "accepted {bad:?}"
            );
        }
        let idle = MitigationPolicy::new(config).unwrap();
        let restored = MitigationPolicy::deserialize(config, &idle.serialize()).unwrap();
        assert_eq!(restored.state(), ContainmentState::Inactive);
        assert!(!restored.needs_reassert);
    }

    #[test]
    fn reconcile_recovery_clears_streaks() {
        let mut policy = MitigationPolicy::new(quick_config()).unwrap();
        let mut enforcer = FlakyEnforcer::new();
        // One covert verdict short of conviction…
        policy.drive(true, 0, 7, 0, &mut enforcer);
        policy.reconcile_recovery(RecoveryReconciliation {
            restore_confidence: true,
            reset_covert_streak: true,
            reset_clean_streak: true,
        });
        // …and the stale streak is gone: the next covert verdict does not
        // convict on pre-quarantine evidence.
        let r = policy.drive(true, 1, 7, 0, &mut enforcer);
        assert!(!r.convicted);
        assert_eq!(r.state, ContainmentState::Inactive);
    }

    #[test]
    fn residual_probe_normalizes_and_clamps() {
        let probe = ResidualProbe::new(100.0, 1_000.0).unwrap();
        let r = probe.reading(5.0, 930.0, 9);
        assert!((r.residual_fraction - 0.05).abs() < 1e-12);
        assert!((r.overhead_fraction - 0.07).abs() < 1e-12);
        let r = probe.reading(250.0, 1_100.0, 9);
        assert_eq!(r.residual_fraction, 1.0);
        assert_eq!(r.overhead_fraction, 0.0);
        assert!(ResidualProbe::new(0.0, 1.0).is_err());
        assert!(ResidualProbe::new(f64::NAN, 1.0).is_err());
        assert!(ResidualProbe::new(1.0, -3.0).is_err());
    }

    #[test]
    fn goodput_counts_chance_as_zero() {
        assert_eq!(goodput_fraction(0, 0), 0.0);
        assert_eq!(goodput_fraction(64, 64), 1.0);
        assert!((goodput_fraction(48, 64) - 0.5).abs() < 1e-12);
        assert_eq!(goodput_fraction(20, 64), 0.0);
    }

    #[test]
    fn drive_is_deterministic_for_fixed_seed() {
        let run = |seed: u64| -> (String, u64) {
            let mut policy = MitigationPolicy::new(quick_config()).unwrap();
            let mut enforcer = FlakyEnforcer::new();
            enforcer.fail_applies = 3;
            let mut backoff = 0;
            for tick in 0..6 {
                backoff += policy.drive(true, tick, seed, 1, &mut enforcer).backoff_us;
            }
            (policy.serialize(), backoff)
        };
        assert_eq!(run(42), run(42));
        let (_, a) = run(42);
        let (_, b) = run(43);
        // Jittered schedules differ across seeds (overwhelmingly likely).
        assert!(a > 0 && b > 0);
    }
}
