//! Conflict-miss tracking (paper §V-A, Figure 9).
//!
//! A *conflict miss* re-fetches a block that was evicted from a
//! set-associative cache even though a fully-associative cache of the same
//! capacity (with LRU replacement) would still hold it. Two trackers are
//! provided:
//!
//! * [`IdealLruTracker`] — the expensive oracle: a shadow fully-associative
//!   LRU stack of the cache's capacity.
//! * [`GenerationTracker`] — the paper's practical hardware approximation:
//!   four access *generations* rotated every `T = N/4` distinct block
//!   accesses. Each replaced block's address is recorded in the Bloom
//!   filter of the latest generation it was accessed in; an incoming miss
//!   that hits any live Bloom filter is classified as a conflict miss.
//!   Discarding the oldest generation flash-clears its filter (the
//!   removal of entries from the bottom of the LRU stack).
//!
//! Drive a tracker with the cache's access/replacement stream:
//! for each access call [`MissClassifier::classify_miss`] first on a miss,
//! then [`MissClassifier::record_access`]; call
//! [`MissClassifier::record_replacement`] for each eviction.

use crate::bloom::BloomFilter;
use std::collections::{HashMap, VecDeque};

/// Classification of a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictClass {
    /// The fully-associative reference cache would have retained the block:
    /// the miss is due to set conflicts — the raw material of cache covert
    /// channels.
    Conflict,
    /// A cold or capacity miss.
    NonConflict,
}

impl ConflictClass {
    /// Whether this is a conflict miss.
    pub fn is_conflict(self) -> bool {
        matches!(self, ConflictClass::Conflict)
    }
}

/// Common interface of the ideal and practical conflict-miss trackers.
pub trait MissClassifier {
    /// Classifies a miss on `block` *before* the block is (re)accessed.
    fn classify_miss(&mut self, block: u64) -> ConflictClass;

    /// Records an access to `block` (hit or miss fill).
    fn record_access(&mut self, block: u64);

    /// Records that `victim_block` was evicted by a fill.
    fn record_replacement(&mut self, victim_block: u64);
}

/// The ideal conflict-miss oracle: a shadow fully-associative cache of
/// `capacity_blocks` entries with true-LRU replacement.
///
/// A miss is a conflict miss iff the shadow cache still holds the block.
///
/// ```
/// use cchunter_detector::{ConflictClass, IdealLruTracker, MissClassifier};
/// let mut t = IdealLruTracker::new(2);
/// t.record_access(0xA0);
/// t.record_access(0xB0);
/// // 0xA0 is within the last 2 distinct blocks: an eviction of it by the
/// // real cache would be premature.
/// assert_eq!(t.classify_miss(0xA0), ConflictClass::Conflict);
/// t.record_access(0xC0); // pushes 0xB0 out of the 2-entry shadow
/// t.record_access(0xD0);
/// assert_eq!(t.classify_miss(0xB0), ConflictClass::NonConflict);
/// ```
#[derive(Debug, Clone)]
pub struct IdealLruTracker {
    capacity: usize,
    /// Latest access tick per resident block; membership here *is*
    /// residency in the shadow cache.
    stamps: HashMap<u64, u64>,
    /// Accesses in arrival order. Entries whose tick no longer matches
    /// `stamps[block]` are stale (the block was re-accessed later) and are
    /// skipped lazily at eviction time, so recency ordering never needs a
    /// sorted structure: the queue is monotone in tick by construction.
    queue: VecDeque<(u64, u64)>,
    tick: u64,
}

impl IdealLruTracker {
    /// Creates a tracker for a cache of `capacity_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    pub fn new(capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "capacity must be nonzero");
        IdealLruTracker {
            capacity: capacity_blocks,
            stamps: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
        }
    }

    /// Number of blocks currently in the shadow cache.
    pub fn resident(&self) -> usize {
        self.stamps.len()
    }
}

impl MissClassifier for IdealLruTracker {
    fn classify_miss(&mut self, block: u64) -> ConflictClass {
        if self.stamps.contains_key(&block) {
            ConflictClass::Conflict
        } else {
            ConflictClass::NonConflict
        }
    }

    fn record_access(&mut self, block: u64) {
        self.tick += 1;
        self.stamps.insert(block, self.tick);
        self.queue.push_back((self.tick, block));
        if self.stamps.len() > self.capacity {
            // Evict the least recently used live entry; stale queue slots
            // (superseded by a later re-access) pop for free on the way.
            while let Some((t, b)) = self.queue.pop_front() {
                if self.stamps.get(&b) == Some(&t) {
                    self.stamps.remove(&b);
                    break;
                }
            }
        }
        // A hot working set that never exceeds capacity keeps appending
        // without ever popping; compact once stale slots dominate so memory
        // stays O(capacity). Each retained pass removes ≥ 3/4 of the queue,
        // so the scan amortizes to O(1) per access.
        if self.queue.len() > self.stamps.len().max(self.capacity) * 4 + 64 {
            let stamps = &self.stamps;
            self.queue.retain(|&(t, b)| stamps.get(&b) == Some(&t));
        }
    }

    fn record_replacement(&mut self, _victim_block: u64) {
        // The oracle needs no replacement feed: recency alone decides.
    }
}

/// Configuration of the practical tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationConfig {
    /// Total cache blocks `N` (4096 for the paper's 256 KB L2).
    pub total_blocks: usize,
    /// Bits per generation Bloom filter. The paper budgets
    /// 4 × `total_blocks` bits across the four filters, i.e. `total_blocks`
    /// bits each.
    pub bloom_bits: usize,
    /// Hash functions per filter (3 in the paper).
    pub bloom_hashes: u32,
}

impl GenerationConfig {
    /// Paper-faithful sizing for a cache of `total_blocks` blocks.
    pub fn for_cache(total_blocks: usize) -> Self {
        GenerationConfig {
            total_blocks,
            bloom_bits: total_blocks.max(64),
            bloom_hashes: 3,
        }
    }
}

/// The practical generation-bit + Bloom-filter conflict-miss tracker
/// (paper Figure 9).
///
/// Four generations approximate the LRU stack: all blocks accessed in a
/// younger generation are more recent than any block of an older
/// generation. A new generation starts every `T = N/4` distinct block
/// accesses, discarding the oldest (flash-clearing its Bloom filter).
/// Replaced blocks are recorded in the filter of the latest generation they
/// were accessed in; an incoming block found in any live filter was removed
/// from the cache prematurely — a conflict miss.
#[derive(Debug, Clone)]
pub struct GenerationTracker {
    config: GenerationConfig,
    /// Absolute id of the current (youngest) generation.
    current_gen: u64,
    /// Distinct blocks marked in the current generation so far.
    marked_in_current: usize,
    /// Rotation threshold `T = N/4`.
    threshold: usize,
    /// Latest generation each in-cache block was accessed in.
    last_gen: HashMap<u64, u64>,
    /// One Bloom filter per live generation, indexed by `gen % 4`.
    blooms: [BloomFilter; 4],
    /// Total generation rotations performed.
    rotations: u64,
}

impl GenerationTracker {
    /// Creates a tracker for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `total_blocks < 4`.
    pub fn new(config: GenerationConfig) -> Self {
        assert!(config.total_blocks >= 4, "need at least 4 blocks");
        let bloom = || BloomFilter::new(config.bloom_bits, config.bloom_hashes);
        GenerationTracker {
            config,
            current_gen: 3, // live generations 0..=3 from the start
            marked_in_current: 0,
            threshold: config.total_blocks / 4,
            last_gen: HashMap::new(),
            blooms: [bloom(), bloom(), bloom(), bloom()],
            rotations: 0,
        }
    }

    /// Paper-faithful tracker for a cache of `total_blocks` blocks.
    pub fn for_cache(total_blocks: usize) -> Self {
        Self::new(GenerationConfig::for_cache(total_blocks))
    }

    /// The configuration in use.
    pub fn config(&self) -> &GenerationConfig {
        &self.config
    }

    /// Number of generation rotations so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Oldest still-live generation id.
    fn oldest_live(&self) -> u64 {
        self.current_gen.saturating_sub(3)
    }

    fn rotate(&mut self) {
        self.current_gen += 1;
        self.rotations += 1;
        self.marked_in_current = 0;
        // Flash-clear the filter slot now reused by the new generation
        // (it held generation `current_gen - 4`, which just aged out).
        self.blooms[(self.current_gen % 4) as usize].clear();
        // Generation bits of aged-out blocks become irrelevant; prune the
        // shadow metadata map lazily to keep it bounded.
        let oldest = self.oldest_live();
        if self.last_gen.len() > self.config.total_blocks * 4 {
            self.last_gen.retain(|_, g| *g >= oldest);
        }
    }
}

impl MissClassifier for GenerationTracker {
    fn classify_miss(&mut self, block: u64) -> ConflictClass {
        if self.blooms.iter().any(|b| b.contains(block)) {
            ConflictClass::Conflict
        } else {
            ConflictClass::NonConflict
        }
    }

    fn record_access(&mut self, block: u64) {
        let gen = self.current_gen;
        let oldest = self.oldest_live();
        let prev = self.last_gen.insert(block, gen);
        // Only blocks *entering* the tracked window consume LRU-stack
        // capacity ("reaching 25% capacity in an ideal LRU stack", Fig. 9):
        // re-accessing a live block merely moves it to the stack top.
        let is_insertion = match prev {
            Some(g) => g < oldest,
            None => true,
        };
        if is_insertion {
            self.marked_in_current += 1;
            if self.marked_in_current >= self.threshold {
                self.rotate();
            }
        }
    }

    fn record_replacement(&mut self, victim_block: u64) {
        let oldest = self.oldest_live();
        if let Some(&gen) = self.last_gen.get(&victim_block) {
            if gen >= oldest {
                self.blooms[(gen % 4) as usize].insert(victim_block);
            }
            self.last_gen.remove(&victim_block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(|i| i * 64)
    }

    mod ideal {
        use super::*;

        #[test]
        fn recently_evicted_block_is_conflict() {
            let mut t = IdealLruTracker::new(8);
            for b in blocks(0..8) {
                t.record_access(b);
            }
            assert_eq!(t.classify_miss(0), ConflictClass::Conflict);
        }

        #[test]
        fn cold_block_is_not_conflict() {
            let mut t = IdealLruTracker::new(8);
            t.record_access(0);
            assert_eq!(t.classify_miss(0x9999 * 64), ConflictClass::NonConflict);
        }

        #[test]
        fn capacity_distance_becomes_capacity_miss() {
            let mut t = IdealLruTracker::new(4);
            for b in blocks(0..10) {
                t.record_access(b);
            }
            // Block 0 is 10 distinct accesses old: beyond a 4-block
            // fully-associative cache.
            assert_eq!(t.classify_miss(0), ConflictClass::NonConflict);
            // Block 9*64 is the most recent.
            assert_eq!(t.classify_miss(9 * 64), ConflictClass::Conflict);
            assert_eq!(t.resident(), 4);
        }

        #[test]
        fn refresh_keeps_block_recent() {
            let mut t = IdealLruTracker::new(4);
            t.record_access(0);
            for b in blocks(1..4) {
                t.record_access(b);
                t.record_access(0); // keep refreshing block 0
            }
            for b in blocks(4..6) {
                t.record_access(b);
            }
            assert_eq!(t.classify_miss(0), ConflictClass::Conflict);
        }
    }

    mod practical {
        use super::*;

        fn tracker() -> GenerationTracker {
            // 64-block cache → T = 16.
            GenerationTracker::new(GenerationConfig {
                total_blocks: 64,
                bloom_bits: 1024,
                bloom_hashes: 3,
            })
        }

        #[test]
        fn replaced_then_reaccessed_is_conflict() {
            let mut t = tracker();
            t.record_access(0x40);
            t.record_replacement(0x40);
            assert_eq!(t.classify_miss(0x40), ConflictClass::Conflict);
        }

        #[test]
        fn cold_miss_is_not_conflict() {
            let mut t = tracker();
            assert_eq!(t.classify_miss(0x40), ConflictClass::NonConflict);
        }

        #[test]
        fn replacement_of_untracked_block_is_harmless() {
            let mut t = tracker();
            t.record_replacement(0xFFFF_0000);
            assert_eq!(t.classify_miss(0xFFFF_0000), ConflictClass::NonConflict);
        }

        #[test]
        fn generations_rotate_every_threshold_insertions() {
            let mut t = tracker();
            assert_eq!(t.rotations(), 0);
            for b in blocks(0..16) {
                t.record_access(b);
            }
            assert_eq!(t.rotations(), 1, "T = 64/4 = 16 distinct insertions");
            // Re-touching live blocks consumes no LRU-stack capacity: the
            // hot set can spin forever without aging anything out.
            for _ in 0..10 {
                for b in blocks(0..16) {
                    t.record_access(b);
                }
            }
            assert_eq!(t.rotations(), 1);
            // Fresh blocks do rotate.
            for b in blocks(100..116) {
                t.record_access(b);
            }
            assert_eq!(t.rotations(), 2);
        }

        #[test]
        fn aged_out_replacement_is_forgotten() {
            let mut t = tracker();
            t.record_access(0x40);
            t.record_replacement(0x40); // recorded in generation 3's filter
                                        // Four full rotations age generation 3 out entirely.
            for b in blocks(100..164) {
                t.record_access(b);
            }
            assert_eq!(t.rotations(), 4);
            assert_eq!(
                t.classify_miss(0x40),
                ConflictClass::NonConflict,
                "flash-cleared generation must forget the replacement"
            );
        }

        #[test]
        fn duplicate_accesses_do_not_advance_generation() {
            let mut t = tracker();
            for _ in 0..1000 {
                t.record_access(0x40);
            }
            assert_eq!(t.rotations(), 0);
        }

        #[test]
        fn agrees_with_oracle_on_covert_channel_pattern() {
            // The cache-channel steady state: a working set well inside
            // capacity, repeatedly evicted by set conflicts.
            let capacity = 256;
            let mut ideal = IdealLruTracker::new(capacity);
            let mut practical = GenerationTracker::new(GenerationConfig {
                total_blocks: capacity,
                bloom_bits: 4096,
                bloom_hashes: 3,
            });
            let working_set: Vec<u64> = blocks(0..32).collect();
            // Warm up.
            for &b in &working_set {
                ideal.record_access(b);
                practical.record_access(b);
            }
            let mut agreements = 0;
            let mut total = 0;
            for round in 0..50 {
                for (i, &b) in working_set.iter().enumerate() {
                    // Alternate eviction pattern: evict then re-access.
                    if (round + i) % 2 == 0 {
                        ideal.record_replacement(b);
                        practical.record_replacement(b);
                        let ci = ideal.classify_miss(b);
                        let cp = practical.classify_miss(b);
                        total += 1;
                        if ci == cp {
                            agreements += 1;
                        }
                        // Conflict misses must never be *missed* while the
                        // working set fits comfortably in the window.
                        assert_eq!(ci, ConflictClass::Conflict);
                        assert_eq!(cp, ConflictClass::Conflict);
                    }
                    ideal.record_access(b);
                    practical.record_access(b);
                }
            }
            assert_eq!(agreements, total);
        }
    }
}
