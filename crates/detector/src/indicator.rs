//! Pluggable detection indicators behind a common [`Indicator`] trait.
//!
//! CC-Hunter ships one indicator per resource class (recurrent-burst
//! likelihood for combinational hardware, autocorrelogram oscillation for
//! caches), but Yao et al. ("Towards a Better Indicator for Cache Timing
//! Channels") show the autocorrelogram is not the strongest signal, and the
//! roadmap's new channel families need an objective scoreboard. This module
//! turns "the detector" into a *family* of competing scorers:
//!
//! * [`CcHunterIndicator`] — the paper's detection stack (burst likelihood
//!   ratio + k-means recurrence for event trains, autocorrelogram peak +
//!   harmonic confirmation for conflict-miss symbol series) refactored
//!   behind the trait.
//! * [`CusumIndicator`] — a CUSUM change-point statistic over the
//!   contention-event rate series: covert modulation drags the cumulative
//!   sum into long one-sided excursions that benign noise cannot sustain.
//! * [`SpectralIndicator`] — a Yao-style occupancy/spectral-density
//!   indicator: the autocorrelogram (the Fourier pair of the power
//!   spectrum, computed through the shared [`crate::batch`] FFT planner) of
//!   the rate trace itself, scoring the dominant periodic component.
//!
//! Every indicator consumes the same [`WindowObservation`] stream and emits
//! a calibrated likelihood in `[0, 1]` (≈0 benign, ≈1 covert channel), so
//! detectors are head-to-head comparable on the same ROC axes. All scoring
//! is sequential scalar arithmetic over deterministic inputs: a given
//! observation sequence produces bit-identical scores on every host and
//! under any `par_map` thread count (property-tested).

use crate::autocorr::{Autocorrelogram, OscillationConfig, OscillationDetector};
use crate::burst::BurstDetector;
use crate::cluster::{self, ClusterConfig};
use crate::density::DensityHistogram;
use crate::events::SymbolSeries;
use crate::online::Harvest;

/// Everything one scoring window exposes to an indicator.
///
/// A *scoring window* is the indicator-facing unit of observation — a fixed
/// span of cycles (the quality harness uses a few bit periods; the online
/// daemons use one OS quantum). Not every field is populated for every
/// resource: combinational audits (bus, divider) carry a density histogram
/// and a rate trace, cache audits carry the conflict-miss symbol series.
/// Indicators score whatever subset they understand and ignore the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObservation {
    /// Event-density histogram of the window (combinational resources).
    pub histogram: Option<DensityHistogram>,
    /// Conflict-miss symbol series of the window (memory resources).
    pub symbols: Option<SymbolSeries>,
    /// Contention-event counts per equal sub-slot of the window, in time
    /// order — the rate trace CUSUM and spectral indicators score.
    pub rates: Vec<f64>,
    /// Fraction of the window actually observed: 1.0 for a complete
    /// harvest, `1 - lost_fraction` for a partial one, 0.0 for a missed
    /// quantum (an indicator must not grow *more* confident on a gap).
    pub weight: f64,
}

impl WindowObservation {
    /// An observation carrying only a density histogram.
    pub fn from_histogram(histogram: DensityHistogram) -> Self {
        WindowObservation {
            histogram: Some(histogram),
            symbols: None,
            rates: Vec::new(),
            weight: 1.0,
        }
    }

    /// An observation carrying only a conflict-miss symbol series.
    pub fn from_symbols(symbols: SymbolSeries) -> Self {
        WindowObservation {
            histogram: None,
            symbols: Some(symbols),
            rates: Vec::new(),
            weight: 1.0,
        }
    }

    /// An observation built from a fault-injected [`Harvest`]: the
    /// histogram when one survived, weighted by the observed fraction.
    pub fn from_harvest(harvest: &Harvest) -> Self {
        WindowObservation {
            histogram: harvest.histogram().cloned(),
            symbols: None,
            rates: Vec::new(),
            weight: harvest.observed_weight(),
        }
    }

    /// A fully missed window (gap): nothing observed, zero weight.
    pub fn missed() -> Self {
        WindowObservation {
            histogram: None,
            symbols: None,
            rates: Vec::new(),
            weight: 0.0,
        }
    }

    /// Attaches the sub-slot rate trace.
    pub fn with_rates(mut self, rates: Vec<f64>) -> Self {
        self.rates = rates;
        self
    }

    /// Overrides the observed-fraction weight (clamped to `[0, 1]`).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight.clamp(0.0, 1.0);
        self
    }
}

/// A pluggable covert-channel indicator: an online scorer mapping a stream
/// of [`WindowObservation`]s to a calibrated likelihood in `[0, 1]`.
///
/// The contract every implementation (and the shared property tests) holds:
///
/// * **Calibrated range** — [`score`](Indicator::score) stays in `[0, 1]`,
///   low for benign workloads, high for covert channels, so scores from
///   different indicators live on the same ROC axes.
/// * **Deterministic** — the same observation sequence yields bit-identical
///   scores, regardless of host, thread count, or scoring batch shape.
/// * **Replay-consistent** — incremental [`push`](Indicator::push)ing is
///   exactly equivalent to [`reset`](Indicator::reset) followed by
///   replaying the sequence from scratch: online state is a pure function
///   of the observations consumed since the last reset.
pub trait Indicator: Send {
    /// Short stable identifier (used in artifact cell keys, so renaming one
    /// invalidates quality baselines).
    fn name(&self) -> &'static str;

    /// Consumes one observation and returns the updated score — the online
    /// entry point.
    fn push(&mut self, obs: &WindowObservation) -> f64;

    /// The current calibrated likelihood in `[0, 1]` (0.0 before any
    /// observation).
    fn score(&self) -> f64;

    /// Clears all online state back to the freshly-constructed indicator.
    fn reset(&mut self);

    /// Scores a whole window sequence from scratch: [`reset`](Indicator::reset), replay every
    /// observation, return the final score. The default is definitionally
    /// the replay side of the replay-consistency contract; implementations
    /// may override it only with something bit-identical.
    fn score_sequence(&mut self, window: &[WindowObservation]) -> f64 {
        self.reset();
        let mut s = 0.0;
        for obs in window {
            s = self.push(obs);
        }
        s
    }
}

/// The standard competitor field: one of each built-in indicator, the set
/// the quality harness sweeps by default.
pub fn standard_indicators() -> Vec<Box<dyn Indicator>> {
    vec![
        Box::new(CcHunterIndicator::default()),
        Box::new(CusumIndicator::default()),
        Box::new(SpectralIndicator::default()),
    ]
}

/// Instantiates a built-in indicator by its [`Indicator::name`].
pub fn indicator_by_name(name: &str) -> Option<Box<dyn Indicator>> {
    match name {
        "cchunter" => Some(Box::new(CcHunterIndicator::default())),
        "cusum" => Some(Box::new(CusumIndicator::default())),
        "spectral" => Some(Box::new(SpectralIndicator::default())),
        _ => None,
    }
}

/// Scores many independent observation sequences, one fresh indicator per
/// sequence, fanned out over `pool`. Per-sequence scoring is sequential
/// scalar arithmetic and sequences share no state, so the result is
/// bit-identical for every thread count — the same contract as the rest of
/// the batched analysis engine.
pub fn score_sequences_in(
    pool: &mut threadpool::Pool,
    make: &(dyn Fn() -> Box<dyn Indicator> + Sync),
    sequences: &[Vec<WindowObservation>],
) -> Vec<f64> {
    threadpool::par_map_in(pool, sequences, |seq| make().score_sequence(seq))
}

/// [`score_sequences_in`] on the global analysis pool.
pub fn score_sequences(
    make: &(dyn Fn() -> Box<dyn Indicator> + Sync),
    sequences: &[Vec<WindowObservation>],
) -> Vec<f64> {
    threadpool::par_map(sequences, |seq| make().score_sequence(seq))
}

/// EWMA smoothing factor shared by the built-in indicators: new windows
/// carry 35% of the updated estimate, so a channel must sustain its signal
/// for a few windows before the score commits (and one noisy benign window
/// cannot spike it).
const EWMA_ALPHA: f64 = 0.35;

/// Weighted EWMA step: a window observed at fractional `weight` moves the
/// estimate proportionally less, and a missed window (weight 0) leaves it
/// unchanged — gaps never *raise* confidence.
fn ewma(current: f64, sample: f64, weight: f64) -> f64 {
    let a = EWMA_ALPHA * weight.clamp(0.0, 1.0);
    current * (1.0 - a) + sample * a
}

// ---------------------------------------------------------------------------
// CC-Hunter (the paper's detector, behind the trait)
// ---------------------------------------------------------------------------

/// The paper's two-algorithm detection stack as a pluggable indicator.
///
/// Histogram observations flow through [`BurstDetector`] (likelihood ratio
/// of the burst distribution) and the k-means recurrence clusterer exactly
/// as in the offline pipeline; symbol observations flow through
/// [`OscillationDetector`] (dominant autocorrelogram peak + second-harmonic
/// confirmation, computed through the shared FFT planner). The score blends
/// the smoothed per-window statistic with how *sustained* the pattern is —
/// the trait-shaped equivalent of the paper's "likelihood ratio ≥ 0.9 and
/// the burst pattern recurs" decision rule.
#[derive(Debug)]
pub struct CcHunterIndicator {
    burst: BurstDetector,
    oscillation: OscillationDetector,
    cluster: ClusterConfig,
    /// Autocorrelogram lag budget for symbol windows.
    max_lag: usize,
    /// Cap on retained bursty feature vectors (the paper's 512-quantum
    /// observation window): oldest evicted first.
    feature_cap: usize,
    bursty_features: Vec<Vec<f64>>,
    windows_seen: usize,
    histogram_windows: usize,
    lr_ewma: f64,
    largest_cluster: usize,
    osc_ewma: f64,
    symbol_windows: usize,
    oscillatory_windows: usize,
}

impl Default for CcHunterIndicator {
    fn default() -> Self {
        CcHunterIndicator {
            burst: BurstDetector::default(),
            oscillation: OscillationDetector::new(OscillationConfig::default()),
            cluster: ClusterConfig::default(),
            max_lag: 1000,
            feature_cap: 512,
            bursty_features: Vec::new(),
            windows_seen: 0,
            histogram_windows: 0,
            lr_ewma: 0.0,
            largest_cluster: 0,
            osc_ewma: 0.0,
            symbol_windows: 0,
            oscillatory_windows: 0,
        }
    }
}

impl CcHunterIndicator {
    fn contention_score(&self) -> f64 {
        if self.histogram_windows == 0 {
            return 0.0;
        }
        // The paper's conjunction: significant bursts alone must not alarm
        // (benign workloads burst too — Figure 14), so the likelihood-ratio
        // term is gated by pattern recurrence rather than merely added to
        // it. Recurrence is the *fraction* of observed windows sharing the
        // dominant burst cluster — a covert channel modulates in half its
        // windows or more, while benign bursts recur sporadically — with
        // the denominator floored so the first couple of windows can't
        // saturate the factor on their own. Without recurrence the score
        // caps at 0.35, under the 0.5 decision threshold.
        let denom = self
            .histogram_windows
            .min(self.feature_cap)
            .max(2 * self.cluster.min_recurring.max(1)) as f64;
        let recur = (2.0 * self.largest_cluster as f64 / denom).min(1.0);
        self.lr_ewma.clamp(0.0, 1.0) * (0.35 + 0.65 * recur)
    }

    fn cache_score(&self) -> f64 {
        if self.symbol_windows == 0 {
            return 0.0;
        }
        let sustained = self.oscillatory_windows as f64 / self.symbol_windows as f64;
        0.65 * self.osc_ewma.clamp(0.0, 1.0) + 0.35 * sustained
    }
}

impl Indicator for CcHunterIndicator {
    fn name(&self) -> &'static str {
        "cchunter"
    }

    fn push(&mut self, obs: &WindowObservation) -> f64 {
        self.windows_seen += 1;
        if let Some(h) = &obs.histogram {
            self.histogram_windows += 1;
            let verdict = self.burst.analyze(h);
            // A window without a significant burst distribution is no
            // evidence of contention at all (its raw likelihood ratio is
            // meaningless — benign traffic scores ~1.0 too): it pulls the
            // EWMA toward zero instead of contributing its ratio.
            let lr_sample = if verdict.significant {
                verdict.likelihood_ratio
            } else {
                0.0
            };
            self.lr_ewma = ewma(self.lr_ewma, lr_sample, obs.weight);
            if verdict.significant {
                if self.bursty_features.len() == self.feature_cap {
                    self.bursty_features.remove(0);
                }
                self.bursty_features.push(cluster::discretized_features(h));
            }
            let recurrence = cluster::recurrence_from_features(
                self.windows_seen.min(self.feature_cap),
                &self.bursty_features,
                &self.cluster,
            );
            self.largest_cluster = recurrence.largest_burst_cluster;
        }
        if let Some(s) = &obs.symbols {
            self.symbol_windows += 1;
            let lag = self.max_lag.min(s.len() / 2).max(1);
            let verdict = self.oscillation.analyze(s, lag);
            let raw = match verdict.peak {
                // An oscillatory window scores its full peak; a mere peak
                // without harmonic confirmation scores half credit.
                Some((_, v)) if verdict.oscillatory => v.clamp(0.0, 1.0),
                Some((_, v)) => 0.5 * v.clamp(0.0, 1.0),
                None => 0.0,
            };
            self.osc_ewma = ewma(self.osc_ewma, raw, obs.weight);
            if verdict.oscillatory {
                self.oscillatory_windows += 1;
            }
        }
        self.score()
    }

    fn score(&self) -> f64 {
        self.contention_score()
            .max(self.cache_score())
            .clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        *self = CcHunterIndicator::default();
    }
}

// ---------------------------------------------------------------------------
// CUSUM change-point indicator
// ---------------------------------------------------------------------------

/// Two-sided CUSUM change-point indicator (Page's test with restart) over
/// the contention-event rate trace.
///
/// Within each window the sub-slot rates are standardized against the
/// window's own mean and deviation, then accumulated into the classic
/// tabular CUSUM pair `S⁺ᵢ = max(0, S⁺ᵢ₋₁ + zᵢ − k)` /
/// `S⁻ᵢ = max(0, S⁻ᵢ₋₁ − zᵢ − k)`; whenever either side crosses the
/// decision threshold `h` it raises an *alarm* and restarts at zero. A
/// covert channel shifts the rate up and back down once per transmitted
/// bit, so the restarted statistic re-alarms every bit period and the
/// alarm rate tracks the signalling rate; benign noise mean-reverts, the
/// drift term `k` bleeds the sums back toward zero, and alarms stay rare
/// (the in-control ARL of Page's test at `h = 3σ, k = 0.5σ` is hundreds of
/// samples). The per-sample alarm rate becomes the window score; windows
/// are EWMA-blended.
///
/// Falls back to the conflict-miss symbol series as the trace for cache
/// windows with no explicit rate trace (the symbol values alternate between
/// trojan→spy and spy→trojan replacements, which is exactly a two-level
/// rate signal).
#[derive(Debug)]
pub struct CusumIndicator {
    /// Drift (allowance) in σ units: excursions accrue only past this.
    drift: f64,
    /// Decision threshold in σ units: crossing it alarms and restarts.
    threshold: f64,
    /// Per-sample alarm rate that scores 0.5.
    half_score_rate: f64,
    /// Minimum trace length for a meaningful window statistic.
    min_samples: usize,
    score_ewma: f64,
    windows_seen: usize,
}

impl Default for CusumIndicator {
    fn default() -> Self {
        CusumIndicator {
            drift: 0.5,
            threshold: 3.0,
            half_score_rate: 0.04,
            min_samples: 16,
            score_ewma: 0.0,
            windows_seen: 0,
        }
    }
}

impl CusumIndicator {
    /// The normalized alarm-rate statistic of one rate trace, in `[0, 1]`.
    fn window_statistic(&self, trace: &[f64]) -> f64 {
        let n = trace.len();
        if n < self.min_samples {
            return 0.0;
        }
        let mean = trace.iter().sum::<f64>() / n as f64;
        let var = trace.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        if var <= f64::EPSILON {
            // A perfectly flat trace has no change-point to find.
            return 0.0;
        }
        let sd = var.sqrt();
        let mut s_hi = 0.0f64;
        let mut s_lo = 0.0f64;
        let mut alarms = 0u32;
        for &x in trace {
            let z = (x - mean) / sd;
            s_hi = (s_hi + z - self.drift).max(0.0);
            s_lo = (s_lo - z - self.drift).max(0.0);
            if s_hi >= self.threshold {
                alarms += 1;
                s_hi = 0.0;
            }
            if s_lo >= self.threshold {
                alarms += 1;
                s_lo = 0.0;
            }
        }
        // x/(x+c) maps the alarm rate to [0, 1) with c scoring 0.5.
        let rate = f64::from(alarms) / n as f64;
        rate / (rate + self.half_score_rate)
    }
}

impl Indicator for CusumIndicator {
    fn name(&self) -> &'static str {
        "cusum"
    }

    fn push(&mut self, obs: &WindowObservation) -> f64 {
        self.windows_seen += 1;
        let stat = if !obs.rates.is_empty() {
            self.window_statistic(&obs.rates)
        } else if let Some(s) = &obs.symbols {
            self.window_statistic(&s.as_f64())
        } else {
            // Histogram-only observation: bins lose time order, so CUSUM
            // has nothing to accumulate — treat as an unobserved window.
            return self.score();
        };
        self.score_ewma = ewma(self.score_ewma, stat, obs.weight);
        self.score()
    }

    fn score(&self) -> f64 {
        self.score_ewma.clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        *self = CusumIndicator::default();
    }
}

// ---------------------------------------------------------------------------
// Spectral-density (Yao-style occupancy) indicator
// ---------------------------------------------------------------------------

/// Dominant-periodicity score of the occupancy/rate trace itself.
///
/// Yao et al. score cache channels by the periodic structure of the cache
/// *occupancy* trace rather than the conflict-miss symbols. The analogous
/// signal here is the sub-slot rate trace (occupancy proxy for every
/// resource class): its autocorrelogram — computed through the shared
/// [`crate::batch`] FFT planner, i.e. the Wiener–Khinchin transform of the
/// power spectral density — must show a decay-then-recover dominant peak
/// for any bit-clocked modulation. The window score is that peak's
/// coefficient (half credit without second-harmonic confirmation), blended
/// across windows with the sustained-periodicity fraction.
#[derive(Debug)]
pub struct SpectralIndicator {
    /// Lags below this are ignored (adjacent sub-slots are trivially
    /// correlated).
    min_lag: usize,
    /// Minimum trace length for a meaningful correlogram.
    min_samples: usize,
    /// Peak coefficient at which a window counts as periodic.
    peak_threshold: f64,
    score_ewma: f64,
    windows_seen: usize,
    periodic_windows: usize,
}

impl Default for SpectralIndicator {
    fn default() -> Self {
        SpectralIndicator {
            min_lag: 4,
            min_samples: 32,
            peak_threshold: 0.5,
            score_ewma: 0.0,
            windows_seen: 0,
            periodic_windows: 0,
        }
    }
}

impl SpectralIndicator {
    /// `(score, periodic)` of one trace window.
    fn window_statistic(&self, trace: &[f64]) -> (f64, bool) {
        let n = trace.len();
        if n < self.min_samples {
            return (0.0, false);
        }
        let max_lag = (n / 2).max(self.min_lag + 1);
        let correlogram = Autocorrelogram::compute(trace, max_lag);
        let Some((peak_lag, peak)) = correlogram.dominant_peak(self.min_lag, 0.0) else {
            // Never decays below zero: monotone drift, not periodicity.
            return (0.0, false);
        };
        let peak = peak.clamp(0.0, 1.0);
        // Second-harmonic confirmation when it fits in the lag budget.
        let confirmed = match peak_lag.checked_mul(2) {
            Some(h) if h <= correlogram.max_lag() => {
                let half_width = (peak_lag as f64 * 0.15).ceil() as usize;
                correlogram
                    .peak_in(h.saturating_sub(half_width), h + half_width)
                    .map(|(_, v)| v >= 0.5 * peak)
                    .unwrap_or(false)
            }
            _ => peak >= 0.75,
        };
        let score = if confirmed { peak } else { 0.5 * peak };
        (score, score >= self.peak_threshold)
    }
}

impl Indicator for SpectralIndicator {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn push(&mut self, obs: &WindowObservation) -> f64 {
        self.windows_seen += 1;
        // Prefer the conflict-symbol series when present: symbol-indexed
        // oscillation (period 2 for an alternating trojan/spy) survives
        // timing jitter that smears the wall-clock rate trace.
        let trace;
        let (stat, periodic) = if let Some(s) = &obs.symbols {
            trace = s.as_f64();
            self.window_statistic(&trace)
        } else if !obs.rates.is_empty() {
            self.window_statistic(&obs.rates)
        } else {
            return self.score();
        };
        self.score_ewma = ewma(self.score_ewma, stat, obs.weight);
        if periodic {
            self.periodic_windows += 1;
        }
        self.score()
    }

    fn score(&self) -> f64 {
        if self.windows_seen == 0 {
            return 0.0;
        }
        let sustained = self.periodic_windows as f64 / self.windows_seen as f64;
        (0.7 * self.score_ewma + 0.3 * sustained).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        *self = SpectralIndicator::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventTrain;

    /// A bursty covert-style histogram: dense bursts every 4th window.
    fn covert_histogram() -> DensityHistogram {
        let mut train = EventTrain::new();
        for burst in 0..50u64 {
            for i in 0..30u64 {
                train.push(burst * 400 + i * 3, 1);
            }
        }
        DensityHistogram::from_train(&train, 100, 0, 50 * 400)
    }

    /// A sparse benign histogram: a few scattered events.
    fn benign_histogram() -> DensityHistogram {
        let mut train = EventTrain::new();
        for i in 0..40u64 {
            train.push(i * 497, 1);
        }
        DensityHistogram::from_train(&train, 100, 0, 20_000)
    }

    /// A covert-style rate trace: the bit clock's square wave.
    fn covert_rates() -> Vec<f64> {
        (0..128)
            .map(|i| if (i / 8) % 2 == 0 { 24.0 } else { 2.0 })
            .collect()
    }

    /// A benign rate trace: deterministic aperiodic jitter.
    fn benign_rates() -> Vec<f64> {
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        (0..128)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 7) as f64
            })
            .collect()
    }

    fn covert_symbols() -> SymbolSeries {
        let mut s = Vec::new();
        for _ in 0..8 {
            s.extend(std::iter::repeat_n(1u8, 64));
            s.extend(std::iter::repeat_n(2u8, 64));
        }
        SymbolSeries::from_symbols(s)
    }

    fn benign_symbols() -> SymbolSeries {
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        SymbolSeries::from_symbols(
            (0..1024)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % 3) as u8
                })
                .collect(),
        )
    }

    fn covert_sequence() -> Vec<WindowObservation> {
        (0..6)
            .map(|_| {
                WindowObservation::from_histogram(covert_histogram()).with_rates(covert_rates())
            })
            .collect()
    }

    fn benign_sequence() -> Vec<WindowObservation> {
        (0..6)
            .map(|_| {
                WindowObservation::from_histogram(benign_histogram()).with_rates(benign_rates())
            })
            .collect()
    }

    #[test]
    fn every_indicator_separates_covert_from_benign_rates() {
        for mut ind in standard_indicators() {
            let covert = ind.score_sequence(&covert_sequence());
            let benign = ind.score_sequence(&benign_sequence());
            assert!(
                covert > benign + 0.2,
                "{}: covert {covert:.3} vs benign {benign:.3}",
                ind.name()
            );
            assert!((0.0..=1.0).contains(&covert), "{}", ind.name());
            assert!((0.0..=1.0).contains(&benign), "{}", ind.name());
        }
    }

    #[test]
    fn cchunter_indicator_separates_cache_symbols() {
        let mut ind = CcHunterIndicator::default();
        let covert: Vec<WindowObservation> = (0..4)
            .map(|_| WindowObservation::from_symbols(covert_symbols()))
            .collect();
        let benign: Vec<WindowObservation> = (0..4)
            .map(|_| WindowObservation::from_symbols(benign_symbols()))
            .collect();
        let hot = ind.score_sequence(&covert);
        let cold = ind.score_sequence(&benign);
        assert!(hot > 0.6, "covert cache score {hot:.3}");
        assert!(cold < 0.3, "benign cache score {cold:.3}");
    }

    #[test]
    fn missed_windows_never_raise_the_score() {
        for mut ind in standard_indicators() {
            let with_gap = {
                let mut seq = covert_sequence();
                let score_before = ind.score_sequence(&seq);
                seq.push(WindowObservation::missed());
                let score_after = ind.score_sequence(&seq);
                (score_before, score_after)
            };
            assert!(
                with_gap.1 <= with_gap.0 + 1e-12,
                "{}: gap raised score {} -> {}",
                ind.name(),
                with_gap.0,
                with_gap.1
            );
        }
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        for mut ind in standard_indicators() {
            let fresh = ind.score();
            ind.score_sequence(&covert_sequence());
            assert!(ind.score() > 0.0);
            ind.reset();
            assert_eq!(ind.score(), fresh);
            assert_eq!(ind.score(), 0.0);
        }
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&'static str> = standard_indicators().iter().map(|i| i.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate indicator name");
        for name in names {
            let ind = indicator_by_name(name).expect("registry name resolves");
            assert_eq!(ind.name(), name);
        }
        assert!(indicator_by_name("no-such-indicator").is_none());
    }

    #[test]
    fn batch_scoring_matches_serial_scoring() {
        let sequences = vec![covert_sequence(), benign_sequence(), covert_sequence()];
        let make: &(dyn Fn() -> Box<dyn Indicator> + Sync) =
            &|| Box::new(CusumIndicator::default());
        let serial: Vec<f64> = sequences.iter().map(|s| make().score_sequence(s)).collect();
        let batched = score_sequences(make, &sequences);
        assert_eq!(serial, batched);
    }
}
